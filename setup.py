"""Legacy setup shim.

Kept so ``pip install -e . --no-use-pep517`` works in offline
environments whose setuptools lacks the ``wheel`` package (PEP 660
editable installs need it; the legacy ``setup.py develop`` path does
not).  All metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
