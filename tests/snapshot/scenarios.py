"""Shared scenario factories for the snapshot differential suite.

One factory per engine kind; every factory takes ``backend`` plus the
checkpoint hooks and builds a *fresh, identically configured* engine
each call — the property resume depends on.  The dynamic engines run
to :data:`HORIZON`; a resumed dynamic engine must be driven with
``HORIZON - engine.time`` remaining steps (``run(steps)`` is relative).
"""

import json
import os

from repro.algorithms import (
    DimensionOrderPolicy,
    RestrictedPriorityPolicy,
    make_policy,
)
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.validation import validators_for
from repro.dynamic import BernoulliTraffic, BufferedDynamicEngine, DynamicEngine
from repro.faults import random_schedule
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many

HORIZON = 20
GOLDEN_EVERY = 4
GOLDEN_PATH = os.path.join(os.path.dirname(__file__), "golden.json")

BATCH_KINDS = ("hot-potato", "buffered")
DYNAMIC_KINDS = ("dynamic", "buffered-dynamic")
BACKENDS = ("object", "soa")

ALL_COMBOS = [
    (kind, backend)
    for kind in BATCH_KINDS + DYNAMIC_KINDS
    for backend in BACKENDS
]


def batch_schedule(mesh):
    """A non-empty seeded fault schedule for the batch scenario mesh."""
    schedule = random_schedule(
        mesh,
        seed=3,
        link_faults=2,
        node_faults=1,
        packet_drops=1,
        horizon=32,
        max_window=16,
    )
    assert not schedule.is_empty
    return schedule


def make_engine(
    kind,
    backend,
    *,
    seed=11,
    every=None,
    on_checkpoint=None,
    faults=None,
    side=6,
    k=30,
):
    """Build a fresh engine of ``kind`` on ``backend``."""
    if kind in BATCH_KINDS:
        mesh = Mesh(2, side)
        problem = random_many_to_many(mesh, k=k, seed=5)
        if kind == "buffered":
            return BufferedEngine(
                problem,
                DimensionOrderPolicy(),
                seed=seed,
                backend=backend,
                faults=faults,
                checkpoint_every=every,
                on_checkpoint=on_checkpoint,
            )
        policy = make_policy("restricted-priority")
        return HotPotatoEngine(
            problem,
            policy,
            seed=seed,
            validators=validators_for(policy, strict=False),
            backend=backend,
            faults=faults,
            checkpoint_every=every,
            on_checkpoint=on_checkpoint,
        )
    mesh = Mesh(2, 5)
    traffic = BernoulliTraffic(0.1)
    cls = BufferedDynamicEngine if kind == "buffered-dynamic" else DynamicEngine
    policy = (
        DimensionOrderPolicy()
        if kind == "buffered-dynamic"
        else RestrictedPriorityPolicy()
    )
    return cls(
        mesh,
        policy,
        traffic,
        seed=seed,
        warmup=3,
        backend=backend,
        faults=faults,
        checkpoint_every=every,
        on_checkpoint=on_checkpoint,
    )


def drive(engine, kind):
    """Run ``engine`` to the scenario's end; returns the run outcome."""
    if kind in BATCH_KINDS:
        return engine.run()
    return engine.run(HORIZON - engine.time)


def roundtrip(payload):
    """JSON round-trip, exactly like the snapshot file and the store."""
    return json.loads(json.dumps(payload))


def load_golden():
    with open(GOLDEN_PATH, encoding="utf-8") as handle:
        return json.load(handle)
