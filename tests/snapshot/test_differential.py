"""Snapshot/resume differential: for every engine × backend, a run
interrupted at any checkpoint boundary and resumed from the snapshot
alone must be bit-identical to the uninterrupted run — results,
telemetry, per-packet state, *and* both RNG streams.

The comparison leans on :func:`repro.snapshot.engine_snapshot` itself:
capturing the *final* state of the resumed run and requiring it to
equal the final capture of the reference run compares everything the
registry says is run state in one shot.  Payloads always pass through
a JSON round-trip first, exactly like the checkpoint file and the
campaign store, so representation bugs cannot hide in-memory.
"""

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.snapshot import engine_snapshot

from .scenarios import (
    ALL_COMBOS,
    BACKENDS,
    BATCH_KINDS,
    DYNAMIC_KINDS,
    batch_schedule,
    drive,
    make_engine,
    roundtrip,
)

EVERY = 3


def _reference(kind, backend, **kwargs):
    engine = make_engine(kind, backend, **kwargs)
    outcome = drive(engine, kind)
    return outcome, engine_snapshot(engine)


def _checkpointed_snapshots(kind, backend, **kwargs):
    snapshots = []
    engine = make_engine(
        kind, backend, every=EVERY, on_checkpoint=snapshots.append, **kwargs
    )
    outcome = drive(engine, kind)
    return outcome, snapshots


def _assert_resumes_bit_identical(kind, backend, **kwargs):
    ref_outcome, ref_final = _reference(kind, backend, **kwargs)
    ck_outcome, snapshots = _checkpointed_snapshots(kind, backend, **kwargs)
    assert ck_outcome == ref_outcome, "checkpointing perturbed the run"
    assert snapshots, "no checkpoint boundary fired"
    for snapshot in snapshots:
        engine = make_engine(kind, backend, **kwargs)
        engine.resume_from(roundtrip(snapshot))
        assert drive(engine, kind) == ref_outcome
        assert engine_snapshot(engine) == ref_final, (
            f"state diverged after resume from step {snapshot['step']}"
        )


class TestEveryBoundaryResume:
    @pytest.mark.parametrize(
        "kind,backend", ALL_COMBOS, ids=[f"{k}-{b}" for k, b in ALL_COMBOS]
    )
    def test_resume_equals_uninterrupted(self, kind, backend):
        _assert_resumes_bit_identical(kind, backend)


class TestResumeUnderFaults:
    # The soa backend rejects non-empty fault schedules, so the fault
    # differential runs the object backend across all four kinds; the
    # snapshot then also carries watchdog and dropped-packet state.
    @pytest.mark.parametrize("kind", BATCH_KINDS + DYNAMIC_KINDS)
    def test_resume_with_nonempty_schedule(self, kind):
        side = 6 if kind in BATCH_KINDS else 5
        from repro.mesh.topology import Mesh

        schedule = batch_schedule(Mesh(2, side))
        _assert_resumes_bit_identical(kind, "object", faults=schedule)


class TestRngStreamContinuity:
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_engine_and_policy_streams_match(self, backend):
        # Spelled-out redundancy for the headline property: the final
        # capture comparison above already covers both streams, but a
        # regression here should fail with an RNG-specific message.
        ref = make_engine("hot-potato", backend)
        ref.run()
        snapshots = []
        ck = make_engine(
            "hot-potato", backend, every=EVERY, on_checkpoint=snapshots.append
        )
        ck.run()
        resumed = make_engine("hot-potato", backend)
        resumed.resume_from(roundtrip(snapshots[0]))
        resumed.run()
        assert resumed.rng.getstate() == ref.rng.getstate()
        assert (
            resumed.policy._rng.getstate() == ref.policy._rng.getstate()
        )


class TestHypothesisSweep:
    @settings(
        max_examples=12,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        backend=st.sampled_from(BACKENDS),
        kind=st.sampled_from(BATCH_KINDS),
        seed=st.integers(min_value=0, max_value=2**16),
        side=st.integers(min_value=4, max_value=6),
        k=st.integers(min_value=8, max_value=40),
        every=st.integers(min_value=1, max_value=6),
    )
    def test_random_configurations(self, backend, kind, seed, side, k, every):
        ref = make_engine(kind, backend, seed=seed, side=side, k=k)
        ref_result = ref.run()
        ref_final = engine_snapshot(ref)
        snapshots = []
        ck = make_engine(
            kind,
            backend,
            seed=seed,
            side=side,
            k=k,
            every=every,
            on_checkpoint=snapshots.append,
        )
        assert ck.run() == ref_result
        if not snapshots:
            # Runs shorter than one boundary have nothing to resume.
            return
        snapshot = snapshots[len(snapshots) // 2]
        resumed = make_engine(kind, backend, seed=seed, side=side, k=k)
        resumed.resume_from(roundtrip(snapshot))
        assert resumed.run() == ref_result
        assert engine_snapshot(resumed) == ref_final

    @settings(
        max_examples=8,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(
        backend=st.sampled_from(BACKENDS),
        kind=st.sampled_from(DYNAMIC_KINDS),
        seed=st.integers(min_value=0, max_value=2**16),
        every=st.integers(min_value=2, max_value=6),
    )
    def test_random_dynamic_configurations(self, kind, backend, seed, every):
        ref = make_engine(kind, backend, seed=seed)
        ref_stats = drive(ref, kind)
        ref_final = engine_snapshot(ref)
        snapshots = []
        ck = make_engine(
            kind, backend, seed=seed, every=every, on_checkpoint=snapshots.append
        )
        assert drive(ck, kind) == ref_stats
        assert snapshots
        resumed = make_engine(kind, backend, seed=seed)
        resumed.resume_from(roundtrip(snapshots[-1]))
        assert drive(resumed, kind) == ref_stats
        assert engine_snapshot(resumed) == ref_final
