"""Golden snapshot fixtures: the schema and the streams, pinned.

``golden.json`` was captured by ``regenerate.py`` and commits, per
engine × backend, the snapshot at the first checkpoint boundary and
the final-state capture of the finished reference run.  Equality here
is *exact* — a change to the payload shape, the RNG encoding, a
packet field, or any engine behavior shows up as a diff against the
fixture, which is the point: snapshots written by one revision must
resume under the next, or the schema version must change.
"""

import pytest

from repro.snapshot import SNAPSHOT_SCHEMA_VERSION, engine_snapshot

from .scenarios import (
    ALL_COMBOS,
    GOLDEN_EVERY,
    drive,
    load_golden,
    make_engine,
    roundtrip,
)

IDS = [f"{kind}-{backend}" for kind, backend in ALL_COMBOS]


@pytest.fixture(scope="module")
def golden():
    return load_golden()


@pytest.mark.parametrize("kind,backend", ALL_COMBOS, ids=IDS)
def test_current_tree_reproduces_fixture(kind, backend, golden):
    name = f"{kind}/{backend}"
    assert name in golden, (
        f"scenario {name!r} has no fixture; run "
        "tests/snapshot/regenerate.py (only if the schema/behavior "
        "change is intended and documented)"
    )
    snapshots = []
    engine = make_engine(
        kind, backend, every=GOLDEN_EVERY, on_checkpoint=snapshots.append
    )
    drive(engine, kind)
    assert roundtrip(snapshots[0]) == golden[name]["mid"]
    assert roundtrip(engine_snapshot(engine)) == golden[name]["final"]


@pytest.mark.parametrize("kind,backend", ALL_COMBOS, ids=IDS)
def test_resume_from_committed_payload(kind, backend, golden):
    # Snapshots written by a past revision must resume on this one:
    # the committed mid-run payload, continued to completion, lands
    # exactly on the committed final state.
    payload = golden[f"{kind}/{backend}"]
    engine = make_engine(kind, backend)
    engine.resume_from(payload["mid"])
    drive(engine, kind)
    assert roundtrip(engine_snapshot(engine)) == payload["final"]


def test_fixture_inventory(golden):
    assert set(golden) == {f"{k}/{b}" for k, b in ALL_COMBOS}
    for name, payload in golden.items():
        assert payload["mid"]["schema_version"] == SNAPSHOT_SCHEMA_VERSION, name
        assert payload["mid"]["step"] == GOLDEN_EVERY, name
