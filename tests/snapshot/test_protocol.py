"""The resume protocol's refusal paths and the snapshot file format.

Resuming under the wrong schema, engine kind, seed, or problem would
*silently* diverge — every such mismatch must be a loud ``ValueError``
before any state is overwritten.
"""

import json
import os

import pytest

from repro.snapshot import (
    SNAPSHOT_SCHEMA_VERSION,
    engine_snapshot,
    load_snapshot,
    save_snapshot,
)

from .scenarios import drive, make_engine, roundtrip


def _snapshot(kind="hot-potato", backend="object", **kwargs):
    taken = []
    engine = make_engine(
        kind, backend, every=4, on_checkpoint=taken.append, **kwargs
    )
    drive(engine, kind)
    return roundtrip(taken[0])


class TestResumeRefusals:
    def test_wrong_schema_version(self):
        payload = _snapshot()
        payload["schema_version"] = SNAPSHOT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            make_engine("hot-potato", "object").resume_from(payload)

    def test_wrong_engine_kind(self):
        payload = _snapshot()
        with pytest.raises(ValueError, match="kind"):
            make_engine("buffered", "object").resume_from(payload)

    def test_wrong_seed(self):
        payload = _snapshot()
        with pytest.raises(ValueError, match="seed"):
            make_engine("hot-potato", "object", seed=12).resume_from(payload)

    def test_started_engine_refused(self):
        payload = _snapshot()
        engine = make_engine("hot-potato", "object")
        engine.run()
        with pytest.raises(ValueError, match="fresh engine"):
            engine.resume_from(payload)

    def test_wrong_problem_packets(self):
        payload = _snapshot()
        with pytest.raises(ValueError, match="packet ids"):
            make_engine("hot-potato", "object", k=31).resume_from(payload)

    def test_record_steps_runs_refuse_to_snapshot(self):
        from repro.algorithms import make_policy
        from repro.core.engine import HotPotatoEngine
        from repro.core.validation import validators_for
        from repro.mesh.topology import Mesh
        from repro.workloads import random_many_to_many

        mesh = Mesh(2, 4)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(
            random_many_to_many(mesh, k=6, seed=1),
            policy,
            seed=1,
            validators=validators_for(policy, strict=False),
            record_steps=True,
        )
        with pytest.raises(ValueError, match="record_steps"):
            engine_snapshot(engine)


class TestSnapshotFiles:
    def test_save_load_roundtrip(self, tmp_path):
        payload = _snapshot()
        path = str(tmp_path / "ckpt.json")
        save_snapshot(payload, path)
        assert load_snapshot(path) == payload
        # Atomic write: no tmp litter next to the snapshot.
        assert os.listdir(tmp_path) == ["ckpt.json"]

    def test_overwrite_keeps_latest(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        first = _snapshot()
        save_snapshot(first, path)
        second = dict(first, step=first["step"] + 4)
        save_snapshot(second, path)
        assert load_snapshot(path)["step"] == first["step"] + 4

    def test_load_rejects_foreign_schema(self, tmp_path):
        path = str(tmp_path / "ckpt.json")
        with open(path, "w", encoding="utf-8") as handle:
            json.dump({"schema_version": 99}, handle)
        with pytest.raises(ValueError, match="schema_version"):
            load_snapshot(path)

    def test_resumed_file_run_matches_uninterrupted(self, tmp_path):
        reference = make_engine("hot-potato", "object").run()
        path = str(tmp_path / "ckpt.json")
        save_snapshot(_snapshot(), path)
        engine = make_engine("hot-potato", "object")
        engine.resume_from(load_snapshot(path))
        assert engine.run() == reference
