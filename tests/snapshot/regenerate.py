"""Regenerate ``golden.json`` — only when a snapshot schema or engine
behavior change is intended and documented.

For every engine × backend the fixture pins two payloads from the
reference scenario: the snapshot at the first checkpoint boundary
(``mid``) and the final-state capture of the finished run (``final``).
The golden tests re-derive both on the current tree and require exact
equality, then resume from the committed ``mid`` payload and require
the continuation to land exactly on the committed ``final``.

Run from the repo root::

    PYTHONPATH=src python tests/snapshot/regenerate.py
"""

import json

from repro.snapshot import engine_snapshot

from scenarios import (  # type: ignore[import-not-found]
    ALL_COMBOS,
    GOLDEN_EVERY,
    GOLDEN_PATH,
    drive,
    make_engine,
    roundtrip,
)


def capture(kind, backend):
    snapshots = []
    engine = make_engine(
        kind, backend, every=GOLDEN_EVERY, on_checkpoint=snapshots.append
    )
    drive(engine, kind)
    assert snapshots, f"{kind}/{backend}: no checkpoint boundary fired"
    return {
        "mid": roundtrip(snapshots[0]),
        "final": roundtrip(engine_snapshot(engine)),
    }


def main():
    fixture = {
        f"{kind}/{backend}": capture(kind, backend)
        for kind, backend in ALL_COMBOS
    }
    with open(GOLDEN_PATH, "w", encoding="utf-8") as handle:
        json.dump(fixture, handle, indent=1, sort_keys=True)
        handle.write("\n")
    print(f"wrote {len(fixture)} scenarios to {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
