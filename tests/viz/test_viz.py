"""Tests for the text-mode visualizations."""

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.viz.ascii_art import (
    render_loads,
    render_nodes,
    render_path,
    render_step,
)
from repro.viz.timeseries import labeled_sparkline, sparkline, step_chart
from repro.workloads import single_target


class TestRenderLoads:
    def test_grid_shape(self):
        mesh = Mesh(2, 3)
        out = render_loads(mesh, {(1, 1): 1})
        lines = out.splitlines()
        assert len(lines) == 3
        assert lines[0].startswith(" 1 ")

    def test_bad_nodes_bracketed(self):
        mesh = Mesh(2, 3)
        out = render_loads(mesh, {(2, 2): 3})
        assert "[3]" in out

    def test_empty_cells_dotted(self):
        mesh = Mesh(2, 3)
        out = render_loads(mesh, {})
        assert out.count(".") == 9

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            render_loads(Mesh(3, 3), {})


class TestRenderNodes:
    def test_marking(self):
        mesh = Mesh(2, 3)
        out = render_nodes(mesh, [(1, 1), (3, 3)])
        lines = out.splitlines()
        assert lines[0][0] == "#"
        assert lines[2][-1] == "#"

    def test_rejects_3d(self):
        with pytest.raises(ValueError):
            render_nodes(Mesh(3, 3), [])


class TestRenderPath:
    def test_visit_letters_and_destination(self):
        mesh = Mesh(2, 3)
        out = render_path(mesh, [(1, 1), (1, 2)], destination=(3, 3))
        assert "a" in out
        assert "b" in out
        assert "*" in out

    def test_revisit_keeps_first_letter(self):
        mesh = Mesh(2, 3)
        out = render_path(mesh, [(1, 1), (1, 2), (1, 1)])
        assert out.count("a") == 1
        assert "c" not in out


class TestRenderStep:
    def test_real_record(self, mesh8):
        problem = single_target(mesh8, k=30, seed=210)
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=210, record_steps=True
        )
        result = engine.run()
        out = render_step(mesh8, result.records[0])
        assert len(out.splitlines()) == 8


class TestSparkline:
    def test_length_capped_by_width(self):
        line = sparkline(list(range(200)), width=50)
        assert len(line) == 50

    def test_short_series_uncompressed(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_constant_series(self):
        line = sparkline([5, 5, 5])
        assert len(set(line)) == 1

    def test_empty(self):
        assert sparkline([]) == ""

    def test_monotone_shape(self):
        line = sparkline([0, 10])
        assert line[0] < line[-1]


class TestLabeledSparkline:
    def test_contains_label_and_endpoints(self):
        out = labeled_sparkline("Phi", [100.0, 50.0, 0.0])
        assert "Phi" in out
        assert "100" in out
        assert "0" in out

    def test_empty(self):
        assert "(empty)" in labeled_sparkline("x", [])


class TestStepChart:
    def test_dimensions(self):
        chart = step_chart([1, 5, 3, 8], height=4)
        lines = chart.splitlines()
        assert len(lines) == 5  # 4 bands + baseline
        assert set(lines[-1]) == {"-"}

    def test_all_zero(self):
        assert step_chart([0, 0]) == ".."

    def test_empty(self):
        assert step_chart([]) == ""
