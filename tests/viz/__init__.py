"""Test package."""
