"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro import Mesh, Torus
from repro.algorithms import RestrictedPriorityPolicy
from repro.workloads import random_many_to_many


@pytest.fixture
def mesh8():
    """An 8x8 two-dimensional mesh."""
    return Mesh(dimension=2, side=8)


@pytest.fixture
def mesh4():
    """A 4x4 two-dimensional mesh."""
    return Mesh(dimension=2, side=4)


@pytest.fixture
def mesh3d():
    """A 4^3 three-dimensional mesh."""
    return Mesh(dimension=3, side=4)


@pytest.fixture
def torus8():
    """An 8x8 torus."""
    return Torus(dimension=2, side=8)


@pytest.fixture
def small_problem(mesh8):
    """A 20-packet random batch on the 8x8 mesh."""
    return random_many_to_many(mesh8, k=20, seed=11)


@pytest.fixture
def restricted_policy():
    """A fresh restricted-priority policy."""
    return RestrictedPriorityPolicy()
