"""Unit tests for the d-dimensional mesh (Definitions 1 and 5)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh


class TestShape:
    def test_num_nodes(self):
        assert Mesh(2, 4).num_nodes == 16
        assert Mesh(3, 3).num_nodes == 27

    def test_diameter(self):
        # d(n-1) per Section 2.1.
        assert Mesh(2, 8).diameter == 14
        assert Mesh(3, 4).diameter == 9

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Mesh(0, 4)
        with pytest.raises(ValueError):
            Mesh(2, 1)

    def test_equality_and_hash(self):
        assert Mesh(2, 4) == Mesh(2, 4)
        assert Mesh(2, 4) != Mesh(2, 5)
        assert hash(Mesh(2, 4)) == hash(Mesh(2, 4))

    def test_repr(self):
        assert "dimension=2" in repr(Mesh(2, 4))

    def test_nodes_enumeration(self):
        nodes = list(Mesh(2, 3).nodes())
        assert len(nodes) == 9
        assert nodes[0] == (1, 1)
        assert nodes[-1] == (3, 3)
        assert len(set(nodes)) == 9


class TestAdjacency:
    def test_interior_degree_2d(self):
        mesh = Mesh(2, 4)
        assert mesh.degree((2, 2)) == 4

    def test_corner_degree_equals_dimension(self):
        # Section 2.1: degree between d (corners) and 2d (interior).
        for dimension in (1, 2, 3):
            mesh = Mesh(dimension, 4)
            assert mesh.degree((1,) * dimension) == dimension
            assert mesh.degree((2,) * dimension) == 2 * dimension

    def test_neighbor_off_mesh_is_none(self):
        mesh = Mesh(2, 4)
        assert mesh.neighbor((1, 1), Direction(0, -1)) is None
        assert mesh.neighbor((4, 4), Direction(1, 1)) is None

    def test_neighbor_inside(self):
        mesh = Mesh(2, 4)
        assert mesh.neighbor((2, 2), Direction(0, 1)) == (3, 2)

    def test_neighbors_list(self):
        mesh = Mesh(2, 3)
        assert sorted(mesh.neighbors((1, 1))) == [(1, 2), (2, 1)]

    def test_out_arcs_match_out_directions(self):
        mesh = Mesh(2, 4)
        for node in mesh.nodes():
            arcs = mesh.out_arcs(node)
            assert len(arcs) == len(mesh.out_directions(node))
            for tail, head in arcs:
                assert tail == node
                assert mesh.contains(head)

    def test_in_arcs_are_reversed_out_arcs(self):
        mesh = Mesh(2, 3)
        for node in mesh.nodes():
            ins = set(mesh.in_arcs(node))
            outs = {(head, tail) for tail, head in mesh.out_arcs(node)}
            assert ins == outs

    def test_total_arc_count(self):
        # 2 * d * n^(d-1) * (n-1) directed arcs.
        mesh = Mesh(2, 4)
        assert sum(1 for _ in mesh.arcs()) == 2 * 2 * 4 * 3

    def test_is_arc(self):
        mesh = Mesh(2, 3)
        assert mesh.is_arc(((1, 1), (1, 2)))
        assert not mesh.is_arc(((1, 1), (2, 2)))
        assert not mesh.is_arc(((1, 1), (0, 1)))

    def test_contains(self):
        mesh = Mesh(2, 3)
        assert mesh.contains((3, 3))
        assert not mesh.contains((3, 4))
        assert not mesh.contains((1, 2, 3))


class TestGoodDirections:
    def test_paper_five_dimensional_example(self):
        # Section 2.2: in the 5-dim mesh, packet at (1,3,2,6,1) destined
        # to (4,3,8,2,1) has exactly three good directions.
        mesh = Mesh(5, 8)
        good = set(mesh.good_directions((1, 3, 2, 6, 1), (4, 3, 8, 2, 1)))
        assert good == {Direction(0, 1), Direction(2, 1), Direction(3, -1)}
        bad = set(mesh.bad_directions((1, 3, 2, 6, 1), (4, 3, 8, 2, 1)))
        assert len(bad) == 10 - 3
        assert good.isdisjoint(bad)

    def test_good_arcs_decrease_distance(self):
        mesh = Mesh(2, 6)
        node, destination = (3, 3), (6, 1)
        for arc in mesh.good_arcs(node, destination):
            assert mesh.is_good_arc(arc, destination)
            assert mesh.distance(arc[1], destination) == (
                mesh.distance(node, destination) - 1
            )

    def test_no_good_directions_at_destination(self):
        mesh = Mesh(2, 4)
        assert mesh.good_directions((2, 2), (2, 2)) == []

    def test_every_off_destination_packet_has_a_good_direction(self):
        mesh = Mesh(2, 4)
        for node in mesh.nodes():
            for destination in mesh.nodes():
                if node != destination:
                    assert mesh.num_good_directions(node, destination) >= 1

    def test_restricted_predicate(self):
        mesh = Mesh(2, 5)
        # Same row, east of destination: one good direction.
        assert mesh.is_restricted((2, 4), (2, 1))
        # Diagonal offset: two good directions.
        assert not mesh.is_restricted((2, 2), (4, 4))
        # At destination: zero good directions, not restricted.
        assert not mesh.is_restricted((2, 2), (2, 2))

    @given(st.integers(1, 3), st.data())
    @settings(max_examples=40, deadline=None)
    def test_good_count_equals_nonzero_axes(self, dimension, data):
        mesh = Mesh(dimension, 5)
        coords = st.integers(1, 5)
        node = tuple(data.draw(coords) for _ in range(dimension))
        dest = tuple(data.draw(coords) for _ in range(dimension))
        # On the mesh (no boundary effect for moves toward an interior
        # destination) the good directions are exactly the nonzero axes.
        expected = sum(1 for a, b in zip(node, dest) if a != b)
        assert mesh.num_good_directions(node, dest) == expected


class TestConvenience:
    def test_corners(self):
        mesh = Mesh(2, 4)
        corners = {mesh.corner(i) for i in range(4)}
        assert corners == {(1, 1), (4, 1), (1, 4), (4, 4)}

    def test_corner_out_of_range(self):
        with pytest.raises(ValueError):
            Mesh(2, 4).corner(4)

    def test_center(self):
        assert Mesh(2, 5).center() == (3, 3)
        assert Mesh(2, 4).center() == (2, 2)

    def test_validate_node(self):
        mesh = Mesh(2, 4)
        assert mesh.validate_node([1, 4]) == (1, 4)
        with pytest.raises(ValueError):
            mesh.validate_node([0, 1])


class TestDistanceIsGraphDistance:
    def test_bfs_agreement_on_small_mesh(self):
        """L1 distance equals true shortest-path distance (BFS)."""
        mesh = Mesh(2, 4)
        nodes = list(mesh.nodes())
        source = (1, 1)
        frontier = {source}
        level = 0
        seen = {source: 0}
        while frontier:
            level += 1
            next_frontier = set()
            for node in frontier:
                for other in mesh.neighbors(node):
                    if other not in seen:
                        seen[other] = level
                        next_frontier.add(other)
            frontier = next_frontier
        for node in nodes:
            assert mesh.distance(source, node) == seen[node]
