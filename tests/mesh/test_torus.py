"""Unit tests for the torus variant."""

import pytest

from repro.mesh.directions import Direction
from repro.mesh.torus import Torus


class TestTorusShape:
    def test_minimum_side(self):
        with pytest.raises(ValueError):
            Torus(2, 2)
        assert Torus(2, 3).side == 3

    def test_diameter(self):
        assert Torus(2, 8).diameter == 8  # 2 * 8 // 2
        assert Torus(3, 5).diameter == 6  # 3 * 2

    def test_kind(self):
        assert Torus(2, 4).kind == "torus"

    def test_not_equal_to_mesh(self):
        from repro.mesh.topology import Mesh

        assert Torus(2, 4) != Mesh(2, 4)

    def test_unit_deflections_only_for_even_sides(self):
        """Odd-side tori have distance-preserving bad hops (out of a
        maximal per-axis offset), so incremental ±1 distance tracking
        is only sound with an even side; the box mesh always has it."""
        from repro.mesh.topology import Mesh

        assert Torus(2, 4).unit_deflections
        assert Torus(2, 6).unit_deflections
        assert not Torus(2, 5).unit_deflections
        assert not Torus(3, 7).unit_deflections
        assert Mesh(2, 5).unit_deflections

    def test_odd_side_bad_hop_can_preserve_distance(self):
        torus = Torus(2, 5)
        # Offset 2 is maximal on a 5-ring; the bad hop (1,1) -> (5,1)
        # wraps to an equally short way around: distance unchanged.
        assert torus.neighbor((1, 1), Direction(0, -1)) == (5, 1)
        assert torus.distance((1, 1), (3, 1)) == 2
        assert torus.distance((5, 1), (3, 1)) == 2
        assert Direction(0, -1) not in torus.good_directions((1, 1), (3, 1))


class TestWraparound:
    def test_wrap_high(self):
        torus = Torus(2, 4)
        assert torus.neighbor((4, 2), Direction(0, 1)) == (1, 2)

    def test_wrap_low(self):
        torus = Torus(2, 4)
        assert torus.neighbor((1, 2), Direction(0, -1)) == (4, 2)

    def test_full_degree_everywhere(self):
        torus = Torus(2, 4)
        for node in torus.nodes():
            assert torus.degree(node) == 4
            assert len(torus.out_directions(node)) == 4

    def test_neighbor_relation_symmetric(self):
        torus = Torus(2, 5)
        for node in torus.nodes():
            for other in torus.neighbors(node):
                assert node in torus.neighbors(other)


class TestTorusDistance:
    def test_wrap_shorter(self):
        torus = Torus(2, 8)
        assert torus.distance((1, 1), (8, 1)) == 1
        assert torus.distance((1, 1), (5, 1)) == 4

    def test_symmetric(self):
        torus = Torus(2, 7)
        assert torus.distance((1, 2), (6, 5)) == torus.distance((6, 5), (1, 2))

    def test_bfs_agreement(self):
        torus = Torus(2, 5)
        source = (1, 1)
        seen = {source: 0}
        frontier = {source}
        level = 0
        while frontier:
            level += 1
            next_frontier = set()
            for node in frontier:
                for other in torus.neighbors(node):
                    if other not in seen:
                        seen[other] = level
                        next_frontier.add(other)
            frontier = next_frontier
        for node in torus.nodes():
            assert torus.distance(source, node) == seen[node]


class TestTorusGoodDirections:
    def test_antipodal_axis_has_two_good_directions(self):
        torus = Torus(2, 8)
        # Offset of exactly side/2 along one axis: both ways shorten.
        good = torus.good_directions((1, 1), (5, 1))
        assert set(good) == {Direction(0, 1), Direction(0, -1)}

    def test_wrap_direction_good(self):
        torus = Torus(2, 8)
        good = torus.good_directions((1, 1), (8, 1))
        assert good == [Direction(0, -1)]
