"""Unit and property tests for the Claim 13 geometry machinery."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mesh.geometry import (
    box_volume,
    connected_components,
    isoperimetric_lower_bound,
    projection,
    projection_sizes,
    surface_size,
    verify_claim_13,
    verify_projection_product_bound,
    verify_projection_surface_bound,
    volume_dimension,
)
from repro.potential.isoperimetric import random_blob, random_scatter


class TestSurfaceSize:
    def test_single_cube(self):
        # An isolated d-cube has surface 2d.
        assert surface_size({(0, 0)}) == 4
        assert surface_size({(0, 0, 0)}) == 6

    def test_domino(self):
        assert surface_size({(0, 0), (0, 1)}) == 6

    def test_square_block(self):
        # A 2x2 square: perimeter 8.
        assert surface_size(box_volume((0, 0), (2, 2))) == 8

    def test_cube_block_3d(self):
        # s^3 cube has surface 6 s^2.
        assert surface_size(box_volume((0, 0, 0), (3, 3, 3))) == 54

    def test_empty(self):
        assert surface_size(set()) == 0

    def test_disconnected_adds_up(self):
        far_apart = {(0, 0), (10, 10)}
        assert surface_size(far_apart) == 8

    def test_mixed_dimensions_rejected(self):
        with pytest.raises(ValueError):
            surface_size({(0, 0), (0, 0, 0)})

    def test_surface_is_sum_over_components(self):
        rng = random.Random(3)
        volume = random_scatter(2, 12, 10, rng)
        components = connected_components(volume)
        assert surface_size(volume) == sum(
            surface_size(c) for c in components
        )


class TestProjections:
    def test_projection_of_box(self):
        box = box_volume((0, 0), (3, 2))
        assert len(projection(box, (0,))) == 3
        assert len(projection(box, (1,))) == 2

    def test_projection_sizes_count(self):
        box = box_volume((0, 0, 0), (2, 2, 2))
        sizes = projection_sizes(box)
        assert len(sizes) == 3  # choose(3, 2)
        assert all(size == 4 for size in sizes.values())

    def test_volume_dimension(self):
        assert volume_dimension({(1, 2, 3)}) == 3
        with pytest.raises(ValueError):
            volume_dimension(set())


class TestClaim13Exact:
    """Cubes meet Claim 13 with equality — the extremal case."""

    @pytest.mark.parametrize("dimension,side", [(1, 5), (2, 3), (3, 2), (2, 4)])
    def test_cube_equality(self, dimension, side):
        cube = box_volume((0,) * dimension, (side,) * dimension)
        surface, bound, holds = verify_claim_13(cube)
        assert holds
        assert surface == pytest.approx(bound)

    def test_bound_formula(self):
        assert isoperimetric_lower_bound(4, 2) == pytest.approx(8.0)
        assert isoperimetric_lower_bound(27, 3) == pytest.approx(54.0)
        assert isoperimetric_lower_bound(0, 3) == 0.0

    def test_bound_rejects_bad_input(self):
        with pytest.raises(ValueError):
            isoperimetric_lower_bound(-1, 2)
        with pytest.raises(ValueError):
            isoperimetric_lower_bound(4, 0)

    def test_empty_volume_trivially_holds(self):
        assert verify_claim_13(set()) == (0, 0.0, True)


class TestClaim13Random:
    """Claim 13 and the proof's two intermediate inequalities hold on
    randomly generated volumes (connected blobs and scatters)."""

    @given(
        st.integers(1, 4),
        st.integers(1, 40),
        st.integers(0, 10_000),
        st.floats(0.0, 1.0),
    )
    @settings(max_examples=120, deadline=None)
    def test_blob_satisfies_claim_13(self, dimension, size, seed, spread):
        volume = random_blob(dimension, size, random.Random(seed), spread)
        surface, bound, holds = verify_claim_13(volume)
        assert holds, f"surface {surface} < bound {bound}"

    @given(st.integers(1, 3), st.integers(1, 30), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_scatter_satisfies_claim_13(self, dimension, size, seed):
        rng = random.Random(seed)
        size = min(size, 8**dimension)  # fit inside the sampling box
        volume = random_scatter(dimension, size, 8, rng)
        _, _, holds = verify_claim_13(volume)
        assert holds

    @given(st.integers(2, 4), st.integers(1, 30), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_equation_1_surface_vs_projections(self, dimension, size, seed):
        volume = random_blob(dimension, size, random.Random(seed))
        surface, twice_projections, holds = verify_projection_surface_bound(
            volume
        )
        assert holds, f"{surface} < {twice_projections}"

    @given(st.integers(2, 4), st.integers(1, 30), st.integers(0, 10_000))
    @settings(max_examples=80, deadline=None)
    def test_equation_5_loomis_whitney(self, dimension, size, seed):
        volume = random_blob(dimension, size, random.Random(seed))
        lhs, rhs, holds = verify_projection_product_bound(volume)
        assert holds, f"|V|^(d-1)={lhs} > prod={rhs}"


class TestGenerators:
    def test_blob_size(self):
        volume = random_blob(2, 17, random.Random(0))
        assert len(volume) == 17

    def test_blob_connected(self):
        volume = random_blob(3, 25, random.Random(1))
        assert len(connected_components(volume)) == 1

    def test_blob_rejects_zero(self):
        with pytest.raises(ValueError):
            random_blob(2, 0, random.Random(0))

    def test_scatter_size_and_box(self):
        volume = random_scatter(2, 10, 5, random.Random(2))
        assert len(volume) == 10
        assert all(0 <= x < 5 for cell in volume for x in cell)

    def test_scatter_overfull_rejected(self):
        with pytest.raises(ValueError):
            random_scatter(2, 30, 5, random.Random(0))

    def test_box_volume_validation(self):
        with pytest.raises(ValueError):
            box_volume((0, 0), (2,))
        with pytest.raises(ValueError):
            box_volume((0, 0), (0, 2))
