"""Unit tests for coordinate arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mesh.coordinates import (
    in_box,
    is_adjacent,
    l1_distance,
    offset_vector,
    validate_node,
)

points = st.lists(st.integers(-50, 50), min_size=1, max_size=5)


def paired_points(draw, dimension_strategy=st.integers(1, 5)):
    dimension = draw(dimension_strategy)
    coords = st.integers(-50, 50)
    a = tuple(draw(coords) for _ in range(dimension))
    b = tuple(draw(coords) for _ in range(dimension))
    return a, b


pair_strategy = st.composite(paired_points)()


class TestL1Distance:
    def test_zero_for_identical(self):
        assert l1_distance((3, 4), (3, 4)) == 0

    def test_unit_neighbors(self):
        assert l1_distance((1, 1), (1, 2)) == 1
        assert l1_distance((1, 1), (2, 1)) == 1

    def test_known_value(self):
        # The paper's Section 2.1 example style: sum of |a_i - b_i|.
        assert l1_distance((1, 3, 2, 6, 1), (4, 3, 8, 2, 1)) == 3 + 6 + 4

    def test_dimension_mismatch_raises(self):
        with pytest.raises(ValueError):
            l1_distance((1, 2), (1, 2, 3))

    @given(pair_strategy)
    def test_symmetric(self, pair):
        a, b = pair
        assert l1_distance(a, b) == l1_distance(b, a)

    @given(pair_strategy)
    def test_nonnegative_and_identity(self, pair):
        a, b = pair
        distance = l1_distance(a, b)
        assert distance >= 0
        assert (distance == 0) == (a == b)

    @given(st.integers(1, 4), st.data())
    def test_triangle_inequality(self, dimension, data):
        coords = st.integers(-20, 20)
        point = st.tuples(*[coords] * dimension)
        a = data.draw(point)
        b = data.draw(point)
        c = data.draw(point)
        assert l1_distance(a, c) <= l1_distance(a, b) + l1_distance(b, c)


class TestOffsetVector:
    def test_simple(self):
        assert offset_vector((1, 1), (3, 0)) == (2, -1)

    def test_zero(self):
        assert offset_vector((5, 5, 5), (5, 5, 5)) == (0, 0, 0)

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            offset_vector((1,), (1, 2))

    @given(pair_strategy)
    def test_offset_l1_equals_distance(self, pair):
        a, b = pair
        assert sum(abs(x) for x in offset_vector(a, b)) == l1_distance(a, b)


class TestAdjacency:
    def test_adjacent(self):
        assert is_adjacent((2, 2), (2, 3))
        assert is_adjacent((2, 2), (1, 2))

    def test_not_adjacent_diagonal(self):
        assert not is_adjacent((2, 2), (3, 3))

    def test_not_adjacent_self(self):
        assert not is_adjacent((2, 2), (2, 2))


class TestValidation:
    def test_in_box(self):
        assert in_box((1, 8), 8)
        assert not in_box((0, 5), 8)
        assert not in_box((1, 9), 8)

    def test_validate_node_normalizes(self):
        assert validate_node([2, 3], 2, 4) == (2, 3)

    def test_validate_node_rejects_wrong_dimension(self):
        with pytest.raises(ValueError):
            validate_node((1, 2, 3), 2, 4)

    def test_validate_node_rejects_out_of_bounds(self):
        with pytest.raises(ValueError):
            validate_node((0, 2), 2, 4)
        with pytest.raises(ValueError):
            validate_node((1, 5), 2, 4)
