"""Unit tests for the 2-neighbor relation (Definition 4)."""

import pytest

from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.mesh.two_neighbors import (
    are_two_neighbors,
    class_coordinates,
    equivalence_class_label,
    equivalence_classes,
    two_neighbor,
    two_neighbors_of,
)


class TestTwoNeighbor:
    def test_paper_positive_example(self):
        # (1,2) is a 2-neighbor of (3,2) in direction "-" of coordinate 1.
        mesh = Mesh(2, 4)
        assert are_two_neighbors(mesh, (3, 2), (1, 2))

    def test_paper_negative_example(self):
        # (2,3) is NOT a 2-neighbor of (3,2): no length-2 path with two
        # arcs of the same direction connects them.
        mesh = Mesh(2, 4)
        assert not are_two_neighbors(mesh, (3, 2), (2, 3))

    def test_direction_specific(self):
        mesh = Mesh(2, 5)
        assert two_neighbor(mesh, (3, 3), Direction(0, 1)) == (5, 3)
        assert two_neighbor(mesh, (3, 3), Direction(1, -1)) == (3, 1)

    def test_none_near_boundary(self):
        mesh = Mesh(2, 4)
        assert two_neighbor(mesh, (3, 2), Direction(0, 1)) is None
        assert two_neighbor(mesh, (4, 2), Direction(0, 1)) is None

    def test_symmetry(self):
        mesh = Mesh(2, 6)
        for node in mesh.nodes():
            for other in two_neighbors_of(mesh, node):
                assert are_two_neighbors(mesh, other, node)

    def test_count_interior(self):
        mesh = Mesh(2, 8)
        assert len(two_neighbors_of(mesh, (4, 4))) == 4
        assert len(two_neighbors_of(mesh, (1, 1))) == 2

    def test_torus_always_exists(self):
        torus = Torus(2, 6)
        for node in torus.nodes():
            assert len(two_neighbors_of(torus, node)) == 4


class TestEquivalenceClasses:
    @pytest.mark.parametrize("dimension", [1, 2, 3])
    def test_number_of_classes_is_2_to_d(self, dimension):
        mesh = Mesh(dimension, 4)
        classes = equivalence_classes(mesh)
        assert len(classes) == 2**dimension

    def test_even_side_equal_class_sizes(self):
        # Each class isomorphic to an (n/2)^d mesh when n is even.
        mesh = Mesh(2, 6)
        classes = equivalence_classes(mesh)
        assert all(len(members) == 9 for members in classes.values())

    def test_classes_partition_the_mesh(self):
        mesh = Mesh(2, 5)
        classes = equivalence_classes(mesh)
        all_nodes = [node for members in classes.values() for node in members]
        assert sorted(all_nodes) == sorted(mesh.nodes())

    def test_two_neighbors_share_class(self):
        mesh = Mesh(2, 6)
        for node in mesh.nodes():
            for other in two_neighbors_of(mesh, node):
                assert equivalence_class_label(node) == equivalence_class_label(
                    other
                )

    def test_adjacent_nodes_differ_in_class(self):
        mesh = Mesh(2, 6)
        for node in mesh.nodes():
            for other in mesh.neighbors(node):
                assert equivalence_class_label(node) != equivalence_class_label(
                    other
                )

    def test_label_is_parity_vector(self):
        assert equivalence_class_label((3, 4)) == (1, 0)
        assert equivalence_class_label((2, 2, 5)) == (0, 0, 1)


class TestClassCoordinates:
    def test_two_neighbors_become_adjacent(self):
        """Within a class, the 2-neighbor relation maps to ordinary
        adjacency of the class coordinates — the geometric fact behind
        the Lemma 14 volume argument."""
        mesh = Mesh(2, 8)
        for node in mesh.nodes():
            mapped = class_coordinates(node)
            for other in two_neighbors_of(mesh, node):
                other_mapped = class_coordinates(other)
                assert (
                    sum(
                        abs(x - y)
                        for x, y in zip(mapped, other_mapped)
                    )
                    == 1
                )

    def test_injective_within_class(self):
        mesh = Mesh(2, 8)
        classes = equivalence_classes(mesh)
        for members in classes.values():
            mapped = [class_coordinates(node) for node in members]
            assert len(set(mapped)) == len(mapped)
