"""Tests for the hypercube topology and its routing behavior."""

import pytest

from repro.algorithms import FixedPriorityPolicy, PlainGreedyPolicy
from repro.algorithms.hajek import fixed_priority_time_bound
from repro.core.engine import HotPotatoEngine
from repro.mesh.hypercube import Hypercube
from repro.workloads import random_many_to_many, random_permutation


class TestShape:
    def test_node_count(self):
        assert Hypercube(4).num_nodes == 16
        assert Hypercube(6).num_nodes == 64

    def test_uniform_degree(self):
        cube = Hypercube(4)
        assert all(cube.degree(node) == 4 for node in cube.nodes())

    def test_diameter_is_dimension(self):
        assert Hypercube(5).diameter == 5

    def test_kind(self):
        assert Hypercube(3).kind == "hypercube"


class TestBitAddressing:
    def test_round_trip(self):
        cube = Hypercube(5)
        for bits in cube.addresses():
            assert cube.to_bits(cube.node_of(bits)) == bits

    def test_from_bits_values(self):
        assert Hypercube.from_bits(0b101, 3) == (2, 1, 2)
        assert Hypercube.from_bits(0, 3) == (1, 1, 1)

    def test_from_bits_range(self):
        with pytest.raises(ValueError):
            Hypercube.from_bits(8, 3)

    def test_to_bits_rejects_non_cube_node(self):
        with pytest.raises(ValueError):
            Hypercube.to_bits((1, 3))


class TestHammingStructure:
    def test_distance_is_hamming(self):
        cube = Hypercube(4)
        a = cube.node_of(0b0000)
        b = cube.node_of(0b1011)
        assert cube.hamming_distance(a, b) == 3
        assert cube.distance(a, b) == 3

    def test_adjacent_iff_one_bit_flip(self):
        cube = Hypercube(3)
        for bits in cube.addresses():
            node = cube.node_of(bits)
            neighbors = {cube.to_bits(other) for other in cube.neighbors(node)}
            assert neighbors == {bits ^ (1 << axis) for axis in range(3)}

    def test_differing_axes_are_good_directions(self):
        cube = Hypercube(4)
        a = cube.node_of(0b0000)
        b = cube.node_of(0b0110)
        axes = cube.differing_axes(a, b)
        assert axes == [1, 2]
        good = cube.good_directions(a, b)
        assert sorted(d.axis for d in good) == axes

    def test_flip(self):
        cube = Hypercube(3)
        node = cube.node_of(0b010)
        assert cube.to_bits(cube.flip(node, 0)) == 0b011
        assert cube.to_bits(cube.flip(node, 1)) == 0b000
        with pytest.raises(ValueError):
            cube.flip(node, 5)

    def test_every_node_is_a_corner(self):
        cube = Hypercube(3)
        corners = {cube.corner(i) for i in range(8)}
        assert corners == set(cube.nodes())


class TestRoutingOnCube:
    def test_greedy_routes_random_batch(self):
        cube = Hypercube(6)
        problem = random_many_to_many(cube, k=60, seed=0)
        result = HotPotatoEngine(problem, PlainGreedyPolicy(), seed=0).run()
        assert result.completed

    def test_hajek_bound_2k_plus_n(self):
        """Hajek's hypercube result: fixed-priority greedy finishes
        within 2k + n steps (n = cube dimension)."""
        cube = Hypercube(6)
        for seed in (0, 1, 2):
            problem = random_many_to_many(cube, k=30, seed=seed)
            result = HotPotatoEngine(
                problem, FixedPriorityPolicy(), seed=seed
            ).run()
            assert result.completed
            assert result.total_steps <= 2 * problem.k + cube.dimension
            assert result.total_steps <= fixed_priority_time_bound(
                problem.k, problem.d_max
            )

    def test_permutation_fast(self):
        """Borodin–Hopcroft's observation: greedy permutation routing
        on the cube 'appears promising' — here within 2x the diameter."""
        cube = Hypercube(6)
        problem = random_permutation(cube, seed=3)
        result = HotPotatoEngine(problem, PlainGreedyPolicy(), seed=3).run()
        assert result.completed
        assert result.total_steps <= 2 * cube.dimension

    def test_load_capped_by_dimension(self):
        cube = Hypercube(5)
        problem = random_many_to_many(cube, k=80, seed=4)
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), seed=4, record_steps=True
        )
        result = engine.run()
        for record in result.records:
            loads = {}
            for info in record.infos.values():
                loads[info.node] = loads.get(info.node, 0) + 1
            assert max(loads.values()) <= 5
