"""The flat arc-index tables must agree with the mesh's own queries.

:class:`~repro.mesh.tables.ArcTables` is the array kernels' only view
of the topology, so every column is checked against the object-layer
methods it replaces: node numbering against :meth:`Mesh.nodes`,
``neighbor_flat`` against :meth:`Mesh.neighbor` (including off-mesh
arcs on the box mesh and wraparound on the torus), and the per-axis
packed tables against :meth:`Mesh.distance` and
:meth:`Mesh.good_directions_tuple` for arbitrary node/destination
pairs.
"""

import itertools
import random

import pytest

from repro.mesh.directions import Direction
from repro.mesh.hypercube import Hypercube
from repro.mesh.tables import ArcTables, arc_tables_for, direction_index
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus

# Odd and even torus sides behave differently at the wrap seam, so
# both appear; Mesh(3, 3) exercises the packing beyond two axes.
MESHES = [
    Mesh(2, 5),
    Mesh(3, 3),
    Torus(2, 4),
    Torus(2, 5),
    Hypercube(3),
]
IDS = [f"{type(m).__name__}-{m.dimension}d-{m.side}" for m in MESHES]


def _pairs(mesh, count=60, seed=7):
    rng = random.Random(seed)
    nodes = list(mesh.nodes())
    exhaustive = len(nodes) ** 2 <= count
    if exhaustive:
        return list(itertools.product(nodes, nodes))
    return [
        (rng.choice(nodes), rng.choice(nodes)) for _ in range(count)
    ]


class TestDirectionIndex:
    def test_axis_major_plus_before_minus(self):
        assert direction_index(Direction(0, 1)) == 0
        assert direction_index(Direction(0, -1)) == 1
        assert direction_index(Direction(2, 1)) == 4
        assert direction_index(Direction(2, -1)) == 5

    @pytest.mark.parametrize("mesh", MESHES, ids=IDS)
    def test_opposite_is_xor_one(self, mesh):
        tables = ArcTables(mesh)
        for k, direction in enumerate(tables.directions):
            assert direction_index(direction) == k
            assert direction_index(direction.opposite) == k ^ 1


class TestNodeNumbering:
    @pytest.mark.parametrize("mesh", MESHES, ids=IDS)
    def test_index_node_is_nodes_order(self, mesh):
        tables = ArcTables(mesh)
        assert tables.index_node == list(mesh.nodes())
        assert tables.num_nodes == mesh.num_nodes
        for index, node in enumerate(tables.index_node):
            assert tables.node_index[node] == index

    @pytest.mark.parametrize("mesh", MESHES, ids=IDS)
    def test_coords_column_matches_node_tuples(self, mesh):
        tables = ArcTables(mesh)
        for axis in range(mesh.dimension):
            assert tables.coords[axis] == [
                node[axis] for node in tables.index_node
            ]


class TestAdjacencyColumns:
    @pytest.mark.parametrize("mesh", MESHES, ids=IDS)
    def test_neighbor_flat_matches_mesh_neighbor(self, mesh):
        tables = ArcTables(mesh)
        two_d = tables.num_directions
        for index, node in enumerate(tables.index_node):
            for k, direction in enumerate(tables.directions):
                other = mesh.neighbor(node, direction)
                entry = tables.neighbor_flat[index * two_d + k]
                if other is None:
                    assert entry == -1
                else:
                    assert tables.index_node[entry] == other

    @pytest.mark.parametrize("mesh", MESHES, ids=IDS)
    def test_out_mask_and_degrees_match_mesh_degree(self, mesh):
        tables = ArcTables(mesh)
        for index, node in enumerate(tables.index_node):
            mask = tables.out_mask[index]
            assert tables.degrees[index] == mesh.degree(node)
            assert mask.bit_count() == mesh.degree(node)
            for k, direction in enumerate(tables.directions):
                present = mesh.neighbor(node, direction) is not None
                assert bool(mask & (1 << k)) == present

    def test_box_mesh_boundary_arcs_are_off_mesh(self):
        tables = ArcTables(Mesh(2, 5))
        corner = tables.node_index[(1, 1)]
        two_d = tables.num_directions
        # (1, 1) has no -x / -y neighbors (indices 1 and 3).
        assert tables.neighbor_flat[corner * two_d + 1] == -1
        assert tables.neighbor_flat[corner * two_d + 3] == -1
        assert tables.degrees[corner] == 2

    def test_torus_wraps_where_box_mesh_ends(self):
        tables = ArcTables(Torus(2, 4))
        corner = tables.node_index[(1, 1)]
        two_d = tables.num_directions
        assert (
            tables.index_node[tables.neighbor_flat[corner * two_d + 1]]
            == (4, 1)
        )
        assert all(degree == 4 for degree in tables.degrees)


class TestPackedTables:
    @pytest.mark.parametrize("mesh", MESHES, ids=IDS)
    def test_packed_sum_reproduces_distance_and_goodness(self, mesh):
        tables = ArcTables(mesh)
        side1 = mesh.side + 1
        for node, dest in _pairs(mesh):
            acc = 0
            for axis in range(mesh.dimension):
                acc += tables.packed[axis][
                    node[axis] * side1 + dest[axis]
                ]
            good_mask = acc & tables.good_mask_all
            distance = acc >> tables.shift
            assert distance == mesh.distance(node, dest)
            expected_mask = 0
            for direction in mesh.good_directions_tuple(node, dest):
                expected_mask |= 1 << direction_index(direction)
            assert good_mask == expected_mask

    def test_torus_odd_side_has_unique_good_direction(self):
        # Odd side: the shorter way around is never a tie, so each
        # off-axis coordinate contributes exactly one good direction.
        mesh = Torus(2, 5)
        tables = ArcTables(mesh)
        for here in range(1, 6):
            for there in range(1, 6):
                if here == there:
                    continue
                entry = tables.packed[0][here * 6 + there]
                assert (entry & tables.good_mask_all).bit_count() == 1

    def test_torus_even_side_ties_give_two_good_directions(self):
        # Even side: opposite coordinates are equidistant both ways
        # around, so both directions on that axis are good.
        mesh = Torus(2, 4)
        tables = ArcTables(mesh)
        entry = tables.packed[0][1 * 5 + 3]  # 1 -> 3 on side 4
        assert (entry & tables.good_mask_all).bit_count() == 2
        assert entry >> tables.shift == 2


class TestCache:
    def test_same_shape_shares_tables(self):
        assert arc_tables_for(Mesh(2, 6)) is arc_tables_for(Mesh(2, 6))

    def test_distinct_shapes_get_distinct_tables(self):
        assert arc_tables_for(Mesh(2, 6)) is not arc_tables_for(Mesh(2, 7))
        # A torus is not a box mesh even at the same (dimension, side).
        assert arc_tables_for(Torus(2, 6)) is not arc_tables_for(Mesh(2, 6))

    def test_cached_tables_match_fresh_tables(self):
        mesh = Torus(2, 5)
        cached = arc_tables_for(mesh)
        fresh = ArcTables(mesh)
        assert cached.neighbor_flat == fresh.neighbor_flat
        assert cached.packed == fresh.packed
        assert cached.out_mask == fresh.out_mask

    def test_cache_evicts_least_recently_used_shape(self, monkeypatch):
        import repro.mesh.tables as tables_mod

        monkeypatch.setattr(tables_mod, "TABLE_CACHE_LIMIT", 2)
        tables_mod._TABLE_CACHE.clear()

        first = arc_tables_for(Mesh(2, 3))
        second = arc_tables_for(Mesh(2, 4))
        # Touch the first entry so the second becomes least recent.
        assert arc_tables_for(Mesh(2, 3)) is first
        # A third shape overflows the limit and evicts Mesh(2, 4).
        third = arc_tables_for(Mesh(2, 5))
        assert arc_tables_for(Mesh(2, 3)) is first
        assert arc_tables_for(Mesh(2, 5)) is third
        assert arc_tables_for(Mesh(2, 4)) is not second
        assert len(tables_mod._TABLE_CACHE) == tables_mod.TABLE_CACHE_LIMIT

    def test_cache_stays_within_documented_limit(self, monkeypatch):
        import repro.mesh.tables as tables_mod

        monkeypatch.setattr(tables_mod, "TABLE_CACHE_LIMIT", 3)
        tables_mod._TABLE_CACHE.clear()
        for side in range(3, 10):
            arc_tables_for(Mesh(2, side))
        assert len(tables_mod._TABLE_CACHE) == 3
