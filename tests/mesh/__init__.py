"""Test package."""
