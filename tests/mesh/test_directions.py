"""Unit tests for Direction and direction algebra (Definition 3)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.mesh.directions import (
    Direction,
    all_directions,
    direction_of_arc,
    directions_toward,
    signed_axis_offsets,
)


class TestDirection:
    def test_apply_positive(self):
        assert Direction(0, 1).apply((2, 2)) == (3, 2)

    def test_apply_negative(self):
        assert Direction(1, -1).apply((2, 2)) == (2, 1)

    def test_opposite(self):
        d = Direction(2, 1)
        assert d.opposite == Direction(2, -1)
        assert d.opposite.opposite == d

    def test_invalid_sign(self):
        with pytest.raises(ValueError):
            Direction(0, 2)

    def test_invalid_axis(self):
        with pytest.raises(ValueError):
            Direction(-1, 1)

    def test_apply_axis_out_of_range(self):
        with pytest.raises(ValueError):
            Direction(3, 1).apply((1, 2))

    def test_arc_from(self):
        assert Direction(0, 1).arc_from((1, 1)) == ((1, 1), (2, 1))

    def test_str(self):
        assert str(Direction(0, 1)) == "+x0"
        assert str(Direction(2, -1)) == "-x2"

    def test_hashable_and_ordered(self):
        directions = {Direction(0, 1), Direction(0, 1), Direction(0, -1)}
        assert len(directions) == 2
        assert Direction(0, -1) < Direction(0, 1) or Direction(0, 1) < Direction(0, -1)


class TestAllDirections:
    @pytest.mark.parametrize("dimension", [1, 2, 3, 5])
    def test_count_is_2d(self, dimension):
        assert len(all_directions(dimension)) == 2 * dimension

    def test_deterministic_order(self):
        assert all_directions(2) == [
            Direction(0, 1),
            Direction(0, -1),
            Direction(1, 1),
            Direction(1, -1),
        ]

    def test_invalid_dimension(self):
        with pytest.raises(ValueError):
            all_directions(0)

    @pytest.mark.parametrize("dimension", [1, 2, 4])
    def test_closed_under_opposite(self, dimension):
        directions = set(all_directions(dimension))
        assert {d.opposite for d in directions} == directions


class TestDirectionOfArc:
    def test_recovers_direction(self):
        for direction in all_directions(3):
            arc = direction.arc_from((2, 2, 2))
            assert direction_of_arc(arc) == direction

    def test_rejects_non_arc(self):
        with pytest.raises(ValueError):
            direction_of_arc(((1, 1), (2, 2)))
        with pytest.raises(ValueError):
            direction_of_arc(((1, 1), (1, 1)))
        with pytest.raises(ValueError):
            direction_of_arc(((1, 1), (1, 3)))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(ValueError):
            direction_of_arc(((1, 1), (1, 1, 2)))


class TestDirectionsToward:
    def test_paper_example(self):
        # Section 2.2 example: packet at (1,3,2,6,1) destined (4,3,8,2,1)
        # has good directions +x0, +x2, -x3.
        good = set(directions_toward((1, 3, 2, 6, 1), (4, 3, 8, 2, 1)))
        assert good == {Direction(0, 1), Direction(2, 1), Direction(3, -1)}

    def test_empty_at_destination(self):
        assert list(directions_toward((2, 2), (2, 2))) == []

    @given(st.integers(1, 4), st.data())
    def test_count_matches_nonzero_offsets(self, dimension, data):
        coords = st.integers(1, 9)
        point = st.tuples(*[coords] * dimension)
        origin = data.draw(point)
        target = data.draw(point)
        toward = list(directions_toward(origin, target))
        nonzero = sum(1 for s in signed_axis_offsets(origin, target) if s)
        assert len(toward) == nonzero

    def test_mismatch_raises(self):
        with pytest.raises(ValueError):
            list(directions_toward((1,), (1, 2)))


class TestSignedAxisOffsets:
    def test_values(self):
        assert signed_axis_offsets((2, 2, 2), (1, 2, 5)) == (-1, 0, 1)
