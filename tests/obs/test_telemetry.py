"""Unit tests for the lean-path run counters."""

import pytest

from repro.core.kernel import StepSummary
from repro.obs.telemetry import RunTelemetry, aggregate


def summary(**overrides):
    base = dict(
        step=0,
        generated=0,
        injected=0,
        routed=0,
        moved=0,
        advancing=0,
        delivered=0,
        delivered_total=0,
        total_distance=0,
        max_node_load=0,
        bad_nodes=0,
        packets_in_bad_nodes=0,
        backlog=0,
    )
    base.update(overrides)
    return StepSummary(**base)


class TestNoteSummary:
    def test_totals_add_and_peaks_max(self):
        tel = RunTelemetry()
        tel.note_summary(
            summary(routed=5, moved=5, advancing=4, delivered=1,
                    max_node_load=2, backlog=3)
        )
        tel.note_summary(
            summary(routed=3, moved=3, advancing=3, delivered=2,
                    max_node_load=1, backlog=1)
        )
        assert tel.steps == 2
        assert tel.packet_steps == 8
        assert tel.delivered == 3
        assert tel.advances == 7
        assert tel.deflections == 1
        assert tel.max_in_flight == 5
        assert tel.max_node_load == 2
        assert tel.max_backlog == 3

    def test_generated_and_injected_counted(self):
        tel = RunTelemetry()
        tel.note_summary(summary(generated=4, injected=2))
        assert tel.generated == 4
        assert tel.injected == 2


class TestMergeAndAggregate:
    def test_merge_is_the_cross_worker_rule(self):
        a = RunTelemetry(steps=2, packet_steps=10, delivered=3,
                         advances=8, deflections=2, max_in_flight=7,
                         max_node_load=2, max_backlog=0)
        b = RunTelemetry(steps=3, packet_steps=4, delivered=1,
                         advances=4, deflections=0, max_in_flight=2,
                         max_node_load=3, max_backlog=5)
        a.merge(b)
        assert a.steps == 5
        assert a.packet_steps == 14
        assert a.delivered == 4
        assert a.max_in_flight == 7
        assert a.max_node_load == 3
        assert a.max_backlog == 5

    def test_aggregate_skips_none_entries(self):
        total = aggregate([None, RunTelemetry(steps=1), None,
                           RunTelemetry(steps=2)])
        assert total is not None
        assert total.steps == 3

    def test_aggregate_of_all_none_is_none(self):
        assert aggregate([None, None]) is None
        assert aggregate([]) is None

    def test_aggregate_does_not_mutate_inputs(self):
        item = RunTelemetry(steps=1)
        total = aggregate([item, RunTelemetry(steps=1)])
        assert item.steps == 1
        assert total.steps == 2


class TestDeflectionRate:
    def test_rate_over_moved_packet_steps(self):
        tel = RunTelemetry(advances=6, deflections=2)
        assert tel.deflection_rate == pytest.approx(0.25)

    def test_empty_run_is_zero_not_nan(self):
        assert RunTelemetry().deflection_rate == 0.0


class TestDictRoundTrip:
    def test_round_trip(self):
        tel = RunTelemetry(steps=4, packet_steps=9, generated=1,
                           injected=1, delivered=2, advances=7,
                           deflections=2, max_in_flight=3,
                           max_node_load=2, max_backlog=1)
        assert RunTelemetry.from_dict(tel.to_dict()) == tel

    def test_partial_dict_fills_defaults(self):
        tel = RunTelemetry.from_dict({"steps": 2})
        assert tel.steps == 2
        assert tel.packet_steps == 0

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown telemetry fields"):
            RunTelemetry.from_dict({"steps": 1, "bogus": 2})

    def test_non_int_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            RunTelemetry.from_dict({"steps": 1.5})

    def test_bool_rejected_despite_being_int_subclass(self):
        with pytest.raises(ValueError, match="must be an int"):
            RunTelemetry.from_dict({"steps": True})


class TestSummaryLine:
    def test_one_line_with_headline_counters(self):
        line = RunTelemetry(steps=3, packet_steps=12).summary()
        assert "\n" not in line
        assert line.startswith("telemetry: steps=3 packet_steps=12")
