"""Unit tests for the kernel phase profiler."""

import pytest

from repro.obs.profiler import PHASES, PhaseProfiler


class TestRecordStep:
    def test_accumulates_per_phase(self):
        prof = PhaseProfiler()
        prof.record_step(1, 2, 3, 4, 5)
        prof.record_step(10, 20, 30, 40, 50)
        assert prof.steps == 2
        assert prof.totals() == {
            "inject": 11,
            "rank": 22,
            "arc_assign": 33,
            "move": 44,
            "deliver": 55,
        }
        assert prof.total_ns == 165

    def test_totals_keys_match_phase_order(self):
        assert tuple(PhaseProfiler().totals()) == PHASES


class TestShares:
    def test_shares_sum_to_one(self):
        prof = PhaseProfiler()
        prof.record_step(1, 2, 3, 4, 10)
        shares = prof.shares()
        assert sum(shares.values()) == pytest.approx(1.0)
        assert shares["deliver"] == pytest.approx(0.5)

    def test_empty_run_shares_are_zero(self):
        assert PhaseProfiler().shares() == {p: 0.0 for p in PHASES}


class TestMerge:
    def test_everything_adds(self):
        a = PhaseProfiler()
        a.record_step(1, 1, 1, 1, 1)
        b = PhaseProfiler()
        b.record_step(2, 2, 2, 2, 2)
        b.record_step(3, 3, 3, 3, 3)
        a.merge(b)
        assert a.steps == 3
        assert a.total_ns == 30


class TestDictRoundTrip:
    def test_round_trip(self):
        prof = PhaseProfiler()
        prof.record_step(1, 2, 3, 4, 5)
        assert PhaseProfiler.from_dict(prof.to_dict()) == prof

    def test_unknown_field_rejected(self):
        with pytest.raises(ValueError, match="unknown profiler fields"):
            PhaseProfiler.from_dict({"steps": 1, "bogus_ns": 2})

    def test_non_int_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            PhaseProfiler.from_dict({"rank_ns": 1.5})

    def test_bool_rejected(self):
        with pytest.raises(ValueError, match="must be an int"):
            PhaseProfiler.from_dict({"steps": True})


class TestClock:
    def test_clock_is_monotonic_nanoseconds(self):
        prof = PhaseProfiler()
        first = prof.clock()
        second = prof.clock()
        assert isinstance(first, int)
        assert second >= first


class TestFormatTable:
    def test_table_lists_every_phase_and_total(self):
        prof = PhaseProfiler()
        prof.record_step(1_000_000, 2_000_000, 3_000_000,
                         4_000_000, 5_000_000)
        table = prof.format_table()
        for phase in PHASES:
            assert phase in table
        assert "total" in table
        assert "1 steps" in table

    def test_empty_profile_renders_without_division_error(self):
        table = PhaseProfiler().format_table()
        assert "total" in table
