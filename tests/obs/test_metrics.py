"""Metric registry semantics: plain-int instruments, get-or-create
ownership, schema-versioned snapshots, and the commutative merge."""

import pytest

from repro.obs.metrics import (
    DEFLECTION_BUCKETS,
    NODE_LOAD_BUCKETS,
    REGISTRY_SCHEMA_VERSION,
    Counter,
    Gauge,
    Histogram,
    MetricRegistry,
    RunMetricsRecorder,
    fold_telemetry,
)
from repro.obs.telemetry import RunTelemetry


class TestCounter:
    def test_accumulates(self):
        counter = Counter("repro_x_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_rejects_decrease(self):
        counter = Counter("repro_x_total")
        with pytest.raises(ValueError, match="cannot decrease"):
            counter.inc(-1)

    def test_rejects_floats_and_bools(self):
        counter = Counter("repro_x_total")
        with pytest.raises(TypeError, match="plain ints"):
            counter.inc(1.5)
        with pytest.raises(TypeError, match="plain ints"):
            counter.inc(True)

    @pytest.mark.parametrize(
        "name", ["", "9starts_with_digit", "has space", "has-dash"]
    )
    def test_rejects_bad_names(self, name):
        with pytest.raises(ValueError, match="invalid metric name"):
            Counter(name)

    def test_accepts_prometheus_grammar(self):
        for name in ("repro_x_total", "_x", "ns:sub:metric", "X9"):
            assert Counter(name).name == name


class TestGauge:
    def test_keeps_high_water_mark(self):
        gauge = Gauge("repro_peak")
        gauge.set(5)
        gauge.set(3)
        assert gauge.value == 5
        gauge.set(9)
        assert gauge.value == 9


class TestHistogram:
    def test_bucket_placement_and_overflow(self):
        hist = Histogram("repro_h", buckets=(1, 4, 8))
        for value in (0, 1, 2, 4, 5, 8, 9, 100):
            hist.observe(value)
        # <=1: 0,1 | <=4: 2,4 | <=8: 5,8 | overflow: 9,100
        assert hist.counts == [2, 2, 2, 2]
        assert hist.count == 8
        assert hist.sum == 129

    def test_rejects_non_increasing_buckets(self):
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_h", buckets=(1, 1, 2))
        with pytest.raises(ValueError, match="strictly increasing"):
            Histogram("repro_h", buckets=())


class TestRegistry:
    def test_get_or_create_returns_same_instance(self):
        registry = MetricRegistry()
        first = registry.counter("repro_a_total", "help")
        second = registry.counter("repro_a_total")
        assert first is second
        assert len(registry) == 1

    def test_kind_mismatch_raises(self):
        registry = MetricRegistry()
        registry.counter("repro_a")
        with pytest.raises(ValueError, match="already registered as"):
            registry.gauge("repro_a")

    def test_histogram_bucket_mismatch_raises(self):
        registry = MetricRegistry()
        registry.histogram("repro_h", buckets=(1, 2))
        with pytest.raises(ValueError, match="already registered with"):
            registry.histogram("repro_h", buckets=(1, 3))

    def test_metrics_sorted_by_name(self):
        registry = MetricRegistry()
        registry.counter("repro_z")
        registry.counter("repro_a")
        registry.gauge("repro_m")
        assert [m.name for m in registry.metrics()] == [
            "repro_a",
            "repro_m",
            "repro_z",
        ]

    def test_snapshot_round_trip(self):
        registry = MetricRegistry()
        registry.counter("repro_c", "c help").inc(7)
        registry.gauge("repro_g", "g help").set(3)
        hist = registry.histogram("repro_h", buckets=(1, 2), help="h help")
        hist.observe(0)
        hist.observe(5)
        snapshot = registry.snapshot()
        assert snapshot["schema_version"] == REGISTRY_SCHEMA_VERSION
        rebuilt = MetricRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == snapshot

    def test_snapshot_version_checked(self):
        with pytest.raises(ValueError, match="schema_version"):
            MetricRegistry.from_snapshot(
                {"schema_version": 99, "metrics": []}
            )

    def test_merge_semantics(self):
        a = MetricRegistry()
        a.counter("repro_c").inc(3)
        a.gauge("repro_g").set(10)
        a.histogram("repro_h", buckets=(1, 2)).observe(1)
        b = MetricRegistry()
        b.counter("repro_c").inc(4)
        b.gauge("repro_g").set(6)
        b.histogram("repro_h", buckets=(1, 2)).observe(5)
        b.counter("repro_only_b").inc(1)
        a.merge(b)
        assert a.counter("repro_c").value == 7
        assert a.gauge("repro_g").value == 10
        assert a.histogram("repro_h", buckets=(1, 2)).counts == [1, 0, 1]
        assert a.counter("repro_only_b").value == 1

    def test_merge_accepts_snapshot_payload(self):
        a = MetricRegistry()
        a.counter("repro_c").inc(1)
        b = MetricRegistry()
        b.counter("repro_c").inc(2)
        a.merge(b.snapshot())
        assert a.counter("repro_c").value == 3

    def test_merge_bucket_mismatch_raises(self):
        a = MetricRegistry()
        a.histogram("repro_h", buckets=(1, 2))
        b = MetricRegistry()
        b.histogram("repro_h", buckets=(1, 4))
        with pytest.raises(ValueError, match="already registered with"):
            a.merge(b)


class TestFoldTelemetry:
    def test_totals_and_peaks(self):
        registry = MetricRegistry()
        fold_telemetry(
            registry,
            RunTelemetry(
                steps=5,
                packet_steps=20,
                delivered=4,
                advances=15,
                deflections=5,
                max_in_flight=6,
                max_node_load=3,
            ),
        )
        fold_telemetry(
            registry,
            RunTelemetry(
                steps=2, packet_steps=4, max_in_flight=2, max_node_load=9
            ),
        )
        assert registry.counter("repro_run_steps_total").value == 7
        assert registry.counter("repro_run_packet_steps_total").value == 24
        assert registry.gauge("repro_run_peak_in_flight").value == 6
        assert registry.gauge("repro_run_peak_node_load").value == 9

    def test_none_is_noop(self):
        registry = MetricRegistry()
        fold_telemetry(registry, None)
        assert len(registry) == 0


class TestRunMetricsRecorder:
    def test_lean_loop_safe_flags(self):
        recorder = RunMetricsRecorder()
        assert recorder.needs_steps is False
        assert recorder.needs_summaries is True

    def test_metrics_preregistered(self):
        recorder = RunMetricsRecorder()
        registry = recorder.registry
        assert "repro_step_steps_total" in registry
        assert "repro_step_peak_node_load" in registry
        hist = registry.get("repro_step_node_load")
        assert hist.buckets == NODE_LOAD_BUCKETS
        assert (
            registry.get("repro_step_deflections").buckets
            == DEFLECTION_BUCKETS
        )

    def test_shares_caller_registry(self):
        registry = MetricRegistry()
        recorder = RunMetricsRecorder(registry)
        assert recorder.registry is registry

    def test_on_summary_accumulates(self):
        from repro.core.kernel import StepSummary

        recorder = RunMetricsRecorder()
        recorder.on_summary(
            StepSummary(
                step=0,
                generated=0,
                injected=0,
                routed=4,
                moved=4,
                advancing=3,
                delivered=1,
                delivered_total=1,
                total_distance=9,
                max_node_load=2,
                bad_nodes=0,
                packets_in_bad_nodes=0,
                backlog=0,
            )
        )
        registry = recorder.registry
        assert registry.counter("repro_step_steps_total").value == 1
        assert registry.counter("repro_step_packet_steps_total").value == 4
        assert registry.counter("repro_step_advances_total").value == 3
        assert registry.counter("repro_step_deflections_total").value == 1
        assert registry.gauge("repro_step_peak_in_flight").value == 4
        assert registry.get("repro_step_node_load").counts[1] == 1
