"""Deflection-causality tracing: lifecycle events, attribution, and
chain reconstruction against real engine runs."""

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.dynamic import BernoulliTraffic, DynamicEngine
from repro.mesh.topology import Mesh
from repro.obs.tracing import (
    EVENT_KINDS,
    PacketTrace,
    PacketTracer,
    TraceEvent,
)
from repro.workloads import random_many_to_many, single_target


def traced_run(problem, seed=0):
    tracer = PacketTracer()
    engine = HotPotatoEngine(
        problem, RestrictedPriorityPolicy(), seed=seed, observers=[tracer]
    )
    result = engine.run()
    assert result.completed
    return engine, result, tracer.trace


class TestTraceEvent:
    def test_round_trip_with_optional_fields(self):
        event = TraceEvent(
            kind="deflect", step=3, packet=7, node=(1, 2), to=(1, 3), by=9
        )
        payload = event.to_dict()
        assert payload["node"] == [1, 2]
        assert payload["to"] == [1, 3]
        assert TraceEvent.from_dict(payload) == event

    def test_omits_absent_optionals(self):
        payload = TraceEvent(
            kind="inject", step=0, packet=1, node=(0, 0)
        ).to_dict()
        assert "to" not in payload and "by" not in payload
        rebuilt = TraceEvent.from_dict(payload)
        assert rebuilt.to is None and rebuilt.by is None

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown trace event kind"):
            TraceEvent.from_dict(
                {"kind": "teleport", "step": 0, "packet": 1, "node": [0, 0]}
            )


class TestChainQueries:
    def test_chain_follows_attribution_backwards(self):
        trace = PacketTrace()
        # q deflected at step 1 with no cause; p deflected by q at
        # step 3; r deflected by p at step 5.
        trace.append(
            TraceEvent(kind="deflect", step=1, packet=2, node=(0, 0))
        )
        trace.append(
            TraceEvent(kind="deflect", step=3, packet=1, node=(1, 0), by=2)
        )
        trace.append(
            TraceEvent(kind="deflect", step=5, packet=3, node=(2, 0), by=1)
        )
        chain = trace.deflection_chain(3)
        assert [(e.packet, e.step) for e in chain] == [
            (3, 5),
            (1, 3),
            (2, 1),
        ]

    def test_chain_from_specific_step(self):
        trace = PacketTrace()
        trace.append(
            TraceEvent(kind="deflect", step=1, packet=1, node=(0, 0))
        )
        trace.append(
            TraceEvent(kind="deflect", step=4, packet=1, node=(0, 1))
        )
        assert [e.step for e in trace.deflection_chain(1, step=1)] == [1]
        assert trace.deflection_chain(1, step=2) == []

    def test_deflected_by_counts(self):
        trace = PacketTrace()
        for step in (1, 3):
            trace.append(
                TraceEvent(
                    kind="deflect", step=step, packet=1, node=(0, 0), by=2
                )
            )
        assert trace.deflected_by_counts() == {(1, 2): 2}


class TestTracedBatchRun:
    def test_events_reconcile_with_telemetry(self):
        mesh = Mesh(2, 6)
        problem = random_many_to_many(mesh, k=30, seed=3)
        engine, result, trace = traced_run(problem)
        kinds = {}
        for event in trace.events:
            assert event.kind in EVENT_KINDS
            kinds[event.kind] = kinds.get(event.kind, 0) + 1
        telemetry = engine.telemetry
        assert kinds["inject"] == 30
        assert kinds["deliver"] == telemetry.delivered == 30
        assert kinds.get("advance", 0) == telemetry.advances
        assert kinds.get("deflect", 0) == telemetry.deflections

    def test_lifecycles_are_well_formed(self):
        mesh = Mesh(2, 6)
        problem = random_many_to_many(mesh, k=30, seed=3)
        _, _, trace = traced_run(problem)
        for packet in trace.packets():
            events = trace.events_for(packet)
            assert events[0].kind == "inject"
            assert events[-1].kind == "deliver"
            steps = [e.step for e in events]
            assert steps == sorted(steps)

    def test_congested_run_attributes_deflections(self):
        # A single hot target forces contention, so every deflection
        # should have a contending packet to blame.
        mesh = Mesh(2, 6)
        problem = single_target(mesh, 25, seed=2)
        _, _, trace = traced_run(problem)
        deflects = [e for e in trace.events if e.kind == "deflect"]
        assert deflects, "hot-spot workload must deflect"
        assert all(e.by is not None for e in deflects)
        victim = deflects[-1].packet
        chain = trace.deflection_chain(victim)
        assert chain[0].packet == victim
        for cause, effect in zip(chain[1:], chain):
            assert effect.by == cause.packet
            assert cause.step < effect.step

    def test_tracing_does_not_change_the_run(self):
        mesh = Mesh(2, 6)
        problem = random_many_to_many(mesh, k=30, seed=3)
        plain = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=0
        ).run()
        _, traced, _ = traced_run(problem)
        assert traced.total_steps == plain.total_steps
        assert traced.step_metrics == plain.step_metrics
        assert traced.outcomes == plain.outcomes


class TestTracedDynamicRun:
    def test_source_injections_emit_inject_events(self):
        mesh = Mesh(2, 5)
        tracer = PacketTracer()
        engine = DynamicEngine(
            mesh,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.1),
            seed=4,
            observers=[tracer],
        )
        engine.run(80)
        injects = [e for e in tracer.trace.events if e.kind == "inject"]
        assert len(injects) == engine.telemetry.injected > 0
