"""Exporters: JSONL round-trips (strict on schema) and the Prometheus
text exposition rendering."""

import json

import pytest

from repro.obs.export import (
    read_series_jsonl,
    read_trace_jsonl,
    render_prometheus,
    write_series_jsonl,
    write_trace_jsonl,
)
from repro.obs.metrics import MetricRegistry
from repro.obs.series import StepSeries
from repro.obs.tracing import PacketTrace, TraceEvent

from tests.obs.test_series import summary


def small_series(steps=5):
    series = StepSeries(capacity=16)
    for step in range(steps):
        series.record(summary(step, phi=100 - step, routed=3, advancing=2))
    return series


def small_trace():
    trace = PacketTrace()
    trace.append(TraceEvent(kind="inject", step=0, packet=1, node=(0, 0)))
    trace.append(
        TraceEvent(
            kind="deflect", step=1, packet=1, node=(0, 1), to=(0, 0), by=2
        )
    )
    trace.append(TraceEvent(kind="deliver", step=4, packet=1, node=(2, 2)))
    return trace


class TestSeriesJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "series.jsonl"
        written = write_series_jsonl(
            small_series(), path, meta={"seed": 7}
        )
        assert written == 5
        [(header, series)] = read_series_jsonl(path)
        assert header["schema_version"] == 1
        assert header["meta"] == {"seed": 7}
        assert series.to_dict() == small_series().to_dict()

    def test_appends_multiple_series(self, tmp_path):
        path = tmp_path / "series.jsonl"
        write_series_jsonl(small_series(3), path)
        write_series_jsonl(small_series(5), path)
        pairs = read_series_jsonl(path)
        assert [len(series) for _, series in pairs] == [3, 5]

    def test_sample_before_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"sample","step":0}\n')
        with pytest.raises(ValueError, match="before series-header"):
            read_series_jsonl(path)

    def test_version_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_series_jsonl(small_series(2), path)
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        header["schema_version"] = 99
        path.write_text("\n".join([json.dumps(header)] + lines[1:]) + "\n")
        with pytest.raises(ValueError, match="schema_version"):
            read_series_jsonl(path)

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_series_jsonl(small_series(3), path)
        truncated = path.read_text().splitlines()[:-1]
        path.write_text("\n".join(truncated) + "\n")
        with pytest.raises(ValueError, match="promised 3 samples"):
            read_series_jsonl(path)

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"mystery"}\n')
        with pytest.raises(ValueError, match="unknown line kind"):
            read_series_jsonl(path)


class TestTraceJsonl:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        written = write_trace_jsonl(small_trace(), path, meta={"seed": 1})
        assert written == 3
        [(header, trace)] = read_trace_jsonl(path)
        assert header["meta"] == {"seed": 1}
        assert trace.events == small_trace().events

    def test_count_mismatch_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        write_trace_jsonl(small_trace(), path)
        truncated = path.read_text().splitlines()[:-1]
        path.write_text("\n".join(truncated) + "\n")
        with pytest.raises(ValueError, match="promised 3 events"):
            read_trace_jsonl(path)


class TestPrometheusRendering:
    def test_counters_and_gauges(self):
        registry = MetricRegistry()
        registry.counter("repro_c_total", "c help").inc(5)
        registry.gauge("repro_g", "g help").set(2)
        text = render_prometheus(registry)
        assert "# HELP repro_c_total c help" in text
        assert "# TYPE repro_c_total counter" in text
        assert "repro_c_total 5" in text
        assert "# TYPE repro_g gauge" in text
        assert "repro_g 2" in text
        assert text.endswith("\n")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricRegistry()
        hist = registry.histogram("repro_h", buckets=(1, 4))
        for value in (0, 1, 3, 9):
            hist.observe(value)
        text = render_prometheus(registry)
        assert 'repro_h_bucket{le="1"} 2' in text
        assert 'repro_h_bucket{le="4"} 3' in text
        assert 'repro_h_bucket{le="+Inf"} 4' in text
        assert "repro_h_sum 13" in text
        assert "repro_h_count 4" in text

    def test_sorted_name_order_is_deterministic(self):
        first = MetricRegistry()
        first.counter("repro_b").inc()
        first.counter("repro_a").inc()
        second = MetricRegistry()
        second.counter("repro_a").inc()
        second.counter("repro_b").inc()
        assert render_prometheus(first) == render_prometheus(second)

    def test_accepts_snapshot_payload(self):
        registry = MetricRegistry()
        registry.counter("repro_c").inc(3)
        assert render_prometheus(registry.snapshot()) == render_prometheus(
            registry
        )

    def test_help_escaping(self):
        registry = MetricRegistry()
        registry.counter("repro_c", "line\nbreak \\ slash")
        text = render_prometheus(registry)
        assert "# HELP repro_c line\\nbreak \\\\ slash" in text

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricRegistry()) == ""
