"""Property tests: the cross-worker aggregation rules are commutative
and associative, so campaign results cannot depend on worker
scheduling order."""

import dataclasses
from types import SimpleNamespace

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.campaign.results import aggregate_telemetry
from repro.obs.metrics import MetricRegistry
from repro.obs.telemetry import RunTelemetry, aggregate

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

counts = st.integers(min_value=0, max_value=10**6)

telemetries = st.builds(
    RunTelemetry,
    steps=counts,
    packet_steps=counts,
    generated=counts,
    injected=counts,
    delivered=counts,
    advances=counts,
    deflections=counts,
    dropped=counts,
    max_in_flight=counts,
    max_node_load=counts,
    max_backlog=counts,
)

# A small shared name pool so shuffled registries overlap on metrics;
# every histogram name uses the same buckets (mismatched buckets are a
# hard error by design, covered in test_metrics.py).
_BUCKETS = (1, 4, 16)


@st.composite
def registries(draw):
    registry = MetricRegistry()
    for name in draw(st.sets(st.sampled_from("abcde"), min_size=1)):
        registry.counter(f"repro_c_{name}").inc(draw(counts))
    for name in draw(st.sets(st.sampled_from("abc"))):
        registry.gauge(f"repro_g_{name}").set(draw(counts))
    for name in draw(st.sets(st.sampled_from("ab"))):
        hist = registry.histogram(f"repro_h_{name}", buckets=_BUCKETS)
        for value in draw(st.lists(counts, max_size=5)):
            hist.observe(value)
    return registry


def merged_telemetry(items):
    total = RunTelemetry()
    for item in items:
        total.merge(item)
    return total


def merged_registry(items):
    total = MetricRegistry()
    for item in items:
        total.merge(item)
    return total.snapshot()


class TestTelemetryMerge:
    @SLOW
    @given(st.lists(telemetries, min_size=1, max_size=6), st.randoms())
    def test_order_independent(self, items, rng):
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert merged_telemetry(shuffled) == merged_telemetry(items)

    @SLOW
    @given(telemetries, telemetries, telemetries)
    def test_associative(self, a, b, c):
        left = merged_telemetry([merged_telemetry([a, b]), c])
        right = merged_telemetry([a, merged_telemetry([b, c])])
        assert left == right

    @SLOW
    @given(telemetries, telemetries)
    def test_merge_matches_fieldwise_rule(self, a, b):
        merged = merged_telemetry([a, b])
        for field in dataclasses.fields(RunTelemetry):
            x, y = getattr(a, field.name), getattr(b, field.name)
            expected = max(x, y) if field.name.startswith("max_") else x + y
            assert getattr(merged, field.name) == expected


class TestAggregateTelemetry:
    @SLOW
    @given(
        st.lists(st.one_of(st.none(), telemetries), max_size=6),
        st.randoms(),
    )
    def test_order_independent_and_none_transparent(self, items, rng):
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert aggregate(shuffled) == aggregate(items)
        present = [item for item in items if item is not None]
        if present:
            assert aggregate(items) == merged_telemetry(present)
        else:
            assert aggregate(items) is None

    @SLOW
    @given(st.lists(st.one_of(st.none(), telemetries), max_size=6))
    def test_campaign_aggregation_is_the_same_fold(self, items):
        # aggregate_telemetry is aggregate() lifted over campaign
        # points; a point whose result predates telemetry carries None.
        points = [
            SimpleNamespace(result=SimpleNamespace(telemetry=item))
            for item in items
        ]
        assert aggregate_telemetry(points) == aggregate(items)


class TestRegistryMerge:
    @SLOW
    @given(st.lists(registries(), min_size=1, max_size=5), st.randoms())
    def test_order_independent(self, items, rng):
        shuffled = list(items)
        rng.shuffle(shuffled)
        assert merged_registry(shuffled) == merged_registry(items)

    @SLOW
    @given(registries(), registries(), registries())
    def test_associative(self, a, b, c):
        ab = MetricRegistry()
        ab.merge(a)
        ab.merge(b)
        bc = MetricRegistry()
        bc.merge(b)
        bc.merge(c)
        left = MetricRegistry()
        left.merge(ab)
        left.merge(c)
        right = MetricRegistry()
        right.merge(a)
        right.merge(bc)
        assert left.snapshot() == right.snapshot()

    @SLOW
    @given(registries(), registries())
    def test_merge_via_snapshot_matches_direct(self, a, b):
        direct = MetricRegistry()
        direct.merge(a)
        direct.merge(b)
        via_snapshot = MetricRegistry()
        via_snapshot.merge(a.snapshot())
        via_snapshot.merge(b.snapshot())
        assert direct.snapshot() == via_snapshot.snapshot()
