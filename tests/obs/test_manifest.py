"""Tests for run manifests and the JSONL run logger."""

import json

import pytest

from repro.algorithms import DimensionOrderPolicy, RestrictedPriorityPolicy
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.dynamic import BernoulliTraffic, BufferedDynamicEngine, DynamicEngine
from repro.obs.manifest import (
    SCHEMA_VERSION,
    JsonlRunLogger,
    RunManifest,
    append_manifest,
    git_sha,
    manifest_for_engine,
    manifest_from_run_result,
    read_manifests,
    validate_manifest,
)
from repro.obs.profiler import PhaseProfiler
from repro.workloads import random_many_to_many


def run_batch_engine(mesh, **kwargs):
    problem = random_many_to_many(mesh, k=10, seed=21)
    engine = HotPotatoEngine(problem, RestrictedPriorityPolicy(), seed=21,
                             **kwargs)
    return engine, engine.run()


class TestGitSha:
    def test_returns_short_sha_for_this_repo(self):
        sha = git_sha()
        assert sha != "unknown"
        assert len(sha.replace("-dirty", "")) >= 7

    def test_unknown_outside_any_repo(self, tmp_path):
        assert git_sha(cwd=str(tmp_path)) == "unknown"


class TestManifestForEngine:
    def test_describes_a_finished_batch_run(self, mesh8):
        engine, result = run_batch_engine(mesh8)
        manifest = manifest_for_engine(engine, result, command="route")
        assert manifest.command == "route"
        assert manifest.engine == "hot-potato"
        assert manifest.mesh["side"] == 8
        assert manifest.mesh["num_nodes"] == 64
        assert manifest.policy == "restricted-priority"
        assert manifest.seed == 21
        assert manifest.result["kind"] == "batch"
        assert manifest.result["delivered"] == 10
        assert manifest.telemetry is not None
        assert manifest.telemetry["delivered"] == 10
        assert validate_manifest(manifest.to_dict()) == []

    def test_profiler_payload_attached_when_given(self, mesh8):
        from repro.core.validation import validators_for

        profiler = PhaseProfiler()
        policy = RestrictedPriorityPolicy()
        problem = random_many_to_many(mesh8, k=10, seed=21)
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=21,
            validators=validators_for(policy, strict=False),
            profiler=profiler,
        )
        result = engine.run()
        manifest = manifest_for_engine(engine, result, profiler=profiler)
        assert manifest.phases is not None
        assert manifest.phases["steps"] == result.total_steps
        assert manifest.phase_profile() == profiler


class TestManifestFromRunResult:
    def test_builds_without_an_engine_in_hand(self, mesh8):
        _, result = run_batch_engine(mesh8)
        manifest = manifest_from_run_result(result, command="sweep")
        assert manifest.engine == "hot-potato"
        assert manifest.mesh["num_nodes"] is None
        assert manifest.seed == result.seed
        assert manifest.run_telemetry() == result.telemetry
        assert validate_manifest(manifest.to_dict()) == []


class TestValidateManifest:
    def manifest_dict(self, mesh8):
        engine, result = run_batch_engine(mesh8)
        return manifest_for_engine(engine, result).to_dict()

    def test_missing_field_reported(self, mesh8):
        data = self.manifest_dict(mesh8)
        del data["git_sha"]
        assert any("git_sha" in p for p in validate_manifest(data))

    def test_wrong_type_reported(self, mesh8):
        data = self.manifest_dict(mesh8)
        data["engine"] = 7
        assert any("engine" in p for p in validate_manifest(data))

    def test_unknown_field_reported(self, mesh8):
        data = self.manifest_dict(mesh8)
        data["surprise"] = 1
        assert any("surprise" in p for p in validate_manifest(data))

    def test_schema_version_mismatch_reported(self, mesh8):
        data = self.manifest_dict(mesh8)
        data["schema_version"] = SCHEMA_VERSION + 1
        assert any("schema_version" in p for p in validate_manifest(data))

    def test_from_dict_raises_on_invalid(self):
        with pytest.raises(ValueError, match="invalid run manifest"):
            RunManifest.from_dict({"schema_version": SCHEMA_VERSION})


class TestJsonlRoundTrip:
    def test_append_then_read_back_identical(self, mesh8, tmp_path):
        path = str(tmp_path / "runs" / "manifests.jsonl")
        engine, result = run_batch_engine(mesh8)
        manifest = manifest_for_engine(engine, result, command="route")
        append_manifest(manifest, path)
        append_manifest(manifest, path)
        read = read_manifests(path)
        assert len(read) == 2
        assert read[0] == manifest

    def test_lines_are_plain_compact_json(self, mesh8, tmp_path):
        path = str(tmp_path / "m.jsonl")
        engine, result = run_batch_engine(mesh8)
        append_manifest(manifest_for_engine(engine, result), path)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        assert len(lines) == 1
        parsed = json.loads(lines[0])
        assert validate_manifest(parsed) == []


class TestJsonlRunLogger:
    def test_logs_hot_potato_run(self, mesh8, tmp_path):
        path = str(tmp_path / "m.jsonl")
        logger = JsonlRunLogger(path, command="route")
        run_batch_engine(mesh8, observers=[logger])
        assert logger.written == 1
        manifest = read_manifests(path)[0]
        assert manifest.engine == "hot-potato"
        assert manifest.result["kind"] == "batch"

    def test_logs_buffered_run(self, mesh8, tmp_path):
        path = str(tmp_path / "m.jsonl")
        problem = random_many_to_many(mesh8, k=10, seed=22)
        BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=22,
            observers=[JsonlRunLogger(path)],
        ).run()
        manifest = read_manifests(path)[0]
        assert manifest.engine == "buffered"
        assert manifest.seed == 22

    def test_logs_dynamic_runs(self, mesh8, tmp_path):
        path = str(tmp_path / "m.jsonl")
        DynamicEngine(
            mesh8,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.1),
            seed=5,
            observers=[JsonlRunLogger(path, command="dynamic")],
        ).run(50)
        BufferedDynamicEngine(
            mesh8,
            DimensionOrderPolicy(),
            BernoulliTraffic(0.1),
            seed=5,
            observers=[JsonlRunLogger(path, command="dynamic")],
        ).run(50)
        manifests = read_manifests(path)
        assert [m.engine for m in manifests] == ["dynamic",
                                                 "buffered-dynamic"]
        assert all(m.result["kind"] == "dynamic" for m in manifests)
        assert all(m.result["horizon"] == 50 for m in manifests)
        assert all(m.telemetry is not None for m in manifests)

    def test_logger_keeps_the_lean_loop(self, mesh8, tmp_path):
        from repro.core.kernel import lean_equivalent
        from repro.core.validation import validators_for

        logger = JsonlRunLogger(str(tmp_path / "m.jsonl"))
        assert logger.needs_steps is False
        assert lean_equivalent([], [logger], False)
        # The profiler only runs on the lean loop, so a profiled run
        # with the logger attached proves the logger didn't force the
        # instrumented loop (the engine would raise otherwise).
        policy = RestrictedPriorityPolicy()
        engine = HotPotatoEngine(
            random_many_to_many(mesh8, k=10, seed=21),
            policy,
            seed=21,
            validators=validators_for(policy, strict=False),
            observers=[logger],
            profiler=PhaseProfiler(),
        )
        assert engine.run().completed
        assert logger.written == 1

    def test_fires_without_on_run_start_only_for_run_results(self, mesh8,
                                                             tmp_path):
        path = str(tmp_path / "m.jsonl")
        logger = JsonlRunLogger(path)
        _, result = run_batch_engine(mesh8)
        logger.on_run_end(result)
        assert read_manifests(path)[0].engine == "hot-potato"
        bare = JsonlRunLogger(path)
        with pytest.raises(RuntimeError, match="without on_run_start"):
            bare.on_run_end(object())


class TestDurableAppend:
    def test_fsync_append_reads_back_identically(self, mesh8, tmp_path):
        path = str(tmp_path / "m.jsonl")
        engine, result = run_batch_engine(mesh8)
        manifest = manifest_for_engine(engine, result, command="route")
        append_manifest(manifest, path, fsync=True)
        append_manifest(manifest, path, fsync=False)
        read = read_manifests(path)
        assert len(read) == 2
        assert read[0] == read[1] == manifest


class TestTornLineRecovery:
    def write_file(self, mesh8, tmp_path, *, torn):
        path = str(tmp_path / "m.jsonl")
        engine, result = run_batch_engine(mesh8)
        manifest = manifest_for_engine(engine, result)
        append_manifest(manifest, path)
        append_manifest(manifest, path)
        if torn:
            with open(path, "a", encoding="utf-8") as handle:
                handle.write('{"schema_version": 1, "comm')
        return path, manifest

    def test_strict_mode_raises_on_a_torn_tail(self, mesh8, tmp_path):
        path, _ = self.write_file(mesh8, tmp_path, torn=True)
        with pytest.raises((ValueError, KeyError)):
            read_manifests(path)

    def test_recovery_mode_skips_and_reports_the_tail(self, mesh8, tmp_path):
        path, manifest = self.write_file(mesh8, tmp_path, torn=True)
        errors = []
        read = read_manifests(path, errors=errors)
        assert len(read) == 2
        assert read[0] == manifest
        assert len(errors) == 1
        assert errors[0].startswith(f"{path}:3:")

    def test_recovery_mode_skips_mid_file_corruption(self, mesh8, tmp_path):
        path, manifest = self.write_file(mesh8, tmp_path, torn=False)
        with open(path, "r", encoding="utf-8") as handle:
            lines = handle.read().splitlines()
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(lines[0] + "\n")
            handle.write("not json at all\n")
            handle.write('{"schema_version": 99}\n')
            handle.write(lines[1] + "\n")
        errors = []
        read = read_manifests(path, errors=errors)
        assert len(read) == 2
        assert len(errors) == 2
        assert read[0] == read[1] == manifest

    def test_clean_file_reports_no_errors(self, mesh8, tmp_path):
        path, _ = self.write_file(mesh8, tmp_path, torn=False)
        errors = []
        assert len(read_manifests(path, errors=errors)) == 2
        assert errors == []


class TestCasePayload:
    def test_case_field_round_trips(self, mesh8, tmp_path):
        _, result = run_batch_engine(mesh8)
        manifest = manifest_from_run_result(
            result,
            command="sweep",
            case={"key": "abcd1234", "params": {"n": 8, "seed": 21}},
        )
        assert validate_manifest(manifest.to_dict()) == []
        path = str(tmp_path / "m.jsonl")
        append_manifest(manifest, path)
        read = read_manifests(path)[0]
        assert read.case == {"key": "abcd1234", "params": {"n": 8, "seed": 21}}

    def test_case_field_is_optional(self, mesh8):
        _, result = run_batch_engine(mesh8)
        manifest = manifest_from_run_result(result, command="sweep")
        assert manifest.case is None
        assert "case" not in manifest.to_dict()
        assert validate_manifest(manifest.to_dict()) == []
