"""Bounded per-step series: deterministic decimation, ring windows,
and the strict schema round-trip."""

import pytest

from repro.core.kernel import StepSummary
from repro.obs.series import (
    SERIES_COLUMNS,
    SERIES_SCHEMA_VERSION,
    SeriesRecorder,
    StepSeries,
)


def summary(step, *, phi=0, routed=0, advancing=0, moved=None, **extra):
    """A minimal StepSummary for feeding a series directly."""
    moved = routed if moved is None else moved
    values = dict(
        step=step,
        generated=0,
        injected=0,
        routed=routed,
        moved=moved,
        advancing=advancing,
        delivered=0,
        delivered_total=0,
        total_distance=phi,
        max_node_load=0,
        bad_nodes=0,
        packets_in_bad_nodes=0,
        backlog=0,
    )
    values.update(extra)
    return StepSummary(**values)


class TestRecording:
    def test_columns_fill_in_canonical_order(self):
        series = StepSeries()
        series.record(
            summary(0, phi=12, routed=4, advancing=3, max_node_load=2)
        )
        assert tuple(series.columns) == SERIES_COLUMNS
        assert series.columns["step"] == [0]
        assert series.columns["phi"] == [12]
        assert series.columns["in_flight"] == [4]
        assert series.columns["advancing"] == [3]
        assert series.columns["deflected"] == [1]
        assert series.columns["max_node_load"] == [2]
        assert len(series) == 1

    def test_rejects_bad_capacity_and_mode(self):
        with pytest.raises(ValueError, match="capacity"):
            StepSeries(capacity=1)
        with pytest.raises(ValueError, match="mode"):
            StepSeries(mode="sliding")

    def test_deflection_rates(self):
        series = StepSeries()
        series.record(summary(0, routed=4, advancing=3))
        series.record(summary(1, routed=0, advancing=0))
        assert series.deflection_rates() == [0.25, 0.0]


class TestRingMode:
    def test_keeps_the_tail(self):
        series = StepSeries(capacity=3, mode="ring")
        for step in range(10):
            series.record(summary(step, phi=step * 10))
        assert series.columns["step"] == [7, 8, 9]
        assert series.columns["phi"] == [70, 80, 90]
        assert series.dropped == 7


class TestDecimateMode:
    def test_stride_doubles_and_keeps_step_multiples(self):
        series = StepSeries(capacity=4, mode="decimate")
        for step in range(10):
            series.record(summary(step))
        # Overflow at 5 samples doubled the stride to 2 (keeping even
        # steps), then again to 4 at the next overflow.
        assert series.stride == 4
        assert series.columns["step"] == [0, 4, 8]
        assert series.dropped == 7
        assert len(series) + series.dropped == 10

    def test_spans_whole_run(self):
        series = StepSeries(capacity=8, mode="decimate")
        steps = 1000
        for step in range(steps):
            series.record(summary(step))
        kept = series.columns["step"]
        assert kept[0] == 0
        assert all(step % series.stride == 0 for step in kept)
        assert kept == sorted(kept)
        assert steps - series.stride <= kept[-1] < steps

    def test_deterministic_across_identical_runs(self):
        def run():
            series = StepSeries(capacity=16)
            for step in range(500):
                series.record(summary(step, phi=step % 7))
            return series.to_dict()

        assert run() == run()


class TestSchemaRoundTrip:
    def test_round_trip(self):
        series = StepSeries(capacity=4)
        for step in range(9):
            series.record(summary(step, phi=step, routed=1))
        payload = series.to_dict()
        assert payload["schema_version"] == SERIES_SCHEMA_VERSION
        assert payload["samples"] == len(series)
        rebuilt = StepSeries.from_dict(payload)
        assert rebuilt.to_dict() == payload

    def test_version_checked(self):
        payload = StepSeries().to_dict()
        payload["schema_version"] = 99
        with pytest.raises(ValueError, match="schema_version"):
            StepSeries.from_dict(payload)

    def test_missing_column_rejected(self):
        payload = StepSeries().to_dict()
        del payload["columns"]["phi"]
        with pytest.raises(ValueError, match="columns"):
            StepSeries.from_dict(payload)

    def test_ragged_columns_rejected(self):
        series = StepSeries()
        series.record(summary(0))
        payload = series.to_dict()
        payload["columns"]["phi"] = []
        with pytest.raises(ValueError, match="ragged"):
            StepSeries.from_dict(payload)


class TestSeriesRecorder:
    def test_lean_loop_safe_flags(self):
        recorder = SeriesRecorder()
        assert recorder.needs_steps is False
        assert recorder.needs_summaries is True

    def test_feeds_series(self):
        recorder = SeriesRecorder(capacity=8, mode="ring")
        recorder.on_summary(summary(0, phi=5))
        assert recorder.series.columns["phi"] == [5]

    def test_wraps_caller_series(self):
        series = StepSeries(capacity=2)
        recorder = SeriesRecorder(series)
        assert recorder.series is series
