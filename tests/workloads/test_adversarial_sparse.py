"""Tests for adversarial and sparse workload generators."""

import pytest

from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.workloads.adversarial import (
    column_collapse,
    corner_storm,
    cross_traffic,
    quadrant_flood,
)
from repro.workloads.sparse import local_cluster, scattered_sparse


class TestQuadrantFlood:
    def test_sources_low_destinations_high(self, mesh8):
        problem = quadrant_flood(mesh8, seed=0)
        assert problem.k == 16  # 4x4 low quadrant
        for request in problem.requests:
            assert all(x <= 4 for x in request.source)
            assert all(x > 4 for x in request.destination)


class TestCornerStorm:
    def test_opposite_corners(self, mesh8):
        problem = corner_storm(mesh8)
        assert problem.k == 4
        for request in problem.requests:
            assert problem.mesh.distance(
                request.source, request.destination
            ) == problem.mesh.diameter

    def test_packets_per_corner_capacity(self, mesh8):
        assert corner_storm(mesh8, packets_per_corner=2).k == 8
        with pytest.raises(ConfigurationError):
            corner_storm(mesh8, packets_per_corner=3)

    def test_three_dimensional(self, mesh3d):
        problem = corner_storm(mesh3d, packets_per_corner=3)
        assert problem.k == 24


class TestColumnCollapse:
    def test_destinations_in_one_column(self, mesh8):
        problem = column_collapse(mesh8, target_column=3)
        assert all(r.destination[1] == 3 for r in problem.requests)
        assert all(
            r.source[0] == r.destination[0] for r in problem.requests
        )
        # Every node except those already in the column sends.
        assert problem.k == 64 - 8

    def test_default_column_is_middle(self, mesh8):
        problem = column_collapse(mesh8)
        assert problem.requests[0].destination[1] == 4

    def test_rejects_3d(self, mesh3d):
        with pytest.raises(ConfigurationError):
            column_collapse(mesh3d)

    def test_rejects_bad_column(self, mesh8):
        with pytest.raises(ConfigurationError):
            column_collapse(mesh8, target_column=9)


class TestCrossTraffic:
    def test_size_and_span(self, mesh8):
        problem = cross_traffic(mesh8)
        assert problem.k == 4 * 8
        for request in problem.requests:
            assert (
                problem.mesh.distance(request.source, request.destination)
                == 7
            )

    def test_rejects_3d(self, mesh3d):
        with pytest.raises(ConfigurationError):
            cross_traffic(mesh3d)


class TestSparse:
    def test_scattered_enforces_sparsity(self):
        mesh = Mesh(2, 20)  # 400 nodes -> limit 20
        problem = scattered_sparse(mesh, k=20, seed=0)
        assert problem.k == 20
        with pytest.raises(ConfigurationError):
            scattered_sparse(mesh, k=21, seed=0)

    def test_local_cluster_inside_box(self, mesh8):
        problem = local_cluster(mesh8, k=10, box_side=3, seed=1)
        for request in problem.requests:
            assert all(x <= 3 for x in request.source)
            assert all(x <= 3 for x in request.destination)

    def test_local_cluster_distance_bounded(self, mesh8):
        problem = local_cluster(mesh8, k=10, box_side=3, seed=2)
        assert problem.d_max <= 2 * (3 - 1)

    def test_local_cluster_validation(self, mesh8):
        with pytest.raises(ConfigurationError):
            local_cluster(mesh8, k=5, box_side=1, seed=0)
        with pytest.raises(ConfigurationError):
            local_cluster(mesh8, k=500, box_side=2, seed=0)
