"""Tests for permutation workloads."""

import pytest

from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.workloads.permutations import (
    bit_reversal,
    partial_random_permutation,
    random_permutation,
    reversal,
    transpose,
)


class TestRandomPermutation:
    def test_is_permutation(self, mesh8):
        problem = random_permutation(mesh8, seed=0)
        assert problem.k == 64
        assert problem.is_permutation()
        sources = {r.source for r in problem.requests}
        destinations = {r.destination for r in problem.requests}
        assert len(sources) == len(destinations) == 64

    def test_reproducible(self, mesh8):
        assert (
            random_permutation(mesh8, seed=3).requests
            == random_permutation(mesh8, seed=3).requests
        )


class TestPartialPermutation:
    def test_k_distinct_endpoints(self, mesh8):
        problem = partial_random_permutation(mesh8, k=10, seed=1)
        assert problem.k == 10
        assert problem.is_permutation()

    def test_rejects_oversize(self, mesh4):
        with pytest.raises(ConfigurationError):
            partial_random_permutation(mesh4, k=17, seed=0)


class TestTranspose:
    def test_mapping(self, mesh4):
        problem = transpose(mesh4)
        mapping = {r.source: r.destination for r in problem.requests}
        assert mapping[(1, 3)] == (3, 1)
        assert mapping[(2, 2)] == (2, 2)  # diagonal fixed
        assert problem.is_permutation()

    def test_involution(self, mesh4):
        problem = transpose(mesh4)
        mapping = {r.source: r.destination for r in problem.requests}
        for source, destination in mapping.items():
            assert mapping[destination] == source


class TestReversal:
    def test_mapping(self, mesh4):
        problem = reversal(mesh4)
        mapping = {r.source: r.destination for r in problem.requests}
        assert mapping[(1, 1)] == (4, 4)
        assert mapping[(2, 3)] == (3, 2)

    def test_maximal_total_distance(self, mesh4):
        """Every packet travels d(n+1-2x) per axis; reversal maximizes
        the total distance over all permutations."""
        problem = reversal(mesh4)
        assert problem.total_distance == sum(
            abs(4 + 1 - 2 * x) + abs(4 + 1 - 2 * y)
            for x in range(1, 5)
            for y in range(1, 5)
        )


class TestBitReversal:
    def test_requires_power_of_two(self):
        with pytest.raises(ConfigurationError):
            bit_reversal(Mesh(2, 6))

    def test_mapping_on_8(self, mesh8):
        problem = bit_reversal(mesh8)
        mapping = {r.source: r.destination for r in problem.requests}
        # coordinate 2 -> value 1 -> bits 001 -> reversed 100 -> 4 -> coord 5.
        assert mapping[(2, 1)] == (5, 1)
        # coordinate 1 -> 000 -> 000 -> 1 (fixed).
        assert mapping[(1, 1)] == (1, 1)
        assert problem.is_permutation()

    def test_involution(self, mesh8):
        problem = bit_reversal(mesh8)
        mapping = {r.source: r.destination for r in problem.requests}
        for source, destination in mapping.items():
            assert mapping[destination] == source
