"""Tests for single-target (hot-spot) workloads."""

import pytest

from repro.exceptions import ConfigurationError
from repro.workloads.single_target import ring_of_sources, single_target


class TestSingleTarget:
    def test_all_packets_share_target(self, mesh8):
        problem = single_target(mesh8, k=30, seed=0)
        assert problem.is_single_target()
        assert problem.k == 30

    def test_default_target_is_center(self, mesh8):
        problem = single_target(mesh8, k=5, seed=1)
        assert problem.requests[0].destination == (4, 4)

    def test_custom_target(self, mesh8):
        problem = single_target(mesh8, k=5, target=(1, 1), seed=2)
        assert all(r.destination == (1, 1) for r in problem.requests)

    def test_no_source_at_target(self, mesh8):
        problem = single_target(mesh8, k=50, seed=3)
        assert all(r.source != r.destination for r in problem.requests)

    def test_invalid_target(self, mesh8):
        with pytest.raises(ConfigurationError):
            single_target(mesh8, k=5, target=(9, 9))

    def test_capacity_limit(self, mesh4):
        with pytest.raises(ConfigurationError):
            single_target(mesh4, k=1000, seed=0)


class TestRingOfSources:
    def test_all_at_radius(self, mesh8):
        problem = ring_of_sources(mesh8, radius=3)
        target = problem.requests[0].destination
        assert all(
            problem.mesh.distance(r.source, target) == 3
            for r in problem.requests
        )

    def test_interior_ring_size(self, mesh8):
        # An L1 ring of radius 2 fully inside the mesh has 4*2 nodes.
        problem = ring_of_sources(mesh8, radius=2)
        assert problem.k == 8

    def test_rejects_radius_zero(self, mesh8):
        with pytest.raises(ValueError):
            ring_of_sources(mesh8, radius=0)

    def test_rejects_empty_ring(self, mesh4):
        with pytest.raises(ConfigurationError):
            ring_of_sources(mesh4, radius=20)

    def test_rejects_bad_target(self, mesh8):
        with pytest.raises(ConfigurationError):
            ring_of_sources(mesh8, radius=2, target=(0, 0))
