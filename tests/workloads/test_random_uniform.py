"""Tests for random many-to-many workload generators."""

from collections import Counter

import pytest

from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.workloads.random_uniform import (
    max_packets,
    random_many_to_many,
    saturated_load,
)


class TestMaxPackets:
    def test_small_mesh(self):
        # 3x3 mesh: 4 corners * 2 + 4 edges * 3 + 1 interior * 4 = 24.
        assert max_packets(Mesh(2, 3)) == 24

    def test_matches_arc_count(self, mesh8):
        assert max_packets(mesh8) == sum(1 for _ in mesh8.arcs())


class TestRandomManyToMany:
    def test_k_packets(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=0)
        assert problem.k == 30

    def test_respects_capacity(self, mesh8):
        problem = random_many_to_many(mesh8, k=200, seed=1)
        origins = Counter(r.source for r in problem.requests)
        for node, count in origins.items():
            assert count <= mesh8.degree(node)

    def test_excludes_trivial_by_default(self, mesh8):
        problem = random_many_to_many(mesh8, k=100, seed=2)
        assert all(r.source != r.destination for r in problem.requests)

    def test_trivial_allowed_when_asked(self, mesh8):
        problem = random_many_to_many(
            mesh8, k=150, seed=3, exclude_trivial=False
        )
        # With 150 draws over 64 destinations a self-loop is near-certain.
        assert problem.k == 150

    def test_reproducible(self, mesh8):
        a = random_many_to_many(mesh8, k=25, seed=9)
        b = random_many_to_many(mesh8, k=25, seed=9)
        assert a.requests == b.requests

    def test_different_seeds_differ(self, mesh8):
        a = random_many_to_many(mesh8, k=25, seed=9)
        b = random_many_to_many(mesh8, k=25, seed=10)
        assert a.requests != b.requests

    def test_over_capacity_rejected(self):
        mesh = Mesh(2, 3)
        with pytest.raises(ConfigurationError):
            random_many_to_many(mesh, k=25, seed=0)

    def test_full_capacity_possible(self):
        mesh = Mesh(2, 3)
        problem = random_many_to_many(mesh, k=24, seed=4)
        assert problem.k == 24

    def test_name(self, mesh8):
        assert random_many_to_many(mesh8, k=5, seed=0).name == "random-k5"
        assert (
            random_many_to_many(mesh8, k=5, seed=0, name="custom").name
            == "custom"
        )


class TestSaturatedLoad:
    def test_one_per_node(self, mesh8):
        problem = saturated_load(mesh8, per_node=1, seed=5)
        assert problem.k == 64
        origins = Counter(r.source for r in problem.requests)
        assert all(count == 1 for count in origins.values())

    def test_four_per_node_caps_at_degree(self, mesh8):
        problem = saturated_load(mesh8, per_node=4, seed=6)
        origins = Counter(r.source for r in problem.requests)
        assert origins[(1, 1)] == 2  # corner degree
        assert origins[(4, 4)] == 4  # interior degree
        # 4 corners*2 + 24 edge*3 + 36 interior*4 = 224.
        assert problem.k == 224

    def test_rejects_nonpositive(self, mesh8):
        with pytest.raises(ValueError):
            saturated_load(mesh8, per_node=0)

    def test_no_trivial_requests(self, mesh8):
        problem = saturated_load(mesh8, per_node=2, seed=7)
        assert all(r.source != r.destination for r in problem.requests)
