"""Test package."""
