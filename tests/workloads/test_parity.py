"""Tests for parity splitting (the Remark after Theorem 20)."""

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.trace import record_run
from repro.mesh.torus import Torus
from repro.workloads.parity import (
    origin_parity,
    parity_is_invariant,
    split_by_origin_parity,
)
from repro.workloads.random_uniform import saturated_load
from repro.workloads.permutations import random_permutation


class TestSplit:
    def test_partition(self, mesh8):
        problem = random_permutation(mesh8, seed=0)
        even, odd = split_by_origin_parity(problem)
        assert even.k + odd.k == problem.k
        assert all(origin_parity(r.source) == 0 for r in even.requests)
        assert all(origin_parity(r.source) == 1 for r in odd.requests)

    def test_full_load_splits_in_half(self, mesh8):
        problem = saturated_load(mesh8, per_node=1, seed=1)
        even, odd = split_by_origin_parity(problem)
        assert even.k == odd.k == 32

    def test_names(self, mesh8):
        problem = random_permutation(mesh8, seed=2)
        even, odd = split_by_origin_parity(problem)
        assert even.name.endswith("-even")
        assert odd.name.endswith("-odd")


class TestNonInterference:
    """The Remark's core claim, verified literally: the two parity
    classes never share a node, and routing them jointly produces
    exactly the union of routing them separately."""

    def test_classes_never_collide(self, mesh8):
        problem = saturated_load(mesh8, per_node=1, seed=3)
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=3,
            record_steps=True,
        )
        result = engine.run()
        parity_of = {
            i: origin_parity(r.source)
            for i, r in enumerate(problem.requests)
        }
        for record in result.records:
            nodes_even = {
                info.node
                for packet_id, info in record.infos.items()
                if parity_of[packet_id] == 0
            }
            nodes_odd = {
                info.node
                for packet_id, info in record.infos.items()
                if parity_of[packet_id] == 1
            }
            assert nodes_even.isdisjoint(nodes_odd)

    def test_joint_equals_separate(self, mesh8):
        """Each packet's trajectory in the joint run matches its
        trajectory when its parity class is routed alone.

        This requires the policy's choices to depend only on local
        packet sets (true for deterministic id-order policies) and the
        packet ids to be aligned, which subproblem() preserves via
        request order... ids are renumbered, so compare by (source,
        destination) multisets of per-step positions instead.
        """
        problem = saturated_load(mesh8, per_node=1, seed=4)
        even, odd = split_by_origin_parity(problem)

        joint = record_run(problem, RestrictedPriorityPolicy(), seed=0)
        even_alone = record_run(even, RestrictedPriorityPolicy(), seed=0)
        odd_alone = record_run(odd, RestrictedPriorityPolicy(), seed=0)

        request_of = {i: r for i, r in enumerate(problem.requests)}

        def footprint(trace, problem_requests, time):
            positions = trace.positions_at(time)
            return sorted(
                (
                    problem_requests[packet_id].source,
                    problem_requests[packet_id].destination,
                    node,
                )
                for packet_id, node in positions.items()
            )

        horizon = max(
            joint.num_steps, even_alone.num_steps, odd_alone.num_steps
        )
        for time in range(horizon + 1):
            joint_fp = footprint(
                joint, problem.requests, min(time, joint.num_steps)
            )
            separate_fp = sorted(
                footprint(
                    even_alone, even.requests, min(time, even_alone.num_steps)
                )
                + footprint(
                    odd_alone, odd.requests, min(time, odd_alone.num_steps)
                )
            )
            assert joint_fp == separate_fp, f"divergence at time {time}"

    def test_joint_time_is_max_of_separate(self, mesh8):
        problem = saturated_load(mesh8, per_node=1, seed=5)
        even, odd = split_by_origin_parity(problem)
        policy = RestrictedPriorityPolicy
        joint = HotPotatoEngine(problem, policy(), seed=0).run()
        even_r = HotPotatoEngine(even, policy(), seed=0).run()
        odd_r = HotPotatoEngine(odd, policy(), seed=0).run()
        assert joint.total_steps == max(
            even_r.total_steps, odd_r.total_steps
        )


class TestInvariantPredicate:
    def test_mesh_always_invariant(self, mesh8):
        problem = random_permutation(mesh8, seed=6)
        assert parity_is_invariant(problem)

    def test_odd_torus_not_invariant(self):
        from repro.workloads.random_uniform import random_many_to_many

        torus = Torus(2, 5)
        problem = random_many_to_many(torus, k=5, seed=0)
        assert not parity_is_invariant(problem)

    def test_even_torus_invariant(self):
        from repro.workloads.random_uniform import random_many_to_many

        torus = Torus(2, 6)
        problem = random_many_to_many(torus, k=5, seed=0)
        assert parity_is_invariant(problem)
