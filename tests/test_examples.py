"""Smoke tests: every example script runs to completion.

Examples are the library's quickstart surface, so they are executed as
real subprocesses (fresh interpreter, no test-suite state).  The
long-horizon traffic sweep (``network_traffic.py``) is exercised by
benchmark E14/E21 instead and only import-checked here.
"""

import os
import subprocess
import sys

import pytest

EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), "..", "examples")

FAST_EXAMPLES = [
    "quickstart.py",
    "optical_network.py",
    "permutation_routing.py",
    "potential_trace.py",
    "livelock_demo.py",
    "figures_demo.py",
    "related_work_tour.py",
]


@pytest.mark.parametrize("script", FAST_EXAMPLES)
def test_example_runs(script):
    path = os.path.join(EXAMPLES_DIR, script)
    completed = subprocess.run(
        [sys.executable, path],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), f"{script} printed nothing"


def test_every_example_is_covered():
    """No example script is silently missing from this smoke list."""
    scripts = sorted(
        name
        for name in os.listdir(EXAMPLES_DIR)
        if name.endswith(".py")
    )
    assert set(scripts) == set(FAST_EXAMPLES) | {"network_traffic.py"}


def test_network_traffic_compiles():
    path = os.path.join(EXAMPLES_DIR, "network_traffic.py")
    with open(path, "r", encoding="utf-8") as handle:
        compile(handle.read(), path, "exec")
