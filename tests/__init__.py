"""Test package."""
