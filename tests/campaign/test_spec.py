"""Declarative case specs: canonical form, identity, validation."""

import pytest

from repro.campaign.spec import TOPOLOGIES, WORKLOADS, CaseSpec, spec_key


def _spec(**overrides):
    base = dict(
        topology="mesh",
        workload="random",
        policy="restricted-priority",
        seed=7,
        side=6,
        workload_params=(("k", 12),),
    )
    base.update(overrides)
    return CaseSpec(**base)


class TestRoundTrip:
    def test_to_dict_from_dict_is_identity(self):
        spec = _spec(params=(("label", "sweep-a"),), max_steps=200)
        assert CaseSpec.from_dict(spec.to_dict()) == spec

    def test_json_round_trip_preserves_identity(self):
        import json

        spec = _spec(priority=3)
        rebuilt = CaseSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert rebuilt == spec
        assert spec_key(rebuilt) == spec_key(spec)

    def test_from_dict_rejects_unknown_fields(self):
        payload = _spec().to_dict()
        payload["mesh_object"] = "nope"
        with pytest.raises(ValueError, match="unknown CaseSpec fields"):
            CaseSpec.from_dict(payload)

    def test_from_dict_rejects_missing_required_fields(self):
        payload = _spec().to_dict()
        del payload["policy"]
        with pytest.raises(ValueError, match="missing field 'policy'"):
            CaseSpec.from_dict(payload)

    def test_from_dict_fills_defaults(self):
        minimal = {
            "topology": "mesh",
            "workload": "permutation",
            "policy": "restricted-priority",
            "seed": 0,
        }
        spec = CaseSpec.from_dict(minimal)
        assert spec.side == 16
        assert spec.engine == "hot-potato"
        assert spec.backend == "object"
        assert spec.priority == 0


class TestSpecKey:
    def test_equal_specs_share_a_key(self):
        assert spec_key(_spec()) == spec_key(_spec())

    def test_key_distinguishes_every_ingredient(self):
        base = _spec()
        keys = {spec_key(base)}
        variants = [
            _spec(seed=8),
            _spec(side=7),
            _spec(topology="torus"),
            _spec(workload="permutation", workload_params=()),
            _spec(workload_params=(("k", 13),)),
            _spec(policy="random-direction"),
            _spec(max_steps=99),
            _spec(strict_validation=False),
            _spec(strict_validation=False, backend="soa"),
        ]
        for variant in variants:
            keys.add(spec_key(variant))
        assert len(keys) == len(variants) + 1

    def test_priority_does_not_change_the_key(self):
        # Re-prioritizing a queue must not orphan finished work.
        assert spec_key(_spec(priority=0)) == spec_key(_spec(priority=9))

    def test_key_is_sixteen_hex_digits(self):
        key = spec_key(_spec())
        assert len(key) == 16
        int(key, 16)


class TestValidation:
    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError, match="unknown topology"):
            _spec(topology="klein-bottle")

    def test_unknown_workload_rejected(self):
        with pytest.raises(ValueError, match="unknown workload"):
            _spec(workload="everything")

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown engine"):
            _spec(engine="warp")

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError, match="unknown backend"):
            _spec(backend="gpu")

    def test_soa_hot_potato_requires_lean_validation(self):
        with pytest.raises(ValueError, match="strict_validation"):
            _spec(backend="soa", strict_validation=True)

    def test_soa_rejects_fault_schedules(self):
        with pytest.raises(ValueError, match="fault schedules"):
            _spec(
                backend="soa",
                strict_validation=False,
                faults="schedule.json",
            )

    def test_vocabularies_match_the_cli(self):
        assert TOPOLOGIES == ("mesh", "torus", "hypercube")
        assert len(WORKLOADS) == 7


class TestShape:
    def test_shape_is_the_mesh_cache_key(self):
        assert _spec(side=6, dimension=2).shape == ("mesh", 2, 6)

    def test_hypercube_shape_ignores_the_side_field(self):
        left = _spec(topology="hypercube", dimension=4, side=16)
        right = _spec(topology="hypercube", dimension=4, side=2)
        assert left.shape == right.shape == ("hypercube", 4, 2)
