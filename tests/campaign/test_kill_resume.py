"""SIGKILL a live campaign process, resume from its event log alone.

The child process runs a real campaign against a store; the parent
watches the event log and kills the child -9 once at least two cases
have durably finished.  Resume must restore the acknowledged points
(never re-running them), execute only the remainder, and end up
bit-identical to a campaign that was never interrupted.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import Campaign, CampaignStore, CaseSpec

SEEDS = list(range(8))

CHILD = """\
import sys

from repro.campaign import Campaign, CampaignStore, CaseSpec

specs = [
    CaseSpec(
        topology="mesh",
        workload="random",
        policy="restricted-priority",
        seed=seed,
        side=10,
        workload_params=(("k", 60),),
    )
    for seed in range({seeds})
]
store = CampaignStore({store_path!r})
with Campaign(specs, store=store) as campaign:
    campaign.run()
"""


def _specs():
    return [
        CaseSpec(
            topology="mesh",
            workload="random",
            policy="restricted-priority",
            seed=seed,
            side=10,
            workload_params=(("k", 60),),
        )
        for seed in SEEDS
    ]


def _finished_count(path):
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if event.get("event") == "case-finished":
                count += 1
    return count


@pytest.mark.slow
class TestKillResume:
    def test_sigkilled_campaign_resumes_to_the_clean_answer(self, tmp_path):
        store_path = str(tmp_path / "campaign.jsonl")
        child = subprocess.Popen(
            [
                sys.executable,
                "-c",
                CHILD.format(seeds=len(SEEDS), store_path=store_path),
            ],
            env=dict(os.environ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if _finished_count(store_path) >= 2:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.005)
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        survived = _finished_count(store_path)
        assert survived >= 2  # the kill landed after real progress

        resumed = Campaign.from_store(store_path)
        with resumed:
            after = resumed.run()
        assert resumed.specs == _specs()
        assert after.resumed >= min(2, len(SEEDS))
        assert len(after.points) == len(SEEDS)
        assert after.all_completed()

        # Identical to a campaign that was never interrupted.
        with Campaign(_specs()) as clean_campaign:
            clean = clean_campaign.run()
        assert after.points == clean.points

        # Durable cases were never re-run: one case-finished per key.
        # (A torn tail from the kill is unparseable and not an event.)
        finished_keys = []
        with open(store_path, "r", encoding="utf-8") as handle:
            for line in handle:
                try:
                    event = json.loads(line)
                except ValueError:
                    continue
                if event.get("event") == "case-finished":
                    finished_keys.append(event["key"])
        assert len(finished_keys) == len(SEEDS)
        assert len(set(finished_keys)) == len(SEEDS)
