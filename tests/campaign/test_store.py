"""The event-sourced campaign ledger: append, replay, recover."""

import json

from repro.campaign.results import CaseFailure
from repro.campaign.spec import CaseSpec, spec_key
from repro.campaign.store import (
    EVENT_SCHEMA_VERSION,
    CampaignStore,
)
from repro.campaign.worker import execute_case


def _spec(seed, **overrides):
    base = dict(
        topology="mesh",
        workload="random",
        policy="restricted-priority",
        seed=seed,
        side=4,
        workload_params=(("k", 6),),
    )
    base.update(overrides)
    return CaseSpec(**base)


def _entries(specs):
    return [(spec_key(spec), spec) for spec in specs]


def _lines(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(l) for l in handle if l.strip()]


class TestAppendReplay:
    def test_queued_specs_replay_in_order(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = [_spec(0), _spec(1), _spec(2)]
        store.queue(_entries(specs))
        state = store.replay()
        assert [state.specs[key] for key in state.order] == specs
        assert state.errors == []
        assert state.counts() == {
            "queued": 3,
            "started": 0,
            "finished": 0,
            "failed": 0,
        }

    def test_full_lifecycle_counts(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = [_spec(0), _spec(1), _spec(2)]
        keys = [spec_key(s) for s in specs]
        store.queue(_entries(specs))
        store.start(keys)
        store.finish(keys[0], execute_case(specs[0]))
        store.fail(keys[1], CaseFailure(keys[1], "ValueError", "boom"))
        assert store.status() == {
            "queued": 0,
            "started": 1,
            "finished": 1,
            "failed": 1,
        }

    def test_finished_point_survives_the_round_trip(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(3)
        key = spec_key(spec)
        point = execute_case(spec)
        store.queue(_entries([spec]))
        store.finish(key, point)
        assert store.restored_points() == {key: point}

    def test_every_line_carries_the_schema_version(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        store.start([spec_key(spec)])
        for line in _lines(store.path):
            assert line["schema_version"] == EVENT_SCHEMA_VERSION
            assert line["created_at"]

    def test_missing_file_replays_to_fresh_state(self, tmp_path):
        store = CampaignStore(str(tmp_path / "never.jsonl"))
        state = store.replay()
        assert state.order == []
        assert state.errors == []


class TestFoldSemantics:
    def test_duplicate_queue_events_dedupe(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        store.queue(_entries([spec]))
        state = store.replay()
        assert state.order == [spec_key(spec)]

    def test_first_finished_event_wins(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        key = spec_key(spec)
        point = execute_case(spec)
        store.queue(_entries([spec]))
        store.finish(key, point)
        # A crashed retry appends noise after the acknowledged result.
        store.fail(key, CaseFailure(key, "RuntimeError", "late failure"))
        store.start([key])
        state = store.replay()
        assert state.points == {key: point}
        assert state.status[key] == "finished"
        assert state.failures == {}

    def test_failed_case_counts_as_pending(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = [_spec(0), _spec(1)]
        keys = [spec_key(s) for s in specs]
        store.queue(_entries(specs))
        store.finish(keys[0], execute_case(specs[0]))
        store.fail(keys[1], CaseFailure(keys[1], "ValueError", "boom"))
        assert store.replay().pending() == [keys[1]]

    def test_pending_orders_by_priority_then_submission(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = [
            _spec(0, priority=0),
            _spec(1, priority=5),
            _spec(2, priority=5),
            _spec(3, priority=1),
        ]
        keys = [spec_key(s) for s in specs]
        store.queue(_entries(specs))
        assert store.replay().pending() == [
            keys[1],
            keys[2],
            keys[3],
            keys[0],
        ]

    def test_event_for_unqueued_key_is_an_error(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        store.start(["feedfacefeedface"])
        state = store.replay()
        assert state.order == []
        assert len(state.errors) == 1
        assert "unqueued" in state.errors[0]


class TestTornLineRecovery:
    def test_torn_tail_is_skipped_and_reported(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = [_spec(0), _spec(1)]
        keys = [spec_key(s) for s in specs]
        store.queue(_entries(specs))
        store.finish(keys[0], execute_case(specs[0]))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "event": "case-fini')
        state = store.replay()
        assert len(state.errors) == 1
        assert "log.jsonl" in state.errors[0]
        # The torn event's case simply runs again.
        assert state.pending() == [keys[1]]
        assert keys[0] in state.points

    def test_foreign_schema_version_is_skipped(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "schema_version": 99,
                        "event": "case-started",
                        "key": spec_key(spec),
                    }
                )
                + "\n"
            )
        state = store.replay()
        assert state.status[spec_key(spec)] == "queued"
        assert any("schema_version" in error for error in state.errors)

    def test_unknown_event_kind_is_skipped(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "schema_version": EVENT_SCHEMA_VERSION,
                        "event": "case-paused",
                        "key": spec_key(spec),
                    }
                )
                + "\n"
            )
        state = store.replay()
        assert any("unknown event kind" in error for error in state.errors)
        assert state.order == [spec_key(spec)]


class TestTornUtf8Recovery:
    def test_tail_torn_inside_multibyte_character(self, tmp_path):
        # Logs carry real UTF-8 (ensure_ascii=False), so a crash can
        # cut the final line mid-character; the undecodable tail must
        # land in errors, not blow up the read.
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        plain, labeled = _spec(0), _spec(1, params=(("label", "torn ✓"),))
        store.queue(_entries([plain]))
        store.finish(spec_key(plain), execute_case(plain))
        store.queue(_entries([labeled]))
        with open(store.path, "rb") as handle:
            raw = handle.read()
        mark = raw.rfind("✓".encode("utf-8"))
        assert mark >= 0
        with open(store.path, "rb+") as handle:
            handle.truncate(mark + 1)  # one byte of the 3-byte ✓
        state = store.replay()
        assert len(state.errors) == 1
        # Everything before the torn line survives; the torn queue
        # event's case is simply unknown until re-queued.
        assert spec_key(plain) in state.points
        assert spec_key(labeled) not in state.specs

    def test_multiple_torn_lines_each_reported(self, tmp_path):
        # A torn multi-event append leaves several unterminated lines;
        # every one is an error, none stops the fold.
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        store.finish(spec_key(spec), execute_case(spec))
        with open(store.path, "ab") as handle:
            handle.write(b'{"torn\n')
            handle.write('{"event": "case-st ✓'.encode("utf-8")[:-2] + b"\n")
        state = store.replay()
        assert len(state.errors) == 2
        assert spec_key(spec) in state.points
        assert state.pending() == []


class TestCheckpointEvents:
    def _snapshot(self, step):
        return {"schema_version": 1, "kind": "hot-potato", "step": step}

    def test_checkpoint_replays_into_state(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        key = spec_key(spec)
        store.queue(_entries([spec]))
        store.start([key])
        store.checkpoint(key, self._snapshot(4))
        state = store.replay()
        assert state.checkpoints[key]["step"] == 4
        # A checkpointed case is still owed a result.
        assert state.pending() == [key]

    def test_later_checkpoint_supersedes_earlier(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        key = spec_key(spec)
        store.queue(_entries([spec]))
        store.checkpoint(key, self._snapshot(4))
        store.checkpoint(key, self._snapshot(8))
        assert store.replay().checkpoints[key]["step"] == 8

    def test_finished_case_drops_its_checkpoints(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        key = spec_key(spec)
        store.queue(_entries([spec]))
        store.checkpoint(key, self._snapshot(4))
        store.finish(key, execute_case(spec))
        state = store.replay()
        assert state.checkpoints == {}
        assert key in state.points

    def test_checkpoint_after_finish_is_ignored(self, tmp_path):
        # finished is sticky: a straggler checkpoint from a crashed
        # retry must not resurrect a resume seed.
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        key = spec_key(spec)
        store.queue(_entries([spec]))
        store.finish(key, execute_case(spec))
        store.checkpoint(key, self._snapshot(4))
        state = store.replay()
        assert state.checkpoints == {}
        assert state.status[key] == "finished"

    def test_checkpoint_event_carries_step_and_schema(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        store.checkpoint(spec_key(spec), self._snapshot(12))
        event = _lines(store.path)[-1]
        assert event["event"] == "case-checkpointed"
        assert event["step"] == 12
        assert event["schema_version"] == EVENT_SCHEMA_VERSION
        assert event["snapshot"]["step"] == 12

    def test_checkpoint_without_snapshot_is_an_error(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _spec(0)
        store.queue(_entries([spec]))
        with open(store.path, "a", encoding="utf-8") as handle:
            handle.write(
                json.dumps(
                    {
                        "schema_version": EVENT_SCHEMA_VERSION,
                        "event": "case-checkpointed",
                        "key": spec_key(spec),
                        "snapshot": None,
                    }
                )
                + "\n"
            )
        state = store.replay()
        assert any("snapshot" in error for error in state.errors)
        assert state.checkpoints == {}
