"""The persistent WorkerPool: serial paths, persistence, callbacks.

The chunk functions live at module level — the same PAR502 pickling
contract the pool enforces on its callers.  Process-spawning cases are
marked ``slow`` like the rest of the parallel suite.
"""

import pytest

from repro.campaign.pool import BACKOFF_CAP, WorkerPool


def _double_chunk(chunk):
    return [2 * item for item in chunk]


def _raising_chunk(chunk):
    raise ValueError("deterministic chunk failure")


class TestSerialPath:
    def test_workers_one_runs_in_process(self):
        pool = WorkerPool(workers=1)
        assert pool.run_batch([1, 2, 3], _double_chunk) == [2, 4, 6]
        assert pool.chunked == 0
        assert not pool.degraded
        assert pool.starts == 0

    def test_single_item_batches_stay_serial(self):
        pool = WorkerPool(workers=4)
        assert pool.run_batch([5], _double_chunk) == [10]
        assert pool.chunked == 0
        pool.close()

    def test_unpicklable_items_fall_back_to_serial(self):
        pool = WorkerPool(workers=2)
        items = [1, lambda: None, 3]

        def identity_chunk(chunk):
            return list(chunk)

        # The serial path never pickles, so even the local chunk fn
        # and the lambda item are fine.
        out = pool.run_batch(items, identity_chunk)
        assert out[0] == 1 and out[2] == 3
        assert pool.chunked == 0
        pool.close()

    def test_empty_batch_returns_empty(self):
        pool = WorkerPool(workers=1)
        assert pool.run_batch([], _double_chunk) == []

    def test_on_result_fires_per_item_with_items_index(self):
        pool = WorkerPool(workers=1)
        seen = []
        pool.run_batch(
            [10, 20, 30],
            _double_chunk,
            on_result=lambda index, result: seen.append((index, result)),
        )
        assert sorted(seen) == [(0, 20), (1, 40), (2, 60)]

    def test_deterministic_chunk_exception_propagates(self):
        pool = WorkerPool(workers=1)
        with pytest.raises(ValueError, match="deterministic chunk"):
            pool.run_batch([1, 2], _raising_chunk)

    def test_start_declines_without_workers(self):
        pool = WorkerPool(workers=1)
        assert pool.start() is False
        assert pool.starts == 0


@pytest.mark.slow
class TestPersistence:
    def test_pool_survives_across_batches(self):
        with WorkerPool(workers=2) as pool:
            first = pool.run_batch(list(range(8)), _double_chunk)
            second = pool.run_batch(list(range(8, 16)), _double_chunk)
        assert first == [2 * i for i in range(8)]
        assert second == [2 * i for i in range(8, 16)]
        # One spawn serves both batches: the whole point of the pool.
        assert pool.starts == 1
        assert not pool.degraded

    def test_start_is_idempotent(self):
        with WorkerPool(workers=2) as pool:
            assert pool.start() is True
            assert pool.start() is True
            assert pool.starts == 1

    def test_closed_pool_restarts_on_demand(self):
        pool = WorkerPool(workers=2)
        pool.run_batch(list(range(4)), _double_chunk)
        pool.close()
        assert pool.run_batch(list(range(4)), _double_chunk) == [
            0,
            2,
            4,
            6,
        ]
        assert pool.starts == 2
        pool.close()

    def test_pooled_results_match_serial(self):
        items = list(range(20))
        serial = WorkerPool(workers=1).run_batch(items, _double_chunk)
        with WorkerPool(workers=2) as pool:
            pooled = pool.run_batch(items, _double_chunk)
        assert pooled == serial
        assert pool.chunked > 0

    def test_chunks_partition_contiguously(self):
        pool = WorkerPool(workers=2)
        chunks = pool._chunks(list(range(10)))
        flattened = [i for chunk in chunks for i in chunk]
        assert flattened == list(range(10))
        assert all(chunk == sorted(chunk) for chunk in chunks)


class TestRetryBackoffAndAttempts:
    def test_backoff_delays_are_capped(self):
        # Stub out the pool pass so every attempt "fails": the sleep
        # schedule must double from `backoff` and saturate at
        # BACKOFF_CAP instead of reaching minutes.
        delays = []
        pool = WorkerPool(workers=2, retries=4, backoff=1.0, sleep=delays.append)
        pool._pool_pass = lambda items, pending, fn, record: None
        assert pool.run_batch([1, 2], _double_chunk) == [2, 4]
        assert delays == [1.0, 2.0, 4.0, BACKOFF_CAP]
        assert pool.degraded

    def test_zero_backoff_never_sleeps(self):
        delays = []
        pool = WorkerPool(workers=2, retries=3, backoff=0.0, sleep=delays.append)
        pool._pool_pass = lambda items, pending, fn, record: None
        pool.run_batch([1, 2], _double_chunk)
        assert delays == []

    def test_attempts_count_the_serial_fallback(self):
        pool = WorkerPool(workers=2, retries=1, backoff=0.0, sleep=lambda _: None)
        pool._pool_pass = lambda items, pending, fn, record: None
        pool.run_batch([1, 2], _double_chunk)
        # Pool passes never landed anything; the serial rescue ran
        # each item exactly once.
        assert pool.attempts == {0: 1, 1: 1}

    def test_attempts_on_the_plain_serial_path(self):
        pool = WorkerPool(workers=1)
        assert pool.run_batch([1, 2, 3], _double_chunk) == [2, 4, 6]
        assert pool.attempts == {0: 1, 1: 1, 2: 1}
