"""Campaign orchestration: run, resume, failures-as-data, identity."""

import json

import pytest

from repro.campaign import (
    Campaign,
    CampaignStore,
    CaseFailure,
    CaseSpec,
    spec_key,
)


def _specs(seeds, **overrides):
    base = dict(
        topology="mesh",
        workload="random",
        policy="restricted-priority",
        side=4,
        workload_params=(("k", 6),),
    )
    base.update(overrides)
    return [CaseSpec(seed=seed, **base) for seed in seeds]


def _events(path):
    with open(path, "r", encoding="utf-8") as handle:
        return [json.loads(l) for l in handle if l.strip()]


class TestSerialRun:
    def test_points_come_back_in_spec_order(self):
        specs = _specs([3, 1, 2])
        with Campaign(specs) as campaign:
            result = campaign.run()
        assert [p.params["seed"] for p in result.points] == [3, 1, 2]
        assert result.all_completed()
        assert result.failures == []
        assert result.resumed == 0
        assert result.chunked == 0
        assert not result.degraded

    def test_points_are_summary_level(self):
        with Campaign(_specs([0])) as campaign:
            point = campaign.run().points[0]
        assert point.result.step_metrics == []
        assert point.result.outcomes == []
        assert point.result.records is None
        assert point.result.telemetry is not None

    def test_params_carry_the_sweep_labels(self):
        specs = _specs([5], params=(("label", "demo"),))
        with Campaign(specs) as campaign:
            point = campaign.run().points[0]
        assert point.params["label"] == "demo"
        assert point.params["seed"] == 5
        assert point.params["k"] == 6
        assert point.params["n"] == 4
        assert point.params["policy"]

    def test_telemetry_aggregates_over_points(self):
        with Campaign(_specs([0, 1])) as campaign:
            result = campaign.run()
        telemetry = result.telemetry()
        assert telemetry is not None
        assert telemetry.steps == sum(
            p.result.total_steps for p in result.points
        )

    def test_duplicate_specs_are_rejected(self):
        specs = _specs([0]) + _specs([0])
        with pytest.raises(ValueError, match="duplicate case specs"):
            Campaign(specs)

    def test_priority_does_not_change_returned_order(self):
        prioritized = [
            _specs([0], priority=0)[0],
            _specs([1], priority=9)[0],
            _specs([2], priority=4)[0],
        ]
        with Campaign(prioritized) as campaign:
            result = campaign.run()
        assert [p.params["seed"] for p in result.points] == [0, 1, 2]


class TestStoreIntegration:
    def test_run_journals_the_full_lifecycle(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = _specs([0, 1])
        with Campaign(specs, store=store) as campaign:
            campaign.run()
        kinds = [event["event"] for event in _events(store.path)]
        assert kinds.count("case-queued") == 2
        assert kinds.count("case-started") == 2
        assert kinds.count("case-finished") == 2

    def test_rerun_restores_instead_of_rerunning(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = _specs([0, 1, 2])
        with Campaign(specs, store=store) as campaign:
            first = campaign.run()
        with Campaign(specs, store=store) as campaign:
            second = campaign.run()
        assert second.resumed == 3
        assert second.points == first.points
        # No queued/started/finished events were re-appended.
        kinds = [event["event"] for event in _events(store.path)]
        assert kinds.count("case-queued") == 3
        assert kinds.count("case-started") == 3
        assert kinds.count("case-finished") == 3

    def test_grown_campaign_runs_only_the_new_cases(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        with Campaign(_specs([0, 1]), store=store) as campaign:
            campaign.run()
        with Campaign(_specs([0, 1, 2, 3]), store=store) as campaign:
            grown = campaign.run()
        assert grown.resumed == 2
        assert len(grown.points) == 4
        kinds = [event["event"] for event in _events(store.path)]
        assert kinds.count("case-queued") == 4
        assert kinds.count("case-finished") == 4

    def test_from_store_rebuilds_the_campaign(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = _specs([4, 5])
        with Campaign(specs, store=store) as campaign:
            first = campaign.run()
        with Campaign.from_store(store.path) as campaign:
            assert campaign.specs == specs
            second = campaign.run()
        assert second.resumed == 2
        assert second.points == first.points

    def test_priority_orders_execution_not_results(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        low = _specs([0])[0]
        high = _specs([1], priority=5)[0]
        with Campaign([low, high], store=store) as campaign:
            result = campaign.run()
        # Results stay in spec order...
        assert [p.params["seed"] for p in result.points] == [0, 1]
        # ...but the journal shows the high-priority case finishing
        # first (serial execution follows the queue order exactly).
        finished = [
            event["key"]
            for event in _events(store.path)
            if event["event"] == "case-finished"
        ]
        assert finished == [spec_key(high), spec_key(low)]

    def test_status_reflects_the_store(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        specs = _specs([0, 1])
        with Campaign(specs, store=store) as campaign:
            assert campaign.status()["queued"] == 0  # nothing queued yet
            campaign.run()
            assert campaign.status()["finished"] == 2

    def test_storeless_status_counts_specs(self):
        with Campaign(_specs([0, 1])) as campaign:
            assert campaign.status() == {
                "queued": 2,
                "started": 0,
                "finished": 0,
                "failed": 0,
            }


class TestFailuresAsData:
    def test_bad_policy_becomes_a_failure_record(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        good = _specs([0])[0]
        bad = _specs([1], policy="no-such-policy")[0]
        with Campaign([good, bad], store=store) as campaign:
            result = campaign.run()
        assert len(result.points) == 1
        assert result.points[0].params["seed"] == 0
        assert len(result.failures) == 1
        failure = result.failures[0]
        assert isinstance(failure, CaseFailure)
        assert failure.key == spec_key(bad)
        assert not result.all_completed()
        assert store.status()["failed"] == 1

    def test_failed_cases_are_retried_on_resume(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        bad = _specs([1], policy="no-such-policy")[0]
        with Campaign([bad], store=store) as campaign:
            campaign.run()
        with Campaign([bad], store=store) as campaign:
            again = campaign.run()
        assert again.resumed == 0
        assert len(again.failures) == 1
        kinds = [event["event"] for event in _events(store.path)]
        # Re-queued never, re-started and re-failed once each.
        assert kinds.count("case-queued") == 1
        assert kinds.count("case-started") == 2
        assert kinds.count("case-failed") == 2


@pytest.mark.slow
class TestDifferentialIdentity:
    def test_pooled_run_is_bit_identical_to_serial(self):
        specs = _specs([0, 1, 2, 3, 4, 5])
        with Campaign(specs) as campaign:
            serial = campaign.run()
        with Campaign(specs, workers=2) as campaign:
            pooled = campaign.run()
        assert pooled.points == serial.points
        assert pooled.chunked > 0
        assert not pooled.degraded

    def test_shared_pool_serves_many_campaigns(self):
        from repro.campaign import WorkerPool

        specs = _specs([0, 1, 2, 3])
        with WorkerPool(workers=2) as pool:
            with Campaign(specs) as campaign:
                serial = campaign.run()
            first = Campaign(specs, pool=pool).run()
            second = Campaign(specs, pool=pool).run()
            assert pool.starts == 1
        assert first.points == serial.points
        assert second.points == serial.points


class TestFailureHistoryAcrossResume:
    def test_attempts_accumulate_and_history_grows(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        bad = _specs([1], policy="no-such-policy")[0]
        with Campaign([bad], store=store) as campaign:
            first = campaign.run().failures[0]
        assert first.attempts == 1
        assert first.history == ()
        with Campaign([bad], store=store) as campaign:
            second = campaign.run().failures[0]
        # The resumed retry knows the whole trajectory, not just the
        # latest exception.
        assert second.attempts == 2
        assert len(second.history) == 1
        assert first.error in second.history[0]
        assert first.message in second.history[0]
        # And the enriched record is what the log durably carries.
        replayed = store.replay().failures[spec_key(bad)]
        assert replayed.attempts == 2
        assert replayed.history == second.history

    def test_checkpointed_spec_round_trips_through_the_log(self, tmp_path):
        store = CampaignStore(str(tmp_path / "log.jsonl"))
        spec = _specs([0], checkpoint_every=2)[0]
        with Campaign([spec], store=store) as campaign:
            result = campaign.run()
        assert not result.failures
        state = store.replay()
        restored = state.specs[spec_key(spec)]
        assert restored.checkpoint_every == 2
        # The durability knob is not part of the case identity: the
        # same case without it resumes from the same history.
        assert spec_key(spec) == spec_key(
            _specs([0], checkpoint_every=None)[0]
        )
