"""Live progress is a pure fold of the event log: counts, throughput,
ETA, campaign-level metric aggregates, and the ``watch`` polling loop
— including watching a SIGKILL-orphaned store from a separate
process, exactly how ``repro campaign status --watch`` is used."""

import io
import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.campaign import (
    Campaign,
    CampaignProgress,
    CampaignStore,
    CaseSpec,
    registry_from_state,
    watch,
)
from repro.campaign.results import aggregate_telemetry
from repro.campaign.store import CampaignState


def _specs(seeds=3, side=6, k=20):
    return [
        CaseSpec(
            topology="mesh",
            workload="random",
            policy="restricted-priority",
            seed=seed,
            side=side,
            workload_params=(("k", k),),
        )
        for seed in range(seeds)
    ]


def _finished_store(tmp_path, seeds=3):
    path = str(tmp_path / "campaign.jsonl")
    store = CampaignStore(path)
    with Campaign(_specs(seeds), store=store) as campaign:
        campaign.run()
    return store


def _stamped_state(anchors, finishes, *, total):
    """A synthetic replayed state with controlled timestamps."""
    state = CampaignState()
    specs = _specs(total)
    for index, spec in enumerate(specs):
        key = f"case-{index}"
        state.specs[key] = spec
        state.order.append(key)
        state.status[key] = "queued"
    for index, stamp in enumerate(anchors):
        state.started_at[f"case-{index}"] = stamp
    for index, stamp in enumerate(finishes):
        key = f"case-{index}"
        state.finished_at[key] = stamp
        state.status[key] = "finished"
        # A bare stand-in: the progress math only checks membership.
        state.points[key] = _Point()
    return state


class _Point:
    """Timestamp-only stand-in: progress math never touches results."""


class TestCampaignProgress:
    def test_counts_from_a_real_run(self, tmp_path):
        store = _finished_store(tmp_path)
        progress = CampaignProgress.from_state(store.replay())
        assert progress.total == progress.finished == 3
        assert progress.queued == progress.started == progress.failed == 0
        assert progress.pending == 0
        assert progress.done
        assert progress.fraction == 1.0
        assert progress.errors == 0
        # Millisecond stamps over a real multi-case window.
        assert progress.throughput is not None and progress.throughput > 0

    def test_empty_campaign_is_vacuously_done(self):
        progress = CampaignProgress.from_state(CampaignState())
        assert progress.total == 0
        assert progress.done
        assert progress.fraction == 1.0
        assert progress.throughput is None

    def test_throughput_and_eta_from_stamps(self):
        state = _stamped_state(
            anchors=["2026-01-01T00:00:00.000", "2026-01-01T00:00:01.000"],
            finishes=["2026-01-01T00:00:02.000", "2026-01-01T00:00:10.000"],
            total=4,
        )
        progress = CampaignProgress.from_state(state)
        # 2 finished over the 10s from first dispatch to last finish.
        assert progress.throughput == pytest.approx(0.2)
        # 2 still pending at 0.2 case/s.
        assert progress.eta_seconds == pytest.approx(10.0)

    def test_zero_width_window_yields_no_throughput(self):
        stamp = "2026-01-01T00:00:00.000"
        state = _stamped_state(anchors=[stamp], finishes=[stamp], total=2)
        progress = CampaignProgress.from_state(state)
        assert progress.throughput is None
        assert progress.eta_seconds is None

    def test_render_is_greppable(self, tmp_path):
        store = _finished_store(tmp_path)
        line = CampaignProgress.from_state(store.replay()).render()
        assert line.startswith("campaign: 3 cases")
        assert "queued 0 started 0 finished 3 failed 0" in line
        assert "100.0% done" in line
        assert "case/s" in line
        assert "eta" not in line  # done runs owe no estimate
        assert "log errors" not in line


class TestRegistryFromState:
    def test_lifecycle_counters_and_folded_telemetry(self, tmp_path):
        store = _finished_store(tmp_path)
        state = store.replay()
        registry = registry_from_state(state)
        assert (
            registry.counter("repro_campaign_cases_finished_total").value
            == 3
        )
        assert (
            registry.counter("repro_campaign_cases_queued_total").value == 0
        )
        total = aggregate_telemetry(state.points.values())
        assert (
            registry.counter("repro_run_delivered_total").value
            == total.delivered
            == 60
        )
        assert (
            registry.gauge("repro_run_peak_in_flight").value
            == total.max_in_flight
        )

    def test_unfinished_state_has_zero_run_counters(self):
        state = CampaignState()
        for index, spec in enumerate(_specs(2)):
            key = f"case-{index}"
            state.specs[key] = spec
            state.order.append(key)
            state.status[key] = "queued"
        registry = registry_from_state(state)
        assert (
            registry.counter("repro_campaign_cases_queued_total").value == 2
        )
        assert "repro_run_delivered_total" not in registry


class TestWatch:
    def test_finished_store_returns_after_one_poll(self, tmp_path):
        store = _finished_store(tmp_path)
        stream = io.StringIO()
        progress = watch(store, interval=0.001, stream=stream)
        assert progress.done
        lines = stream.getvalue().splitlines()
        assert len(lines) == 1
        assert lines[0] == progress.render()

    def test_max_polls_bounds_a_pending_store(self, tmp_path):
        path = str(tmp_path / "pending.jsonl")
        store = CampaignStore(path)
        store.queue([("case-0", _specs(1)[0])])
        stream = io.StringIO()
        progress = watch(
            store, interval=0.001, stream=stream, max_polls=3
        )
        assert not progress.done
        assert progress.pending == 1
        assert len(stream.getvalue().splitlines()) == 3


CHILD = """\
from repro.campaign import Campaign, CampaignStore, CaseSpec

specs = [
    CaseSpec(
        topology="mesh",
        workload="random",
        policy="restricted-priority",
        seed=seed,
        side=10,
        workload_params=(("k", 60),),
    )
    for seed in range(8)
]
with Campaign(specs, store=CampaignStore({store_path!r})) as campaign:
    campaign.run()
"""


def _finished_count(path):
    if not os.path.exists(path):
        return 0
    count = 0
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            try:
                event = json.loads(line)
            except ValueError:
                continue
            if event.get("event") == "case-finished":
                count += 1
    return count


@pytest.mark.slow
class TestWatchKilledCampaign:
    def test_watch_tails_an_orphaned_store_then_the_resume(self, tmp_path):
        # Kill a campaign process mid-run, then do what a real operator
        # does: point `repro campaign status --watch` at the orphaned
        # log from a second process, resume, and watch again.
        store_path = str(tmp_path / "campaign.jsonl")
        child = subprocess.Popen(
            [sys.executable, "-c", CHILD.format(store_path=store_path)],
            env=dict(os.environ),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if _finished_count(store_path) >= 2:
                    break
                if child.poll() is not None:
                    break
                time.sleep(0.005)
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        survived = _finished_count(store_path)
        assert survived >= 2

        cli = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "campaign",
                "status",
                "--store",
                store_path,
                "--watch",
                "--interval",
                "0.01",
                "--max-polls",
                "2",
            ],
            env=dict(os.environ),
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert cli.returncode == 0, cli.stderr
        watch_lines = [
            line
            for line in cli.stdout.splitlines()
            if line.startswith("campaign: 8 cases")
        ]
        # The watcher polled the partial log without touching any pool.
        assert len(watch_lines) == 2
        assert f"finished {survived}" in watch_lines[0]

        resumed = Campaign.from_store(store_path)
        with resumed:
            resumed.run()

        stream = io.StringIO()
        progress = watch(
            CampaignStore(store_path), interval=0.001, stream=stream
        )
        assert progress.done
        assert progress.finished == progress.total == 8
        assert len(stream.getvalue().splitlines()) == 1
