"""Tests for cycle detection and the greedy transition searcher."""

import pytest

from repro.algorithms import (
    BlockingGreedyPolicy,
    PlainGreedyPolicy,
    livelock_instance,
)
from repro.analysis.livelock import (
    detect_cycle,
    find_greedy_cycle,
    greedy_successors,
)
from repro.core.problem import RoutingProblem
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


class TestDetectCycle:
    def test_terminating_run_returns_none(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=200)
        assert detect_cycle(problem, PlainGreedyPolicy(), seed=200) is None

    def test_livelock_detected(self):
        cycle = detect_cycle(livelock_instance(), BlockingGreedyPolicy())
        assert cycle is not None
        assert cycle.period == 2
        assert "livelock" in str(cycle)

    def test_budget_too_small_returns_none(self):
        # One step is not enough to see a repeat.
        assert (
            detect_cycle(
                livelock_instance(), BlockingGreedyPolicy(), max_steps=1
            )
            is None
        )


class TestGreedySuccessors:
    def test_lone_packet_must_advance(self):
        mesh = Mesh(2, 4)
        successors = list(
            greedy_successors(
                mesh, [(3, 3)], ((1, 1),), forbid_delivery=False
            )
        )
        # Both good directions are legal greedy moves; nothing else.
        assert len(successors) == 2
        for state, moves in successors:
            assert mesh.distance(state[0], (3, 3)) == 3  # advanced

    def test_forbid_delivery_prunes(self):
        mesh = Mesh(2, 4)
        # Packet one hop from destination: the only greedy move delivers.
        successors = list(
            greedy_successors(mesh, [(1, 2)], ((1, 1),))
        )
        assert successors == []

    def test_conflicting_pair_options(self):
        mesh = Mesh(2, 4)
        # Two packets at (2,1) both restricted to east.
        destinations = [(2, 3), (2, 4)]
        successors = list(
            greedy_successors(mesh, destinations, ((2, 1), (2, 1)))
        )
        # Either packet may advance east; the loser picks any of the
        # remaining arcs (north, south, or... (2,1) has degree 3: east,
        # north, south).  2 winners x 2 leftover arcs = 4 options.
        assert len(successors) == 4
        for state, moves in successors:
            assert state[0] != state[1]  # distinct arcs, distinct nodes

    def test_max_successors_cap(self):
        mesh = Mesh(2, 4)
        destinations = [(2, 3), (2, 4)]
        capped = list(
            greedy_successors(
                mesh, destinations, ((2, 1), (2, 1)), max_successors=2
            )
        )
        assert len(capped) == 2

    def test_moves_record_source_and_direction(self):
        mesh = Mesh(2, 4)
        for state, moves in greedy_successors(
            mesh, [(3, 3)], ((1, 1),), forbid_delivery=False
        ):
            node, direction = moves[0]
            assert node == (1, 1)
            assert mesh.neighbor(node, direction) == state[0]


class TestFindGreedyCycle:
    def test_finds_known_livelock(self):
        found = find_greedy_cycle(livelock_instance(), max_states=10_000)
        assert found is not None
        assert found.period >= 2
        assert "livelock" in str(found)

    def test_single_packet_acyclic(self):
        mesh = Mesh(2, 4)
        problem = RoutingProblem.from_pairs(mesh, [((1, 1), (4, 4))])
        assert find_greedy_cycle(problem, max_states=5_000) is None

    def test_opposing_pair_acyclic(self):
        mesh = Mesh(2, 4)
        problem = RoutingProblem.from_pairs(
            mesh, [((1, 1), (1, 4)), ((1, 4), (1, 1))]
        )
        assert find_greedy_cycle(problem, max_states=10_000) is None

    def test_rejects_trivial_request(self):
        mesh = Mesh(2, 4)
        problem = RoutingProblem.from_pairs(mesh, [((1, 1), (1, 1))])
        with pytest.raises(ValueError):
            find_greedy_cycle(problem)
