"""Tests for experiment report assembly."""

import pytest

from repro.analysis.reporting import (
    build_report,
    load_results,
    parse_block,
    write_report,
)


BLOCK = """== E2: Theorem 17 — measured vs bounds ==
workload  T
--------  --
random    24
instance bound notes here.
"""


class TestParseBlock:
    def test_round_trip_fields(self):
        block = parse_block(BLOCK)
        assert block.experiment_id == "E2"
        assert block.title.startswith("Theorem 17")
        assert "random    24" in block.body

    def test_markdown_rendering(self):
        md = parse_block(BLOCK).to_markdown()
        assert md.startswith("## E2 — Theorem 17")
        assert "```" in md

    def test_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_block("no header here")
        with pytest.raises(ValueError):
            parse_block("")


class TestLoadAndBuild:
    def _write(self, directory, name, experiment_id, title="t"):
        (directory / name).write_text(
            f"== {experiment_id}: {title} ==\nbody of {experiment_id}\n"
        )

    def test_loads_in_experiment_order(self, tmp_path):
        self._write(tmp_path, "b.txt", "E10")
        self._write(tmp_path, "a.txt", "E2")
        self._write(tmp_path, "c.txt", "E3a")
        self._write(tmp_path, "d.txt", "E3b")
        blocks = load_results(str(tmp_path))
        assert [b.experiment_id for b in blocks] == ["E2", "E3a", "E3b", "E10"]

    def test_ignores_non_txt(self, tmp_path):
        self._write(tmp_path, "a.txt", "E1")
        (tmp_path / "junk.json").write_text("{}")
        assert len(load_results(str(tmp_path))) == 1

    def test_missing_directory_is_empty(self, tmp_path):
        assert load_results(str(tmp_path / "nope")) == []

    def test_build_report(self, tmp_path):
        self._write(tmp_path, "a.txt", "E1", "first")
        report = build_report(
            str(tmp_path), title="Demo", preamble="intro text"
        )
        assert report.startswith("# Demo")
        assert "intro text" in report
        assert "## E1 — first" in report

    def test_build_report_empty(self, tmp_path):
        report = build_report(str(tmp_path))
        assert "no experiment results found" in report

    def test_write_report(self, tmp_path):
        self._write(tmp_path, "a.txt", "E1")
        out = tmp_path / "report.md"
        stats = write_report(str(tmp_path), str(out))
        assert stats["experiments"] == 1
        assert out.read_text().startswith("# Measured experiment tables")


class TestAgainstRealResults:
    def test_parses_actual_bench_output(self):
        """The real benchmarks/results/ blocks (when present from a
        previous bench run) all parse cleanly."""
        import os

        results_dir = os.path.join(
            os.path.dirname(__file__), "..", "..", "benchmarks", "results"
        )
        blocks = load_results(results_dir)
        for block in blocks:
            assert block.experiment_id.startswith("E")
            assert block.body
