"""Tests for summary statistics."""

import pytest

from repro.analysis.stats import (
    confidence_interval,
    geometric_mean,
    ratio_summary,
    summarize,
)


class TestSummarize:
    def test_basic(self):
        summary = summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.median == 3
        assert summary.minimum == 1
        assert summary.maximum == 5

    def test_even_count_median(self):
        assert summarize([1, 2, 3, 4]).median == 2.5

    def test_std(self):
        summary = summarize([2, 2, 2])
        assert summary.std == 0.0
        assert summarize([0, 4]).std == 2.0

    def test_single_value(self):
        summary = summarize([7])
        assert summary.mean == 7
        assert summary.std == 0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_str(self):
        assert "mean=" in str(summarize([1, 2]))


class TestConfidenceInterval:
    def test_contains_mean(self):
        low, high = confidence_interval([10, 12, 14, 16])
        assert low <= 13 <= high

    def test_single_point_degenerate(self):
        assert confidence_interval([5]) == (5, 5)

    def test_width_shrinks_with_z(self):
        data = [1, 2, 3, 4, 5, 6]
        wide = confidence_interval(data, z=2.58)
        narrow = confidence_interval(data, z=1.0)
        assert (wide[1] - wide[0]) > (narrow[1] - narrow[0])


class TestGeometricMean:
    def test_value(self):
        assert geometric_mean([1, 4]) == pytest.approx(2.0)
        assert geometric_mean([8]) == pytest.approx(8.0)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            geometric_mean([1, 0])
        with pytest.raises(ValueError):
            geometric_mean([])


class TestRatioSummary:
    def test_ratios(self):
        summary = ratio_summary([2, 6], [4, 4])
        assert summary.mean == pytest.approx(1.0)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            ratio_summary([1], [1, 2])

    def test_zero_denominator(self):
        with pytest.raises(ValueError):
            ratio_summary([1], [0])
