"""Tests for the process-parallel experiment harness.

Marked ``slow``: these spawn worker processes, which dominates their
runtime.  The tier-1 smoke run excludes them via ``-m "not slow"``;
the default ``pytest`` invocation still runs everything.

The contract under test: ``workers=N`` is an invisible optimization —
point-for-point identical results, in identical order, to the serial
harness — and anything unpicklable degrades gracefully to serial.
"""

import pickle
from functools import partial

import pytest

from repro.algorithms import PlainGreedyPolicy, RestrictedPriorityPolicy
from repro.analysis.runner import (
    CaseSpec,
    ParallelExecutor,
    aggregate_telemetry,
    compare_policies,
    run_case,
    sweep,
)
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


def _problem(side, k, seed):
    return random_many_to_many(Mesh(2, side), k=k, seed=seed)


def _case(params):
    return (
        partial(_problem, params["n"], params["k"]),
        RestrictedPriorityPolicy,
    )


class TestSerialBehavior:
    """Fast checks that don't spawn processes."""

    def test_workers_one_matches_legacy_run_case(self):
        points = run_case(
            partial(_problem, 8, 24), RestrictedPriorityPolicy, [0, 1, 2]
        )
        assert [p.params["seed"] for p in points] == [0, 1, 2]
        assert all(p.result.completed for p in points)

    def test_case_spec_is_picklable(self):
        spec = CaseSpec(
            problem_factory=partial(_problem, 8, 24),
            policy_factory=RestrictedPriorityPolicy,
            seed=0,
        )
        assert pickle.loads(pickle.dumps(spec)).seed == 0

    def test_lambda_factories_fall_back_to_serial(self):
        # Lambdas cannot cross a process boundary; the executor must
        # detect that and run in-process instead of crashing.
        points = run_case(
            lambda seed: _problem(8, 16, seed),
            lambda: RestrictedPriorityPolicy(),
            [0, 1],
            workers=4,
        )
        assert len(points) == 2
        assert all(p.result.completed for p in points)

    def test_single_spec_stays_serial(self):
        executor = ParallelExecutor(workers=8)
        points = executor.run(
            [
                CaseSpec(
                    problem_factory=partial(_problem, 8, 16),
                    policy_factory=RestrictedPriorityPolicy,
                    seed=0,
                )
            ]
        )
        assert len(points) == 1 and points[0].result.completed

    def test_workers_floor_is_one(self):
        assert ParallelExecutor(workers=0).workers == 1
        assert ParallelExecutor(workers=-3).workers == 1

    def test_serial_run_dispatches_no_chunks(self):
        executor = ParallelExecutor(workers=1)
        executor.run(
            [
                CaseSpec(
                    problem_factory=partial(_problem, 8, 16),
                    policy_factory=RestrictedPriorityPolicy,
                    seed=seed,
                )
                for seed in (0, 1)
            ]
        )
        assert executor.chunked == 0


class TestChunkPartition:
    """The chunk planner alone — no processes spawned."""

    def test_chunks_cover_pending_in_order(self):
        executor = ParallelExecutor(workers=2)
        pending = list(range(37))
        chunks = executor._chunks(pending)
        flattened = [index for chunk in chunks for index in chunk]
        assert flattened == pending  # contiguous, order-preserving
        assert all(chunks)  # no empty chunks

    def test_chunk_count_tracks_workers(self):
        pending = list(range(64))
        few = ParallelExecutor(workers=2)._chunks(pending)
        many = ParallelExecutor(workers=8)._chunks(pending)
        assert len(few) <= 2 * ParallelExecutor.CHUNKS_PER_WORKER
        assert len(many) >= len(few)

    def test_small_batches_chunk_one_spec_each(self):
        executor = ParallelExecutor(workers=4)
        chunks = executor._chunks([0, 1, 2])
        assert chunks == [[0], [1], [2]]


class TestBackendPlumbing:
    """CaseSpec.backend reaches worker-side engine construction."""

    def test_soa_backend_matches_object_backend(self):
        kwargs = dict(strict_validation=False)
        object_points = run_case(
            partial(_problem, 8, 24),
            RestrictedPriorityPolicy,
            [0, 1],
            **kwargs,
        )
        soa_points = run_case(
            partial(_problem, 8, 24),
            RestrictedPriorityPolicy,
            [0, 1],
            backend="soa",
            **kwargs,
        )
        assert [p.result for p in object_points] == [
            p.result for p in soa_points
        ]

    def test_soa_spec_is_picklable(self):
        spec = CaseSpec(
            problem_factory=partial(_problem, 8, 24),
            policy_factory=RestrictedPriorityPolicy,
            seed=0,
            strict_validation=False,
            backend="soa",
        )
        assert pickle.loads(pickle.dumps(spec)).backend == "soa"


class TestTelemetryAggregation:
    """Lean-path counters ride inside RunResult and aggregate at the
    harness boundary (totals add, peaks max)."""

    def test_executor_aggregates_the_batch(self):
        points = run_case(
            partial(_problem, 8, 24), RestrictedPriorityPolicy, [0, 1, 2]
        )
        total = aggregate_telemetry(points)
        assert total is not None
        assert total.delivered == sum(
            p.result.delivered for p in points
        )
        assert total.steps == sum(
            p.result.total_steps for p in points
        )
        assert total.max_in_flight == max(
            p.result.telemetry.max_in_flight for p in points
        )

    def test_executor_records_its_last_batch(self):
        executor = ParallelExecutor(workers=1)
        assert executor.telemetry is None
        specs = [
            CaseSpec(
                problem_factory=partial(_problem, 8, 24),
                policy_factory=RestrictedPriorityPolicy,
                seed=seed,
            )
            for seed in (0, 1)
        ]
        points = executor.run(specs)
        assert executor.telemetry == aggregate_telemetry(points)

    def test_sweep_result_exposes_the_aggregate(self):
        grid = [{"n": 8, "k": k} for k in (8, 16)]
        result = sweep(grid, _case, seeds=[0, 1])
        total = result.telemetry()
        assert total is not None
        assert total.delivered == sum(
            p.result.delivered for p in result.points
        )

    def test_aggregate_of_no_points_is_none(self):
        assert aggregate_telemetry([]) is None


@pytest.mark.slow
class TestParallelTelemetry:
    def test_counters_cross_the_process_boundary(self):
        serial = run_case(
            partial(_problem, 8, 32), RestrictedPriorityPolicy, range(4)
        )
        parallel = run_case(
            partial(_problem, 8, 32),
            RestrictedPriorityPolicy,
            range(4),
            workers=4,
        )
        assert aggregate_telemetry(parallel) == aggregate_telemetry(serial)
        assert all(p.result.telemetry is not None for p in parallel)


@pytest.mark.slow
class TestParallelEquivalence:
    def test_run_case_workers_match_serial(self):
        serial = run_case(
            partial(_problem, 8, 32), RestrictedPriorityPolicy, range(6)
        )
        parallel = run_case(
            partial(_problem, 8, 32),
            RestrictedPriorityPolicy,
            range(6),
            workers=4,
        )
        assert [p.params for p in serial] == [p.params for p in parallel]
        assert [p.result for p in serial] == [p.result for p in parallel]

    def test_sweep_workers_match_serial(self):
        grid = [{"n": 8, "k": k} for k in (8, 16, 32)]
        serial = sweep(grid, _case, seeds=[0, 1])
        parallel = sweep(grid, _case, seeds=[0, 1], workers=4)
        assert [p.params for p in serial.points] == [
            p.params for p in parallel.points
        ]
        assert [p.result for p in serial.points] == [
            p.result for p in parallel.points
        ]
        assert serial.summarize_by("k").keys() == parallel.summarize_by(
            "k"
        ).keys()
        # Chunked dispatch is recorded: the parallel sweep submitted at
        # least one chunk, the serial one none.
        assert serial.chunked == 0
        assert 1 <= parallel.chunked <= len(parallel.points)

    def test_compare_policies_workers_match_serial(self):
        policies = {
            "restricted-priority": RestrictedPriorityPolicy,
            "plain-greedy": PlainGreedyPolicy,
        }
        serial = compare_policies(
            partial(_problem, 8, 24), policies, [0, 1]
        )
        parallel = compare_policies(
            partial(_problem, 8, 24), policies, [0, 1], workers=2
        )
        for name in policies:
            assert [p.result for p in serial[name]] == [
                p.result for p in parallel[name]
            ]

    def test_strict_validation_crosses_processes(self):
        # Validators are rebuilt per worker from the spec; a strict
        # parallel run must behave exactly like a strict serial one.
        serial = run_case(
            partial(_problem, 8, 24),
            RestrictedPriorityPolicy,
            [0, 1],
            strict_validation=True,
        )
        parallel = run_case(
            partial(_problem, 8, 24),
            RestrictedPriorityPolicy,
            [0, 1],
            strict_validation=True,
            workers=2,
        )
        assert [p.result for p in serial] == [p.result for p in parallel]
