"""Test package."""
