"""Tests for the table formatters."""

import pytest

from repro.analysis.tables import (
    format_cell,
    format_markdown_table,
    format_table,
)


class TestFormatCell:
    def test_floats_short(self):
        assert format_cell(1.23456) == "1.23"
        assert format_cell(0.0) == "0"

    def test_large_floats_grouped(self):
        assert format_cell(12345.6) == "12,346"

    def test_bool(self):
        assert format_cell(True) == "yes"
        assert format_cell(False) == "no"

    def test_str_and_int(self):
        assert format_cell("abc") == "abc"
        assert format_cell(42) == "42"


class TestFormatTable:
    def test_alignment(self):
        table = format_table(
            ["name", "T"], [["a", 1], ["long-name", 22]]
        )
        lines = table.splitlines()
        assert len(lines) == 4
        assert len(set(len(line.rstrip()) for line in lines[0:1])) == 1
        assert "long-name" in lines[3]

    def test_title(self):
        table = format_table(["x"], [[1]], title="demo")
        assert table.splitlines()[0] == "demo"

    def test_rule_under_header(self):
        table = format_table(["abc"], [[1]])
        assert set(table.splitlines()[1]) == {"-"}

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_table(["a", "b"], [[1]])


class TestMarkdownTable:
    def test_structure(self):
        table = format_markdown_table(["a", "b"], [[1, 2], [3, 4]])
        lines = table.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 2 |"

    def test_row_width_mismatch(self):
        with pytest.raises(ValueError):
            format_markdown_table(["a"], [[1, 2]])
