"""Tests for the adversarial permutation search."""

from repro.algorithms import PlainGreedyPolicy, RestrictedPriorityPolicy
from repro.analysis.worst_case import (
    WorstCaseResult,
    search_with_restarts,
    search_worst_permutation,
)
from repro.mesh.topology import Mesh


class TestSearch:
    def test_result_shape(self):
        mesh = Mesh(2, 4)
        result = search_worst_permutation(
            mesh, RestrictedPriorityPolicy, iterations=30, seed=0
        )
        assert result.steps >= result.baseline_steps
        assert result.problem.is_permutation()
        assert result.problem.k == 16
        assert result.evaluations > 1
        assert "worst found" in str(result)

    def test_monotone_nondecreasing_over_search(self):
        """Accepted swaps never lower the objective, so the found
        instance is at least as bad as the random start."""
        mesh = Mesh(2, 4)
        result = search_worst_permutation(
            mesh, PlainGreedyPolicy, iterations=50, seed=1
        )
        assert result.degradation >= 1.0

    def test_found_instance_reproduces_its_score(self):
        """The returned problem, re-routed, takes exactly the reported
        number of steps."""
        from repro.core.engine import HotPotatoEngine

        mesh = Mesh(2, 4)
        result = search_worst_permutation(
            mesh, RestrictedPriorityPolicy, iterations=40, seed=2
        )
        rerun = HotPotatoEngine(
            result.problem, RestrictedPriorityPolicy(), seed=0
        ).run()
        assert rerun.total_steps == result.steps

    def test_deterministic_given_seed(self):
        mesh = Mesh(2, 4)
        a = search_worst_permutation(
            mesh, RestrictedPriorityPolicy, iterations=25, seed=3
        )
        b = search_worst_permutation(
            mesh, RestrictedPriorityPolicy, iterations=25, seed=3
        )
        assert a.steps == b.steps
        assert a.problem.requests == b.problem.requests

    def test_restarts_keep_the_best(self):
        mesh = Mesh(2, 4)
        result = search_with_restarts(
            mesh,
            RestrictedPriorityPolicy,
            restarts=2,
            iterations=20,
            seed=4,
        )
        single = search_worst_permutation(
            mesh, RestrictedPriorityPolicy, iterations=20, seed=4
        )
        assert result.steps >= 1
        assert isinstance(result, WorstCaseResult)

    def test_degradation_of_zero_baseline(self):
        result = WorstCaseResult(
            problem=None, steps=5, baseline_steps=0, evaluations=1
        )
        assert result.degradation == 1.0
