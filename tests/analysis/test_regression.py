"""Tests for the power-law fitting used by the scaling benchmarks."""

import math
import random

import pytest

from repro.analysis.regression import (
    PowerLawFit,
    TwoFactorFit,
    fit_power_law,
    fit_two_factor,
)


class TestPowerLaw:
    def test_exact_recovery(self):
        xs = [1, 2, 4, 8, 16]
        ys = [3 * x**1.5 for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(1.5)
        assert fit.coefficient == pytest.approx(3.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = PowerLawFit(coefficient=2.0, exponent=2.0, r_squared=1.0)
        assert fit.predict(3) == 18

    def test_noisy_recovery(self):
        rng = random.Random(0)
        xs = [2**i for i in range(1, 11)]
        ys = [5 * x**0.5 * math.exp(rng.gauss(0, 0.05)) for x in xs]
        fit = fit_power_law(xs, ys)
        assert fit.exponent == pytest.approx(0.5, abs=0.1)
        assert fit.r_squared > 0.95

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 0], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1, -2])

    def test_rejects_short_input(self):
        with pytest.raises(ValueError):
            fit_power_law([1], [1])

    def test_rejects_constant_x(self):
        with pytest.raises(ValueError):
            fit_power_law([2, 2, 2], [1, 2, 3])

    def test_rejects_length_mismatch(self):
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [1])

    def test_str(self):
        assert "R^2" in str(fit_power_law([1, 2, 4], [1, 2, 4]))


class TestTwoFactor:
    def test_exact_recovery_of_theorem20_shape(self):
        """Recover T = c * n^1 * k^0.5 — the Theorem 20 shape."""
        ns, ks, ts = [], [], []
        for n in (8, 16, 32):
            for k in (4, 16, 64, 256):
                ns.append(n)
                ks.append(k)
                ts.append(11.3 * n * math.sqrt(k))
        fit = fit_two_factor(ns, ks, ts)
        assert fit.n_exponent == pytest.approx(1.0)
        assert fit.k_exponent == pytest.approx(0.5)
        assert fit.coefficient == pytest.approx(11.3)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = TwoFactorFit(
            coefficient=2.0, n_exponent=1.0, k_exponent=0.5, r_squared=1.0
        )
        assert fit.predict(10, 4) == pytest.approx(40.0)

    def test_singular_design_rejected(self):
        # k never varies -> singular.
        with pytest.raises(ValueError):
            fit_two_factor([1, 2, 4], [3, 3, 3], [1, 2, 4])

    def test_short_input_rejected(self):
        with pytest.raises(ValueError):
            fit_two_factor([1, 2], [1, 2], [1, 2])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            fit_two_factor([1, 2, 3], [1, 2], [1, 2, 3])

    def test_str(self):
        ns = [2, 4, 8, 2, 4, 8]
        ks = [2, 2, 2, 8, 8, 8]
        ts = [n * k for n, k in zip(ns, ks)]
        assert "n^" in str(fit_two_factor(ns, ks, ts))
