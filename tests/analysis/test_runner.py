"""Tests for the experiment harness."""

import pytest

from repro.algorithms import (
    DimensionOrderPolicy,
    PlainGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.analysis.runner import (
    compare_policies,
    run_case,
    sweep,
)
from repro.workloads import random_many_to_many


class TestRunCase:
    def test_replicates_over_seeds(self, mesh8):
        points = run_case(
            lambda seed: random_many_to_many(mesh8, k=20, seed=seed),
            RestrictedPriorityPolicy,
            seeds=[0, 1, 2],
        )
        assert len(points) == 3
        assert all(p.result.completed for p in points)
        assert [p.params["seed"] for p in points] == [0, 1, 2]

    def test_params_attached(self, mesh8):
        points = run_case(
            lambda seed: random_many_to_many(mesh8, k=20, seed=seed),
            RestrictedPriorityPolicy,
            seeds=[0],
            params={"phase": "demo"},
        )
        point = points[0]
        assert point.params["phase"] == "demo"
        assert point.params["policy"] == "restricted-priority"
        assert point.params["k"] == 20
        assert point.params["n"] == 8
        assert point.steps == point.result.total_steps

    def test_non_strict_validation(self, mesh8):
        points = run_case(
            lambda seed: random_many_to_many(mesh8, k=20, seed=seed),
            PlainGreedyPolicy,
            seeds=[0],
            strict_validation=False,
        )
        assert points[0].result.completed

    def test_buffered_engine(self, mesh8):
        points = run_case(
            lambda seed: random_many_to_many(mesh8, k=20, seed=seed),
            DimensionOrderPolicy,
            seeds=[0, 1],
            engine="buffered",
        )
        assert len(points) == 2
        assert all(p.result.completed for p in points)
        assert points[0].params["policy"] == "dimension-order"

    def test_unknown_engine_rejected(self, mesh8):
        with pytest.raises(ValueError, match="unknown engine"):
            run_case(
                lambda seed: random_many_to_many(mesh8, k=5, seed=seed),
                RestrictedPriorityPolicy,
                seeds=[0],
                engine="teleport",
            )


class TestSweep:
    def test_grid_evaluation(self, mesh8):
        grid = [{"k": 10}, {"k": 20}]

        def build(params):
            k = params["k"]
            return (
                lambda seed: random_many_to_many(mesh8, k=k, seed=seed),
                RestrictedPriorityPolicy,
            )

        result = sweep(grid, build, seeds=[0, 1])
        assert len(result.points) == 4
        assert result.all_completed()
        grouped = result.steps_by("k")
        assert set(grouped) == {10, 20}
        assert all(len(v) == 2 for v in grouped.values())

    def test_summarize_by(self, mesh8):
        grid = [{"k": 10}, {"k": 40}]

        def build(params):
            k = params["k"]
            return (
                lambda seed: random_many_to_many(mesh8, k=k, seed=seed),
                RestrictedPriorityPolicy,
            )

        result = sweep(grid, build, seeds=[0, 1, 2])
        summaries = result.summarize_by("k")
        assert summaries[10].count == 3
        # More packets -> no faster than fewer, on average.
        assert summaries[40].mean >= summaries[10].mean


class TestComparePolicies:
    def test_same_instances_per_policy(self, mesh8):
        comparison = compare_policies(
            lambda seed: random_many_to_many(mesh8, k=30, seed=seed),
            {
                "restricted": RestrictedPriorityPolicy,
                "plain": PlainGreedyPolicy,
            },
            seeds=[0, 1],
        )
        assert set(comparison) == {"restricted", "plain"}
        assert all(
            point.result.completed
            for points in comparison.values()
            for point in points
        )
