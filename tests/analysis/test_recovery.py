"""Crash recovery in the harness: worker loss, wedged pools, spec
retries, and checkpoint/resume for sweeps.

The process-spawning scenarios are marked ``slow`` like the rest of
the parallel suite.  Crash/hang behavior is armed through sentinel
files so a factory misbehaves exactly once and then runs normally —
first pool pass fails, the retry (or serial fallback) succeeds.
"""

import json
import os
import time
from functools import partial

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.analysis.checkpoint import SweepCheckpoint, spec_key
from repro.analysis.runner import (
    CaseSpec,
    ParallelExecutor,
    sweep,
)
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


def _problem(side, k, seed):
    return random_many_to_many(Mesh(2, side), k=k, seed=seed)


def _crashy_problem(sentinel, side, k, seed):
    """Kill the whole worker process on first use, then behave."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        os._exit(1)
    return _problem(side, k, seed)


def _sleepy_problem(sentinel, side, k, seed):
    """Hang (longer than any test timeout) on first use, then behave."""
    if not os.path.exists(sentinel):
        with open(sentinel, "w", encoding="utf-8"):
            pass
        time.sleep(8.0)
    return _problem(side, k, seed)


def _raising_problem(seed):
    raise ValueError("deterministic spec failure")


def _specs(problem_factory, seeds):
    return [
        CaseSpec(
            problem_factory=problem_factory,
            policy_factory=RestrictedPriorityPolicy,
            seed=seed,
        )
        for seed in seeds
    ]


def _case(params):
    return (
        partial(_problem, params["n"], params["k"]),
        RestrictedPriorityPolicy,
    )


@pytest.mark.slow
class TestWorkerCrashRecovery:
    def test_killed_worker_costs_nothing_but_a_retry(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        executor = ParallelExecutor(workers=2, retries=2, backoff=0)
        specs = _specs(
            partial(_crashy_problem, sentinel, 4, 8), [0, 1, 2, 3]
        )
        points = executor.run(specs)
        assert len(points) == 4
        assert [p.params["seed"] for p in points] == [0, 1, 2, 3]
        assert all(p.result.completed for p in points)
        assert executor.degraded
        assert os.path.exists(sentinel)

    def test_crash_results_match_a_clean_run(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        crashed = ParallelExecutor(workers=2, retries=2, backoff=0).run(
            _specs(partial(_crashy_problem, sentinel, 4, 8), [0, 1, 2])
        )
        clean = ParallelExecutor(workers=1).run(
            _specs(partial(_problem, 4, 8), [0, 1, 2])
        )
        assert [p.result for p in crashed] == [p.result for p in clean]

    def test_retries_zero_falls_back_to_serial(self, tmp_path):
        sentinel = str(tmp_path / "crashed")
        executor = ParallelExecutor(workers=2, retries=0)
        points = executor.run(
            _specs(partial(_crashy_problem, sentinel, 4, 8), [0, 1])
        )
        assert len(points) == 2
        assert all(p.result.completed for p in points)
        assert executor.degraded


@pytest.mark.slow
class TestWedgedPoolRecovery:
    def test_hung_worker_is_abandoned_after_the_timeout(self, tmp_path):
        sentinel = str(tmp_path / "slept")
        executor = ParallelExecutor(
            workers=2, timeout=0.5, retries=1, backoff=0
        )
        start = time.monotonic()
        points = executor.run(
            _specs(partial(_sleepy_problem, sentinel, 4, 8), [0, 1, 2])
        )
        elapsed = time.monotonic() - start
        assert len(points) == 3
        assert all(p.result.completed for p in points)
        assert executor.degraded
        # The 8s sleeper must not be waited out.
        assert elapsed < 6


@pytest.mark.slow
class TestSpecFailures:
    def test_deterministic_spec_exception_propagates(self):
        executor = ParallelExecutor(workers=2, retries=3, backoff=0)
        with pytest.raises(ValueError, match="deterministic spec failure"):
            executor.run(_specs(_raising_problem, [0, 1]))


class TestSpecKeys:
    def test_key_is_stable_across_equal_specs(self):
        first = _specs(partial(_problem, 4, 8), [0])[0]
        second = _specs(partial(_problem, 4, 8), [0])[0]
        assert spec_key(first) == spec_key(second)

    def test_key_distinguishes_every_ingredient(self):
        base = _specs(partial(_problem, 4, 8), [0])[0]
        keys = {spec_key(base)}
        variants = [
            _specs(partial(_problem, 4, 8), [1])[0],
            _specs(partial(_problem, 4, 12), [0])[0],
            CaseSpec(
                problem_factory=base.problem_factory,
                policy_factory=base.policy_factory,
                seed=0,
                max_steps=99,
            ),
            CaseSpec(
                problem_factory=base.problem_factory,
                policy_factory=base.policy_factory,
                seed=0,
                engine="buffered",
            ),
            CaseSpec(
                problem_factory=base.problem_factory,
                policy_factory=base.policy_factory,
                seed=0,
                strict_validation=False,
            ),
        ]
        for variant in variants:
            keys.add(spec_key(variant))
        assert len(keys) == len(variants) + 1


class TestCheckpointResume:
    GRID = [{"n": 4, "k": 8}, {"n": 4, "k": 12}]

    def test_fresh_sweep_records_every_point(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        result = sweep(self.GRID, _case, seeds=[0, 1], checkpoint=checkpoint)
        assert result.resumed == 0
        assert len(result.points) == 4
        with open(checkpoint.path, "r", encoding="utf-8") as handle:
            lines = [json.loads(l) for l in handle if l.strip()]
        assert len(lines) == 4
        keys = [line["case"]["key"] for line in lines]
        assert len(set(keys)) == 4

    def test_rerun_restores_instead_of_rerunning(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        first = sweep(self.GRID, _case, seeds=[0, 1], checkpoint=checkpoint)
        second = sweep(self.GRID, _case, seeds=[0, 1], checkpoint=checkpoint)
        assert second.resumed == 4
        assert [p.params for p in second.points] == [
            p.params for p in first.points
        ]
        assert [p.result.total_steps for p in second.points] == [
            p.result.total_steps for p in first.points
        ]
        assert [p.result.telemetry for p in second.points] == [
            p.result.telemetry for p in first.points
        ]
        # No new lines were appended by the resumed run.
        with open(checkpoint.path, "r", encoding="utf-8") as handle:
            assert sum(1 for l in handle if l.strip()) == 4

    def test_grown_sweep_runs_only_the_new_points(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        sweep(self.GRID[:1], _case, seeds=[0, 1], checkpoint=checkpoint)
        grown = sweep(self.GRID, _case, seeds=[0, 1], checkpoint=checkpoint)
        assert grown.resumed == 2
        assert len(grown.points) == 4
        with open(checkpoint.path, "r", encoding="utf-8") as handle:
            assert sum(1 for l in handle if l.strip()) == 4

    def test_torn_trailing_line_is_recovered(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        sweep(self.GRID, _case, seeds=[0, 1], checkpoint=checkpoint)
        with open(checkpoint.path, "a", encoding="utf-8") as handle:
            handle.write('{"schema_version": 1, "comman')  # torn write
        result = sweep(self.GRID, _case, seeds=[0, 1], checkpoint=checkpoint)
        assert result.resumed == 4
        assert len(checkpoint.errors) == 1
        assert "ck.jsonl" in checkpoint.errors[0]

    def test_missing_file_means_fresh_sweep(self, tmp_path):
        checkpoint = SweepCheckpoint(str(tmp_path / "never-written.jsonl"))
        assert checkpoint.restore() == {}
        result = sweep(self.GRID, _case, seeds=[0], checkpoint=checkpoint)
        assert result.resumed == 0
        assert len(result.points) == 2

    def test_sweep_without_checkpoint_is_unchanged(self):
        plain = sweep(self.GRID, _case, seeds=[0])
        assert plain.resumed == 0
        assert len(plain.points) == 2


@pytest.mark.slow
class TestCheckpointWithCrashes:
    def test_killed_worker_sweep_checkpoints_each_spec_once(self, tmp_path):
        sentinel = str(tmp_path / "crashed")

        def crashy_case(params):
            return (
                partial(_crashy_problem, sentinel, params["n"], params["k"]),
                RestrictedPriorityPolicy,
            )

        checkpoint = SweepCheckpoint(str(tmp_path / "ck.jsonl"))
        executor = ParallelExecutor(workers=2, retries=2, backoff=0)
        result = sweep(
            [{"n": 4, "k": 8}],
            crashy_case,
            seeds=[0, 1, 2, 3],
            executor=executor,
            checkpoint=checkpoint,
        )
        assert len(result.points) == 4
        assert result.degraded
        with open(checkpoint.path, "r", encoding="utf-8") as handle:
            lines = [json.loads(l) for l in handle if l.strip()]
        keys = [line["case"]["key"] for line in lines]
        assert len(keys) == 4
        assert len(set(keys)) == 4


@pytest.mark.slow
class TestKilledSweepResume:
    """SIGKILL the sweeping *process* mid-chunk; the checkpoint alone
    must carry the resume — no completed case re-runs, no key appends
    twice."""

    # The child imports this very module so its factory qualnames (and
    # therefore its spec keys) match the resuming parent's exactly.
    CHILD = """\
from repro.analysis.checkpoint import SweepCheckpoint
from repro.analysis.runner import sweep
from tests.analysis.test_recovery import TestKilledSweepResume, _case

sweep(
    TestKilledSweepResume.GRID,
    _case,
    seeds=[0, 1, 2, 3],
    checkpoint=SweepCheckpoint({path!r}),
)
"""

    GRID = [{"n": 10, "k": 60}, {"n": 10, "k": 80}]

    def test_sigkilled_sweep_resumes_without_reruns(self, tmp_path):
        import signal
        import subprocess
        import sys

        repo_root = os.path.dirname(
            os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.pathsep.join(
            part
            for part in (
                repo_root,
                os.path.join(repo_root, "src"),
                env.get("PYTHONPATH", ""),
            )
            if part
        )
        path = str(tmp_path / "ck.jsonl")
        child = subprocess.Popen(
            [sys.executable, "-c", self.CHILD.format(path=path)],
            env=env,
            cwd=repo_root,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

        def checkpointed():
            if not os.path.exists(path):
                return 0
            with open(path, "r", encoding="utf-8") as handle:
                return sum(1 for line in handle if line.strip())

        try:
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                if checkpointed() >= 2 or child.poll() is not None:
                    break
                time.sleep(0.005)
            if child.poll() is None:
                child.send_signal(signal.SIGKILL)
            child.wait(timeout=30)
        finally:
            if child.poll() is None:
                child.kill()
                child.wait()

        survived = checkpointed()
        assert survived >= 2

        checkpoint = SweepCheckpoint(path)
        resumed = sweep(
            self.GRID, _case, seeds=[0, 1, 2, 3], checkpoint=checkpoint
        )
        assert resumed.resumed >= 2
        assert len(resumed.points) == 8

        clean = sweep(self.GRID, _case, seeds=[0, 1, 2, 3])
        # Restored points are summary-level; strip the fresh ones to
        # the same diet before comparing.
        from repro.campaign.results import summary_result

        assert [summary_result(p.result) for p in resumed.points] == [
            summary_result(p.result) for p in clean.points
        ]
        assert [p.params for p in resumed.points] == [
            p.params for p in clean.points
        ]

        # Every case checkpointed exactly once across both processes
        # (a torn tail from the kill parses to nothing and is rewritten).
        with open(path, "r", encoding="utf-8") as handle:
            keys = []
            for line in handle:
                try:
                    keys.append(json.loads(line)["case"]["key"])
                except (ValueError, KeyError, TypeError):
                    continue
        assert len(keys) == 8
        assert len(set(keys)) == 8
