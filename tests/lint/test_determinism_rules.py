"""Every shipped rule fires on the dirty fixtures and is silenced by
its ``# repro: noqa[RULE]`` twin — the firing/suppression pair contract
from the linter's spec."""

import os

import pytest

from repro.lint import (
    ALL_RULE_FAMILIES,
    DETERMINISM_RULES,
    Severity,
    all_rules,
    lint_file,
)
from repro.lint.context import ModuleContext, domain_of, module_name_for
from repro.lint.runner import lint_source
from repro.lint.suppressions import is_suppressed, parse_noqa

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures", "dirtypkg")


def fixture(*parts):
    return os.path.join(FIXTURES, *parts)


def findings_for(path):
    return lint_file(path)


def rules_hit(findings):
    return {f.rule_id for f in findings}


class TestFixtureModuleIdentity:
    def test_fixture_resolves_into_core_domain(self):
        module = module_name_for(fixture("core", "step_loop.py"))
        assert module == "dirtypkg.core.step_loop"
        assert domain_of(module) == "core"

    def test_real_engine_resolves_into_core_domain(self):
        module = module_name_for(
            os.path.join("src", "repro", "core", "engine.py")
        )
        assert module == "repro.core.engine"
        assert domain_of(module) == "core"


class TestUnseededRandom:
    def test_fires_on_every_global_stream_pattern(self):
        findings = findings_for(fixture("workloads", "gen.py"))
        assert rules_hit(findings) == {"DET101"}
        messages = "\n".join(f.message for f in findings)
        assert "random.shuffle" in messages
        assert "random.seed" in messages
        assert "numpy.random" in messages
        assert "OS entropy" in messages
        # shuffle() via from-import resolves back to random.shuffle and
        # is among the five findings (direct call, seed, from-import,
        # Random(), numpy) — the suppressed random.random() is not.
        assert len(findings) == 5

    def test_suppressed_twin_is_silent(self):
        findings = findings_for(fixture("workloads", "gen.py"))
        assert not any("random.random()" in f.message for f in findings)

    def test_seeded_random_is_clean_for_det101(self):
        # DET101 accepts any explicit seed; the stricter DET2xx family
        # now flags both the raw construction (DET201) and the
        # module-global storage (DET202).
        _, findings = lint_source(
            "import random\nrng = random.Random(7)\nrng.shuffle([])\n",
            fixture("workloads", "seeded.py"),
        )
        assert rules_hit(findings) == {"DET201", "DET202"}
        _, inside = lint_source(
            "import random\n"
            "def f():\n"
            "    rng = random.Random(7)\n"
            "    return rng.shuffle([])\n",
            fixture("workloads", "seeded.py"),
        )
        assert rules_hit(inside) == {"DET201"}

    def test_core_rng_module_is_exempt(self):
        assert findings_for(fixture("core", "rng.py")) == []

    def test_local_variable_named_random_is_not_confused(self):
        _, findings = lint_source(
            "def f(random):\n    return random.shuffle([])\n",
            fixture("workloads", "shadow.py"),
        )
        assert findings == []


class TestSetIteration:
    def test_fires_on_loop_comprehension_and_tracked_name(self):
        findings = [
            f
            for f in findings_for(fixture("core", "step_loop.py"))
            if f.rule_id == "DET102"
        ]
        # set() loop, set-literal comprehension, tracked name; the
        # noqa'd loop is absent.
        assert len(findings) == 3

    def test_out_of_domain_module_is_ignored(self):
        _, findings = lint_source(
            "for x in set([1]):\n    pass\n",
            fixture("workloads", "free.py"),
        )
        assert findings == []

    def test_dynamic_domain_is_policed(self):
        findings = [
            f
            for f in findings_for(fixture("dynamic", "traffic_loop.py"))
            if f.rule_id == "DET102"
        ]
        # The set() loop fires; its noqa'd twin is absent.
        assert len(findings) == 1

    def test_sorted_set_is_clean(self):
        _, findings = lint_source(
            "for x in sorted(set([1])):\n    pass\n",
            fixture("core", "sorted_ok.py"),
        )
        assert findings == []


class TestEnvBranching:
    def test_fires_on_environ_and_getenv(self):
        findings = [
            f
            for f in findings_for(fixture("core", "step_loop.py"))
            if f.rule_id == "DET103"
        ]
        assert len(findings) == 2
        assert any("os.environ" in f.message for f in findings)
        assert any("os.getenv" in f.message for f in findings)

    def test_harness_layers_may_read_env(self):
        _, findings = lint_source(
            "import os\nWORKERS = os.environ.get('W', '1')\n",
            fixture("analysis", "harness.py"),
        )
        assert findings == []

    def test_dynamic_domain_is_policed(self):
        findings = [
            f
            for f in findings_for(fixture("dynamic", "traffic_loop.py"))
            if f.rule_id == "DET103"
        ]
        assert len(findings) == 1
        assert "os.getenv" in findings[0].message


class TestFloatEquality:
    def test_fires_on_each_float_shape(self):
        findings = findings_for(fixture("potential", "energy.py"))
        assert rules_hit(findings) == {"DET104"}
        # literal, division, math.sqrt, float() — noqa'd 1.5 excluded.
        assert len(findings) == 4

    def test_integer_comparison_is_clean(self):
        _, findings = lint_source(
            "def f(k):\n    return k == 0\n",
            fixture("potential", "ints.py"),
        )
        assert findings == []

    def test_only_potential_domain_is_policed(self):
        _, findings = lint_source(
            "x = 1.0 == 2.0\n", fixture("core", "floaty.py")
        )
        assert findings == []


class TestIterationMutation:
    def test_fires_on_del_remove_and_subscript_assign(self):
        findings = [
            f
            for f in findings_for(fixture("core", "step_loop.py"))
            if f.rule_id == "DET105"
        ]
        assert len(findings) == 3
        descriptions = "\n".join(f.message for f in findings)
        assert "del" in descriptions
        assert ".remove()" in descriptions
        assert "subscript assignment" in descriptions

    def test_snapshot_iteration_is_clean(self):
        assert findings_for(fixture("core", "clean.py")) == []

    def test_mutating_a_different_container_is_clean(self):
        _, findings = lint_source(
            "def f(a, b):\n"
            "    for x in a:\n"
            "        b.append(x)\n",
            fixture("core", "other.py"),
        )
        assert findings == []


class TestWallClock:
    def test_fires_on_time_and_datetime_now(self):
        findings = [
            f
            for f in findings_for(fixture("core", "step_loop.py"))
            if f.rule_id == "DET106"
        ]
        assert len(findings) == 2
        assert all(f.severity is Severity.WARNING for f in findings)

    def test_benchmark_layer_may_time(self):
        _, findings = lint_source(
            "import time\nt0 = time.perf_counter()\n",
            fixture("benchmarks", "bench.py"),
        )
        assert findings == []

    def test_obs_domain_is_policed(self):
        findings = [
            f
            for f in findings_for(fixture("obs", "reporting.py"))
            if f.rule_id == "DET106"
        ]
        # monotonic + datetime.now fire; the noqa'd twin is absent.
        assert len(findings) == 2
        messages = "\n".join(f.message for f in findings)
        assert "time.monotonic" in messages
        assert "datetime.datetime.now" in messages

    def test_obs_clock_module_is_exempt(self):
        assert findings_for(fixture("obs", "clock.py")) == []

    def test_real_obs_clock_resolves_into_obs_domain(self):
        module = module_name_for(
            os.path.join("src", "repro", "obs", "clock.py")
        )
        assert module == "repro.obs.clock"
        assert domain_of(module) == "obs"


class TestFaultsDomain:
    """The fault layer is policed like engine code: schedules are
    declarative data, so entropy and wall-clock reads are violations."""

    def test_fixture_resolves_into_faults_domain(self):
        module = module_name_for(fixture("faults", "chaos_schedule.py"))
        assert module == "dirtypkg.faults.chaos_schedule"
        assert domain_of(module) == "faults"

    def test_real_faults_package_resolves_into_faults_domain(self):
        module = module_name_for(
            os.path.join("src", "repro", "faults", "schedule.py")
        )
        assert module == "repro.faults.schedule"
        assert domain_of(module) == "faults"

    def test_det101_and_det106_fire_and_their_twins_are_silent(self):
        findings = findings_for(fixture("faults", "chaos_schedule.py"))
        assert rules_hit(findings) == {"DET101", "DET106"}
        assert len([f for f in findings if f.rule_id == "DET101"]) == 1
        assert len([f for f in findings if f.rule_id == "DET106"]) == 1

    def test_stripping_noqa_doubles_the_findings(self):
        path = fixture("faults", "chaos_schedule.py")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        stripped = source.replace("# repro: noqa", "# stripped")
        _, findings = lint_source(stripped, path)
        assert len([f for f in findings if f.rule_id == "DET101"]) == 2
        assert len([f for f in findings if f.rule_id == "DET106"]) == 2


class TestCampaignDomain:
    """The campaign orchestrator is policed like engine code: worker
    randomness flows from seeds, backoff and event timestamps route
    through ``repro.obs.clock``, and ``run_batch`` payloads pickle."""

    def test_fixture_resolves_into_campaign_domain(self):
        module = module_name_for(fixture("campaign", "dispatch.py"))
        assert module == "dirtypkg.campaign.dispatch"
        assert domain_of(module) == "campaign"

    def test_real_campaign_package_resolves_into_campaign_domain(self):
        module = module_name_for(
            os.path.join("src", "repro", "campaign", "pool.py")
        )
        assert module == "repro.campaign.pool"
        assert domain_of(module) == "campaign"

    def test_det101_and_det106_fire_and_their_twins_are_silent(self):
        findings = findings_for(fixture("campaign", "dispatch.py"))
        # The fixture also carries the run_batch payload vectors
        # (PAR501/PAR502) exercised by tests/lint/test_parallel_rules.
        assert rules_hit(findings) == {
            "DET101",
            "DET106",
            "PAR501",
            "PAR502",
        }
        assert len([f for f in findings if f.rule_id == "DET101"]) == 1
        assert len([f for f in findings if f.rule_id == "DET106"]) == 1

    def test_stripping_noqa_doubles_the_findings(self):
        path = fixture("campaign", "dispatch.py")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        stripped = source.replace("# repro: noqa", "# stripped")
        _, findings = lint_source(stripped, path)
        assert len([f for f in findings if f.rule_id == "DET101"]) == 2
        assert len([f for f in findings if f.rule_id == "DET106"]) == 2
        assert len([f for f in findings if f.rule_id == "PAR501"]) == 2


class TestSoaDomain:
    """The array kernel is core code: its bit-identity contract makes
    unseeded randomness and set-order iteration exactly as fatal as in
    the object kernel, so DET101/DET102 must police it too."""

    def test_fixture_resolves_into_core_domain(self):
        module = module_name_for(fixture("core", "soa", "kernel.py"))
        assert module == "dirtypkg.core.soa.kernel"
        assert domain_of(module) == "core"

    def test_real_soa_package_resolves_into_core_domain(self):
        module = module_name_for(
            os.path.join("src", "repro", "core", "soa", "kernel.py")
        )
        assert module == "repro.core.soa.kernel"
        assert domain_of(module) == "core"

    def test_det101_and_det102_fire_and_their_twins_are_silent(self):
        findings = findings_for(fixture("core", "soa", "kernel.py"))
        # The fixture also carries the SoaKernel vectors for the
        # project-wide families: a vectorized RNG draw (DET203) and a
        # missing columnar twin (KER303).
        assert rules_hit(findings) == {
            "DET101",
            "DET102",
            "DET203",
            "KER303",
        }
        assert len([f for f in findings if f.rule_id == "DET101"]) == 1
        assert len([f for f in findings if f.rule_id == "DET102"]) == 1
        assert len([f for f in findings if f.rule_id == "DET203"]) == 1
        messages = "\n".join(f.message for f in findings)
        assert "numpy.random" in messages

    def test_stripping_noqa_doubles_the_findings(self):
        path = fixture("core", "soa", "kernel.py")
        with open(path, "r", encoding="utf-8") as handle:
            source = handle.read()
        stripped = source.replace("# repro: noqa", "# stripped")
        _, findings = lint_source(stripped, path)
        assert len([f for f in findings if f.rule_id == "DET101"]) == 2
        assert len([f for f in findings if f.rule_id == "DET102"]) == 2
        assert len([f for f in findings if f.rule_id == "DET203"]) == 2


class TestSuppressionSyntax:
    def test_bare_noqa_silences_all_rules(self):
        assert is_suppressed("x = 1  # repro: noqa", "DET101")
        assert is_suppressed("x = 1  # repro: noqa", "DET105")

    def test_bracketed_noqa_is_rule_specific(self):
        line = "x = 1  # repro: noqa[DET101, DET104]"
        assert is_suppressed(line, "DET101")
        assert is_suppressed(line, "det104")
        assert not is_suppressed(line, "DET102")

    def test_empty_bracket_list_suppresses_nothing(self):
        assert not is_suppressed("x = 1  # repro: noqa[]", "DET101")

    def test_unmarked_line(self):
        assert parse_noqa("x = 1  # plain comment") is None

    def test_plain_flake8_noqa_is_not_ours(self):
        assert parse_noqa("import x  # noqa: F401") is None


class TestRegistry:
    def test_all_shipped_rules_registered(self):
        expected = tuple(
            rule_id
            for family in ALL_RULE_FAMILIES
            for rule_id in family
        )
        assert tuple(r.id for r in all_rules()) == expected

    def test_every_det1xx_rule_fires_somewhere_in_the_fixtures(self):
        # The newer families have their own fixture/coverage tests; this
        # one guards the original determinism family end to end.
        hit = set()
        for name in (
            ("core", "step_loop.py"),
            ("workloads", "gen.py"),
            ("potential", "energy.py"),
        ):
            hit |= rules_hit(findings_for(fixture(*name)))
        assert set(DETERMINISM_RULES) <= hit

    @pytest.mark.parametrize("rule_id", DETERMINISM_RULES)
    def test_every_rule_has_a_working_suppression(self, rule_id):
        """Strip the fixtures' noqa comments and the finding count for
        the rule must grow — proving each noqa actually suppressed one."""
        for name in (
            ("core", "step_loop.py"),
            ("workloads", "gen.py"),
            ("potential", "energy.py"),
        ):
            path = fixture(*name)
            with open(path, "r", encoding="utf-8") as handle:
                source = handle.read()
            with_noqa = [
                f for f in lint_file(path) if f.rule_id == rule_id
            ]
            stripped = source.replace("# repro: noqa", "# stripped")
            _, without_noqa = lint_source(stripped, path)
            without_noqa = [
                f for f in without_noqa if f.rule_id == rule_id
            ]
            if len(without_noqa) > len(with_noqa):
                return  # found the suppressed twin
        pytest.fail(f"no suppressed twin exercised for {rule_id}")


class TestModuleContext:
    def test_import_alias_resolution(self):
        context = ModuleContext(
            fixture("core", "alias.py"),
            "import time as t\nfrom datetime import datetime as dt\n",
        )
        import ast

        tree = ast.parse("t.monotonic()\ndt.now()\n")
        calls = [n for n in ast.walk(tree) if isinstance(n, ast.Call)]
        resolved = {context.imports.resolve(c.func) for c in calls}
        assert resolved == {"time.monotonic", "datetime.datetime.now"}

    def test_relative_imports_do_not_resolve(self):
        context = ModuleContext(
            fixture("core", "rel.py"), "from . import sibling\n"
        )
        import ast

        node = ast.parse("sibling.thing()").body[0].value.func
        assert context.imports.resolve(node) is None
