"""Dirty fault-schedule module: DET101/DET106 vectors for the
``faults`` domain (never run).

The real ``repro.faults`` package is pure data + masking: schedules
are fixed before the run and never touch entropy or the wall clock at
simulation time.  These are exactly the violations that would break
that contract.
"""

import random
import time


def improvised_schedule(mesh):
    # DET101 fire: module-level random stream picks the failed link.
    victim = random.choice(list(mesh.nodes()))
    # DET101 suppressed twin.
    backup = random.choice(list(mesh.nodes()))  # repro: noqa[DET101]
    return victim, backup


def stamp_fault_event(event):
    # DET106 fire: wall-clock read inside fault bookkeeping.
    event["observed_at"] = time.time()
    # DET106 suppressed twin.
    event["logged_at"] = time.time()  # repro: noqa[DET106]
    return event
