"""Dirty workload generator: DET101 vectors (never run)."""

import random

import numpy as np
from random import shuffle


def scramble(nodes):
    # DET101 fire: module-level random.* call (hidden global stream).
    random.shuffle(nodes)
    # DET101 fire: global seeding couples unrelated components.
    random.seed(42)
    # DET101 fire: from-import of a module-level function.
    shuffle(nodes)
    # DET101 fire: unseeded Random() draws OS entropy.
    rng = random.Random()
    # DET101 fire: numpy.random global state.
    noise = np.random.random(len(nodes))
    # DET101 suppressed twin.
    jitter = random.random()  # repro: noqa[DET101]
    # Clean for DET101 (explicitly seeded), but DET201 wants the
    # factory — suppressed here because this file is the DET101 vector.
    good = random.Random(7)  # repro: noqa[DET201]
    return nodes, rng, noise, jitter, good
