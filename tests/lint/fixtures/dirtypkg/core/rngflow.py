"""Dirty RNG-dataflow module: DET201/DET202 vectors (never run).

The sanctioned pattern threads ``make_rng(seed)`` / ``spawn(rng, key)``
values through run state; these are the escapes the dataflow rules
catch — raw seeded construction (the seed-derivation scheme forks) and
module-global storage (two runs share one stream).
"""

import random

from dirtypkg.core.rng import make_rng

# DET202 fire: an RNG in a module global is cross-run shared state.
SHARED = make_rng(7)
# DET202 suppressed twin.
FALLBACK = make_rng(0)  # repro: noqa[DET202]


def fresh_stream(seed):
    # DET201 fire: seeded construction outside the sanctioned factory.
    rng = random.Random(seed)
    # DET201 suppressed twin.
    other = random.Random(seed + 1)  # repro: noqa[DET201]
    return rng, other


def os_entropy():
    # DET201 fire: SystemRandom can never replay, seed or not.
    return random.SystemRandom()


def publish(seed):
    # DET202 fire: publishing through a ``global`` statement is the
    # same shared state with extra steps.
    global CURRENT
    CURRENT = make_rng(seed)
    return CURRENT
