"""Dirty step-loop: DET102/DET103/DET105/DET106 vectors (never run)."""

import os
import time
from datetime import datetime


def visit_nodes(occupied, loads):
    # DET102 fire: for-loop over a set() call.
    for node in set(occupied):
        loads[node] = loads.get(node, 0) + 1
    # DET102 fire: comprehension over a set literal.
    order = [n for n in {1, 2, 3}]
    # DET102 suppressed twin.
    for node in set(occupied):  # repro: noqa[DET102]
        order.append(node)
    # DET102 fire: name assigned a set display, iterated later.
    frontier = {0}
    for node in frontier:
        order.append(node)
    return order


def env_dependent_budget(default):
    # DET103 fire: os.environ read in engine code.
    if os.environ.get("FAST"):
        return default // 2
    # DET103 fire: os.getenv call.
    extra = os.getenv("BUDGET", "0")
    # DET103 suppressed twin.
    debug = os.environ.get("DEBUG")  # repro: noqa[DET103]
    return default + int(extra) + (1 if debug else 0)


def drain(queues, packets):
    # DET105 fire: dict mutated (del) while iterating .items().
    for node, queue in queues.items():
        if not queue:
            del queues[node]
    # DET105 fire: list .remove while iterating it.
    for packet in packets:
        if packet is None:
            packets.remove(packet)
    # DET105 fire: subscript assignment while iterating the dict.
    for node in queues:
        queues[node + 1] = []
    # DET105 suppressed twin.
    for node in queues:
        queues.pop(node)  # repro: noqa[DET105]
        break
    return queues, packets


def stamp_step(record):
    # DET106 fire: wall-clock read in engine code.
    record["wall"] = time.time()
    # DET106 fire: datetime.now().
    record["at"] = datetime.now()
    # DET106 suppressed twin.
    record["t0"] = time.perf_counter()  # repro: noqa[DET106]
    return record
