"""Dirty engine module: SNP701 vectors (never run).

The module path ``dirtypkg/core/engine.py`` resolves to
``dirtypkg.core.engine``, which matches the snapshot registry's
``core.engine`` suffix — so the ``HotPotatoEngine`` class below is
held to the same snapshot-coverage contract as the real one, without
this file ever being imported.
"""


class HotPotatoEngine:
    # SNP701 fire: a class-level mutable declaration the snapshot
    # registry has no verdict for — a resumed run silently resets it.
    retry_budget: int = 3

    # Clean: upper-case class constants are code, not state.
    MAX_WARMUP = 16

    def __init__(self, problem, policy):
        # Clean: both appear in the registry (packets in fields,
        # policy in derived).
        self.packets = []
        self.policy = policy
        # SNP701 fire: mutable run state assigned in __init__ but
        # absent from both the fields and the derived sets.
        self._mystery_cache = {}
        # SNP701 suppressed twin: same construct, reviewed and waived.
        self._audited_cache = {}  # repro: noqa[SNP701]

    def step(self):
        # SNP701 fire: state can appear first via augmented
        # assignment deep inside a method, not just in __init__.
        self._drift_total += 1


class UnregisteredHelper:
    # Clean: the registry has no spec for this class, so SNP701 has
    # no contract to enforce here.
    def __init__(self):
        self.scratch = []
