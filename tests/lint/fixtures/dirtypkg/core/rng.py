"""Exemption vector: this module is ``<pkg>.core.rng``, the one
sanctioned home of raw entropy — DET101 and the DET2xx dataflow rules
must stay silent here."""

import random


def fresh():
    # Would be a DET101 finding anywhere else.
    return random.Random().random() + random.getrandbits(8)


def make_rng(seed):
    # Would be a DET201 finding anywhere else: this module *is* the
    # sanctioned factory the rule points everyone at.
    return random.Random(seed)


def spawn(rng, key):
    return random.Random((rng.random(), key))
