"""Exemption vector: this module is ``<pkg>.core.rng``, the one
sanctioned home of raw entropy — DET101 must stay silent here."""

import random


def fresh():
    # Would be a DET101 finding anywhere else.
    return random.Random().random() + random.getrandbits(8)
