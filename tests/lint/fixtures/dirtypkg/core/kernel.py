"""Dirty kernel-twin module: KER301/KER302 vectors (never run).

This module's dotted name ends in ``core.kernel``, so the phase
contract declared in ``repro.lint.kernelspec`` binds its ``StepKernel``
twins exactly as it binds the real one.  Two twins breach the contract
— one reorders rank behind arc assignment, one drops delivery — and
two obey it (one of them only because its breach is suppressed).
"""

pending = {}


def decide(view):
    return view


class StepKernel:
    def _admit(self, now):
        return now

    def _apply_faults(self, now):
        return now

    def _move_instrumented(self, infos):
        return infos

    def run_lean(self, steps, packet):
        # Clean twin: the full contract in declared order.
        for now in range(steps):
            self._admit(now)
            assignment = decide(now)
            pending[now] = assignment
            packet.hops += 1
            packet.delivered_at = now
        return packet

    def _run_lean_guarded(self, steps, packet):
        # KER301 fire: rank runs after arc assignment — the stored
        # direction cannot have come from this step's decision.
        for now in range(steps):
            self._apply_faults(now)
            self._admit(now)
            pending[now] = packet
            assignment = decide(now)
            packet.hops += 1
            packet.delivered_at = now
        return assignment

    def run_profiled(self, steps, packet):
        # KER302 fire: no delivery bookkeeping in this twin.
        for now in range(steps):
            self._admit(now)
            assignment = decide(now)
            pending[now] = assignment
            packet.hops += 1
        return packet

    def step_instrumented(self, now, packet):
        # Same reordering as the guarded twin, but suppressed — the
        # KER301 pair's silent half.
        self._apply_faults(now)
        self._admit(now)
        pending[now] = packet
        assignment = decide(now)  # repro: noqa[KER301]
        return self._move_instrumented(assignment)
