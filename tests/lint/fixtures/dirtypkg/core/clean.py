"""A fully deterministic module: the linter must report nothing."""

import random


def route_once(packets, rng: random.Random):
    # Seeded-Random draws, sorted iteration, snapshot mutation: all
    # sanctioned patterns.
    order = sorted(set(p for p in packets))
    rng.shuffle(order)
    queues = {node: [] for node in order}
    for node in list(queues):
        if node is None:
            del queues[node]
    return order, queues
