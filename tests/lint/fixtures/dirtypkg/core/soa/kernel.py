"""Dirty array-kernel module: DET101/DET102 vectors for the soa
subpackage (never run).

The real ``repro.core.soa`` draws randomness only through the policy's
sanctioned ``repro.core.rng`` stream and visits rows by integer index,
because its whole contract is bit identity with the object kernel.
These are exactly the violations that would silently break it: numpy's
global RNG diverges from the seeded stream, and set iteration order
would scramble the node visit order the columnar path replays.
"""

import numpy as np


def shuffle_rows(ids):
    # DET101 fire: numpy's global RNG bypasses the sanctioned stream.
    order = np.random.permutation(len(ids))
    # DET101 suppressed twin.
    jitter = np.random.random()  # repro: noqa[DET101]
    return order, jitter


def visit_occupied(rows, out):
    # DET102 fire: set iteration decides the node visit order.
    for node in set(rows):
        out.append(node)
    # DET102 suppressed twin.
    for node in set(rows):  # repro: noqa[DET102]
        out.append(node)
    return out
