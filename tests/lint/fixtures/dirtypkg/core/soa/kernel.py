"""Dirty array-kernel module: DET101/DET102 vectors for the soa
subpackage (never run).

The real ``repro.core.soa`` draws randomness only through the policy's
sanctioned ``repro.core.rng`` stream and visits rows by integer index,
because its whole contract is bit identity with the object kernel.
These are exactly the violations that would silently break it: numpy's
global RNG diverges from the seeded stream, and set iteration order
would scramble the node visit order the columnar path replays.
"""

import numpy as np


def shuffle_rows(ids):
    # DET101 fire: numpy's global RNG bypasses the sanctioned stream.
    order = np.random.permutation(len(ids))
    # DET101 suppressed twin.
    jitter = np.random.random()  # repro: noqa[DET101]
    return order, jitter


def visit_occupied(rows, out):
    # DET102 fire: set iteration decides the node visit order.
    for node in set(rows):
        out.append(node)
    # DET102 suppressed twin.
    for node in set(rows):  # repro: noqa[DET102]
        out.append(node)
    return out


class SoaKernel:
    """Twin of the real array kernel with two contract breaches.

    KER303 fire: the phase contract declares a ``_run_columnar``
    fallback for this class and it is missing — the loop was "renamed"
    without updating the declaration.
    """

    def _run_vectorized(self, steps, packet, pending, ids):
        for now in range(steps):
            # The six contract phases, in declared order, so KER301 and
            # KER302 stay silent while DET203 exercises the RNG pass.
            self._admit_batch(now)
            order = np.argsort(ids, kind="stable")
            pending[now] = order
            hops = hops + 1  # noqa-free: 'hops' increment is the move marker
            packet.delivered_at = now
            # DET203 fire: a policy RNG draw on the vectorized path.
            rng = self.adapter.rng
            winner = rng.choice(ids)
            # DET203 suppressed twin.
            jitter = rng.random()  # repro: noqa[DET203]
        return winner, jitter
