"""Dirty array-determinism module: NPY4xx vectors (never run).

The real soa tree reaches numpy two ways the import map cannot see —
the ``_compat.np`` optional-dependency shim and ``np`` passed as a
function parameter.  These vectors cover both channels plus the plain
imported-module one.
"""

import numpy as np

from dirtypkg.core.soa import _compat


def order_rows(keys):
    # NPY401 fire: default introsort breaks ties by partition order.
    bad = np.argsort(keys)
    # NPY401 suppressed twin.
    tolerated = np.argsort(keys)  # repro: noqa[NPY401]
    # Clean: stable sort is the sanctioned form.
    good = np.argsort(keys, kind="stable")
    return bad, tolerated, good


def compat_entropy(rows):
    xp = _compat.np
    # NPY402 fire: numpy's global RNG through the compat channel,
    # invisible to DET101's import-map resolution.
    noise = xp.random.random(len(rows))
    # NPY402 suppressed twin.
    more = xp.random.random(2)  # repro: noqa[NPY402]
    return noise, more


def total_potential(values, np):
    # NPY403 fire (warning): float summation order is not associative.
    total = np.sum(values)
    # NPY403 suppressed twin.
    rough = np.sum(values)  # repro: noqa[NPY403]
    # Clean: an int() wrap asserts the array is integral, so the
    # reduction is exact in any order.
    exact = int(np.sum(values))
    return total, rough, exact
