"""Stand-in for the real soa ``_compat`` shim (never run).

Exists so ``sorting.py``'s ``from dirtypkg.core.soa import _compat``
mirrors the real tree's optional-numpy plumbing; the linter only ever
parses it.
"""

np = None
