"""A deliberately non-deterministic package: lint test vectors only."""
