"""Dirty potential helpers: DET104 vectors (never run)."""

import math


def converged(phi, prev, k):
    # DET104 fire: exact equality against a float literal.
    if phi == 0.0:
        return True
    # DET104 fire: != on a true-division result.
    if phi / k != prev:
        return False
    # DET104 fire: comparing a math.* float result exactly.
    if math.sqrt(phi) == prev:
        return True
    # DET104 fire: float() cast compared exactly.
    if float(k) == phi:
        return True
    # DET104 suppressed twin.
    if phi == 1.5:  # repro: noqa[DET104]
        return True
    # Clean: integer comparison and isclose are both fine.
    if k == 0:
        return True
    return math.isclose(phi, prev)
