"""Dirty campaign-layer module: DET101/DET106/PAR5xx vectors (never
run).

The real ``repro.campaign`` package is policed like engine code:
worker-side randomness must come from seeds flowing through
``repro.core.rng``, every wall-clock touch (retry backoff, event
timestamps) must route through ``repro.obs.clock``, and anything
handed to ``WorkerPool.run_batch`` crosses the pickle boundary.
"""

import random
import time


def jittered_backoff(attempt):
    # DET101 fire: module-level random stream decides retry timing.
    delay = random.uniform(0, 2**attempt)
    # DET101 suppressed twin.
    extra = random.uniform(0, 1)  # repro: noqa[DET101]
    return delay + extra


def stamp_event(event):
    # DET106 fire: wall-clock read outside obs.clock in the campaign
    # domain (event timestamps must use utc_now_iso).
    event["created_at"] = time.time()
    # DET106 suppressed twin.
    event["acked_at"] = time.time()  # repro: noqa[DET106]
    return event


def dispatch(pool, specs):
    # PAR501 fire: a lambda handed to the campaign pool would
    # pickle-fail inside a worker.
    doomed = pool.run_batch(specs, lambda chunk: list(chunk))
    # PAR501 suppressed twin.
    waved = pool.run_batch(specs, lambda chunk: list(chunk))  # repro: noqa[PAR501]

    def local_chunk_fn(chunk):
        return list(chunk)

    # PAR502 fire: a locally-defined chunk function pickles by a
    # <locals> qualname no worker can resolve.
    nested = pool.run_batch(specs, local_chunk_fn)

    def local_hook(index, result):
        return None

    # Clean: on_result stays in the parent process and never pickles,
    # so a local callback is fine.
    hooked = pool.run_batch(specs, module_chunk_fn, on_result=local_hook)
    return doomed, waved, nested, hooked


def module_chunk_fn(chunk):
    return list(chunk)
