"""Dirty dynamic-layer loop: DET102/DET103 vectors (never run)."""

import os


def drain_sources(active, order):
    # DET102 fire: for-loop over a set() call in the dynamic domain.
    for node in set(active):
        order.append(node)
    # DET102 suppressed twin.
    for node in set(active):  # repro: noqa[DET102]
        order.append(node)
    return order


def injection_budget(default):
    # DET103 fire: os.getenv call in the dynamic domain.
    extra = os.getenv("INJECT_BUDGET", "0")
    # DET103 suppressed twin.
    debug = os.environ.get("DEBUG")  # repro: noqa[DET103]
    return default + int(extra) + (1 if debug else 0)
