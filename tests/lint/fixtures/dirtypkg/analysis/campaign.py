"""Dirty parallel-payload module: PAR5xx vectors (never run).

``CaseSpec`` factories and executor payloads cross a process boundary;
everything here would pickle-fail deep inside a pool worker, which is
exactly why the rules move the failure to lint time.
"""

from functools import partial

from dirtypkg.analysis.runner import CaseSpec


def module_level_problem():
    return None


def build_specs(seed):
    # PAR501 fire: inline lambda payload.
    direct = CaseSpec(problem_factory=lambda: None, seed=seed)
    # PAR501 suppressed twin.
    waved = CaseSpec(problem_factory=lambda: None, seed=seed)  # repro: noqa[PAR501]

    make_policy = lambda: None
    # PAR501 fire: lambda smuggled through a local name.
    named = CaseSpec(policy_factory=make_policy, seed=seed)

    def local_problem():
        return None

    # PAR502 fire: locally-defined callable pickles by a <locals>
    # qualname no pool worker can resolve.
    nested = CaseSpec(problem_factory=local_problem, seed=seed)
    # PAR502 suppressed twin.
    again = CaseSpec(problem_factory=local_problem, seed=seed)  # repro: noqa[PAR502]

    # Clean: module-level functions and partials over them pickle by
    # qualified name.
    good = CaseSpec(problem_factory=module_level_problem, seed=seed)
    wrapped = CaseSpec(
        problem_factory=partial(module_level_problem), seed=seed
    )
    return direct, waved, named, nested, again, good, wrapped


def enqueue(executor, payload):
    # PAR501 fire: executor submission is the same boundary.
    executor.submit(lambda: payload)
    # PAR502 fire via partial: partial over a local def does not help.
    def local_step():
        return payload

    executor.submit(partial(local_step, payload))
    return executor
