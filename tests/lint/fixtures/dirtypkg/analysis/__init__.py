"""Dirty analysis fixture subpackage (never imported, only parsed)."""
