"""Dirty observability-layer module: DET106 vectors (never run).

The obs domain is policed like engine code — any timestamp must come
from ``obs.clock``, never from a direct ``time.*``/``datetime.now``
read.
"""

import time
from datetime import datetime


def stamp_record(record):
    # DET106 fire: direct monotonic read in the obs domain.
    record["elapsed"] = time.monotonic()
    # DET106 fire: datetime.now capture in the obs domain.
    record["created"] = datetime.now()
    return record


def stamp_record_sanctioned(record):
    # DET106 suppressed twin.
    record["elapsed"] = time.monotonic()  # repro: noqa[DET106]
    return record
