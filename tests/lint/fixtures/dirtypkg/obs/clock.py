"""Exemption vector: this module is ``<pkg>.obs.clock``, the one
sanctioned home of wall-clock reads — DET106 must stay silent here,
exactly as DET101 stays silent in ``core.rng``."""

import time
from datetime import datetime, timezone


def perf_ns():
    # Would be a DET106 finding anywhere else in the obs domain.
    return time.perf_counter_ns()


def utc_now_iso():
    return datetime.now(timezone.utc).isoformat()
