"""Dirty obs module: OBS601/OBS602 vectors (never run).

Metrics must be owned by a :class:`MetricRegistry` — get-or-create by
name, kind-checked, mergeable — and obs modules must take timestamps
from ``obs.clock`` rather than importing the clock modules themselves.
"""

# OBS602 fire: obs module imports time directly.
import time

# OBS602 fire: from-import of datetime is the aliasing hole DET106
# call resolution cannot see.
from datetime import datetime as dt

# OBS602 suppressed twin.
import time as quiet_time  # repro: noqa[OBS602]

from collections import Counter as TagCounter

from repro.obs.metrics import Counter, Gauge, MetricRegistry


def free_floating_counter():
    # OBS601 fire: constructed outside any registry, so snapshots and
    # campaign merges never see it.
    return Counter("repro_orphan_total", "never exported")


def free_floating_gauge():
    # OBS601 fire: same bypass through the Gauge class.
    return Gauge("repro_orphan_peak", "never exported")


def registry_owned():
    # Clean: the registry factory is the sanctioned construction site.
    registry = MetricRegistry()
    return registry.counter("repro_owned_total", "exported")


def stdlib_counter(tags):
    # Clean: collections.Counter resolves outside obs.metrics.
    return TagCounter(tags)


def suppressed_bypass():
    # OBS601 suppressed twin.
    return Counter("repro_quiet_total", "quiet")  # repro: noqa[OBS601]


def suppressed_stamp():
    # OBS602-suppressed modules still exercise DET106 at the call site.
    return time.monotonic(), dt.now()  # repro: noqa[DET106]
