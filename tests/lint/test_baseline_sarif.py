"""Baseline ratchet and SARIF rendering: fingerprints, round-trips,
strict-new CI semantics, schema shape."""

import io
import json
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint import lint_paths
from repro.lint.baseline import (
    BASELINE_VERSION,
    Baseline,
    load_baseline,
    normalize_path,
    write_baseline,
)

DIRTY = {
    "pkg/mod.py": """\
    import random

    def first(seed):
        rng = random.Random(seed)
        return rng

    def second(seed):
        rng = random.Random(seed)
        return rng
    """,
}


def run_cli(*argv):
    stdout = io.StringIO()
    real = sys.stdout
    sys.stdout = stdout
    try:
        code = repro_main(["lint", *argv])
    finally:
        sys.stdout = real
    return code, stdout.getvalue()


class TestFingerprints:
    def test_identical_lines_get_distinct_fingerprints(
        self, write_tree
    ):
        report = lint_paths([write_tree(dict(DIRTY))])
        assert len(report.findings) == 2
        prints = [report.fingerprints[f] for f in report.findings]
        assert len(set(prints)) == 2

    def test_fingerprints_survive_line_shifts(self, write_tree):
        base = lint_paths([write_tree(dict(DIRTY))])
        shifted_source = "    # a new header comment\n\n" + DIRTY[
            "pkg/mod.py"
        ]
        shifted = lint_paths(
            [write_tree({"pkg/mod.py": shifted_source})]
        )
        assert [f.line for f in shifted.findings] != [
            f.line for f in base.findings
        ]
        assert sorted(shifted.fingerprints.values()) == sorted(
            base.fingerprints.values()
        )

    def test_normalize_path_uses_forward_slashes(self):
        assert "\\" not in normalize_path("pkg\\mod.py".replace("\\", "/"))
        # Paths outside the working directory stay absolute.
        assert normalize_path("/nowhere/x.py") == "/nowhere/x.py"


class TestBaselineRoundTrip:
    def test_write_load_apply_reaches_zero_findings(
        self, write_tree, tmp_path
    ):
        root = write_tree(dict(DIRTY))
        first = lint_paths([root])
        path = str(tmp_path / "baseline.json")
        write_baseline(path, first.findings, first.fingerprints)

        loaded = load_baseline(path)
        assert len(loaded) == len(first.findings)

        second = lint_paths([root], baseline=loaded)
        assert second.findings == []
        assert len(second.baselined) == len(first.findings)
        assert second.stale_baseline == []
        assert second.exit_code() == 0

    def test_stale_entries_are_reported(self, write_tree):
        root = write_tree(dict(DIRTY))
        stale = Baseline(
            entries={"deadbeef" * 5: {"fingerprint": "deadbeef" * 5}}
        )
        report = lint_paths([root], baseline=stale)
        assert report.stale_baseline == ["deadbeef" * 5]
        assert len(report.findings) == 2  # nothing matched

    def test_payload_shape(self, write_tree, tmp_path):
        root = write_tree(dict(DIRTY))
        report = lint_paths([root])
        path = tmp_path / "baseline.json"
        write_baseline(
            str(path), report.findings, report.fingerprints
        )
        payload = json.loads(path.read_text())
        assert payload["version"] == BASELINE_VERSION
        assert payload["tool"] == "repro-lint"
        assert len(payload["entries"]) == 2
        assert set(payload["entries"][0]) == {
            "fingerprint",
            "rule",
            "path",
            "line",
            "message",
        }

    @pytest.mark.parametrize(
        "content,complaint",
        [
            ("not json at all", "not valid JSON"),
            ("[]", "must be a JSON object"),
            ('{"version": 99, "entries": []}', "version"),
            ('{"version": 1, "entries": 7}', "'entries' must be a list"),
            ('{"version": 1, "entries": [{"rule": "X"}]}', "fingerprint"),
        ],
    )
    def test_malformed_baselines_are_rejected(
        self, tmp_path, content, complaint
    ):
        path = tmp_path / "bad.json"
        path.write_text(content)
        with pytest.raises(ValueError, match=complaint):
            load_baseline(str(path))


class TestStrictNewCli:
    def test_ratchet_lifecycle(self, write_tree, tmp_path):
        root = write_tree(dict(DIRTY))
        baseline = str(tmp_path / "baseline.json")

        code, out = run_cli(root, "--write-baseline", baseline)
        assert code == 0
        assert "2 finding(s) recorded" in out

        code, out = run_cli(root, "--baseline", baseline, "--strict-new")
        assert code == 0
        assert "2 baselined" in out

        # A new violation lands: only it fails, the recorded two stay
        # suppressed, and the text names the baseline split.
        (tmp_path / "pkg" / "fresh.py").write_text(
            "import random\n\nNEW = random.Random(3)\n"
        )
        code, out = run_cli(root, "--baseline", baseline, "--strict-new")
        assert code == 1
        assert "fresh.py" in out
        assert "2 baselined" in out

    def test_fixed_finding_goes_stale(self, write_tree, tmp_path):
        root = write_tree(dict(DIRTY))
        baseline = str(tmp_path / "baseline.json")
        run_cli(root, "--write-baseline", baseline)

        # Fix one of the two recorded findings.
        mod = tmp_path / "pkg" / "mod.py"
        source = mod.read_text().replace(
            "def second(seed):\n    rng = random.Random(seed)",
            "def second(seed):\n    rng = None",
        )
        mod.write_text(source)

        code, out = run_cli(root, "--baseline", baseline)
        assert code == 0
        assert "1 stale baseline entry" in out

    def test_strict_new_without_baseline_file_is_fully_strict(
        self, write_tree, tmp_path, monkeypatch
    ):
        monkeypatch.chdir(tmp_path)
        root = write_tree(dict(DIRTY))
        code, out = run_cli(root, "--strict-new")
        assert code == 1
        assert "2 finding(s)" in out

    def test_explicit_missing_baseline_is_an_error(
        self, write_tree, tmp_path
    ):
        root = write_tree(dict(DIRTY))
        code, out = run_cli(
            root, "--baseline", str(tmp_path / "absent.json")
        )
        assert code == 2
        assert "not found" in out

    def test_malformed_baseline_is_an_error(
        self, write_tree, tmp_path
    ):
        bad = tmp_path / "bad.json"
        bad.write_text("{")
        root = write_tree(dict(DIRTY))
        code, out = run_cli(root, "--baseline", str(bad))
        assert code == 2
        assert "error:" in out


class TestSarif:
    def _document(self, write_tree, *argv):
        root = write_tree(
            {
                **DIRTY,
                "pkg/soa/mod.py": (
                    "def f(values):\n    return values.sum()\n"
                ),
            }
        )
        code, out = run_cli(root, "--format", "sarif", *argv)
        return code, json.loads(out)

    def test_document_shape(self, write_tree):
        code, doc = self._document(write_tree)
        assert code == 1
        assert doc["version"] == "2.1.0"
        assert doc["$schema"].endswith("sarif-schema-2.1.0.json")
        (run,) = doc["runs"]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-lint"
        assert {rule["id"] for rule in driver["rules"]} == {
            "DET201",
            "NPY403",
        }
        assert len(run["results"]) == 3

    def test_levels_map_severities(self, write_tree):
        _, doc = self._document(write_tree)
        levels = {
            result["ruleId"]: result["level"]
            for result in doc["runs"][0]["results"]
        }
        assert levels == {"DET201": "error", "NPY403": "warning"}

    def test_results_carry_physical_locations(self, write_tree):
        _, doc = self._document(write_tree)
        location = doc["runs"][0]["results"][0]["locations"][0]
        physical = location["physicalLocation"]
        assert physical["artifactLocation"]["uri"].endswith(".py")
        assert physical["region"]["startLine"] >= 1

    def test_baselined_findings_are_omitted(
        self, write_tree, tmp_path
    ):
        root = write_tree(dict(DIRTY))
        baseline = str(tmp_path / "baseline.json")
        run_cli(root, "--write-baseline", baseline)
        code, out = run_cli(
            root, "--format", "sarif", "--baseline", baseline
        )
        assert code == 0
        doc = json.loads(out)
        assert doc["runs"][0]["results"] == []
        assert doc["runs"][0]["tool"]["driver"]["rules"] == []


class TestOutputAndJson:
    def test_output_writes_file_and_prints_summary(
        self, write_tree, tmp_path
    ):
        root = write_tree(dict(DIRTY))
        target = tmp_path / "report.sarif"
        code, out = run_cli(
            root, "--format", "sarif", "--output", str(target)
        )
        assert code == 1
        doc = json.loads(target.read_text())
        assert doc["version"] == "2.1.0"
        # stdout still carries the human summary, not the document.
        assert "finding(s)" in out and "$schema" not in out

    def test_json_reports_baseline_partition(
        self, write_tree, tmp_path
    ):
        root = write_tree(dict(DIRTY))
        baseline = str(tmp_path / "baseline.json")
        run_cli(root, "--write-baseline", baseline)
        code, out = run_cli(
            root, "--format", "json", "--baseline", baseline
        )
        assert code == 0
        payload = json.loads(out)
        assert payload["findings"] == []
        assert len(payload["baselined"]) == 2
        assert payload["stale_baseline"] == []
        sample = payload["baselined"][0]
        assert set(sample) == {
            "path",
            "line",
            "col",
            "rule",
            "severity",
            "message",
        }
