"""Runner, report, and CLI behavior: exit codes, formats, filters."""

import io
import json
import os
import subprocess
import sys

import pytest

from repro.cli import main as repro_main
from repro.lint import Severity, lint_paths
from repro.lint.findings import Finding
from repro.lint.runner import LintReport, iter_python_files, select_rules

HERE = os.path.dirname(__file__)
FIXTURES = os.path.join(HERE, "fixtures", "dirtypkg")
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
SRC_REPRO = os.path.join(REPO_ROOT, "src", "repro")


class TestLintPaths:
    def test_repo_source_is_clean(self):
        report = lint_paths([SRC_REPRO])
        assert report.findings == []
        assert report.parse_errors == []
        assert report.files_checked > 70
        assert report.exit_code() == 0

    def test_dirty_fixture_package_fails(self):
        report = lint_paths([FIXTURES])
        assert report.exit_code() == 1
        assert len(report.findings) >= 14  # all six rules, many lines

    def test_findings_are_sorted_and_deterministic(self):
        first = lint_paths([FIXTURES]).findings
        second = lint_paths([FIXTURES]).findings
        assert first == second
        assert first == sorted(first)

    def test_select_restricts_rules(self):
        report = lint_paths([FIXTURES], select=["DET104"])
        assert {f.rule_id for f in report.findings} == {"DET104"}

    def test_ignore_drops_rules(self):
        report = lint_paths([FIXTURES], ignore=["DET104"])
        hit = {f.rule_id for f in report.findings}
        assert "DET104" not in hit and hit  # others still fire

    def test_unknown_select_raises(self):
        with pytest.raises(KeyError):
            select_rules(select=["DET999"])

    def test_parse_error_yields_exit_2(self, tmp_path):
        bad = tmp_path / "broken.py"
        bad.write_text("def f(:\n")
        report = lint_paths([str(bad)])
        assert report.parse_errors and report.exit_code() == 2

    def test_fail_on_error_ignores_warnings(self):
        warning_only = LintReport(
            findings=[
                Finding("x.py", 1, 1, "DET106", Severity.WARNING, "m")
            ],
            files_checked=1,
        )
        assert warning_only.exit_code(Severity.WARNING) == 1
        assert warning_only.exit_code(Severity.ERROR) == 0

    def test_iter_python_files_is_sorted(self, tmp_path):
        for name in ("b.py", "a.py", "c.txt"):
            (tmp_path / name).write_text("")
        sub = tmp_path / "zz"
        sub.mkdir()
        (sub / "d.py").write_text("")
        files = list(iter_python_files([str(tmp_path)]))
        assert [os.path.basename(f) for f in files] == [
            "a.py",
            "b.py",
            "d.py",
        ]


class TestCli:
    def run_cli(self, *argv):
        stdout = io.StringIO()
        real = sys.stdout
        sys.stdout = stdout
        try:
            code = repro_main(["lint", *argv])
        finally:
            sys.stdout = real
        return code, stdout.getvalue()

    def test_clean_tree_exits_zero(self):
        code, out = self.run_cli(SRC_REPRO)
        assert code == 0
        assert "clean" in out

    def test_dirty_tree_exits_nonzero_with_findings(self):
        code, out = self.run_cli(FIXTURES)
        assert code == 1
        assert "DET101" in out and "finding(s)" in out

    def test_json_format_is_machine_readable(self):
        code, out = self.run_cli(FIXTURES, "--format", "json")
        assert code == 1
        payload = json.loads(out)
        assert payload["files_checked"] >= 6
        rules = {f["rule"] for f in payload["findings"]}
        assert "DET104" in rules
        sample = payload["findings"][0]
        assert set(sample) == {
            "path",
            "line",
            "col",
            "rule",
            "severity",
            "message",
        }

    def test_list_rules(self):
        code, out = self.run_cli("--list-rules")
        assert code == 0
        for rule_id in ("DET101", "DET106"):
            assert rule_id in out

    def test_select_filter(self):
        code, out = self.run_cli(FIXTURES, "--select", "DET106")
        assert code == 1
        assert "DET106" in out and "DET101" not in out

    def test_fail_on_error_passes_warning_only_selection(self):
        code, _ = self.run_cli(
            FIXTURES, "--select", "DET106", "--fail-on", "error"
        )
        assert code == 0

    def test_unknown_rule_exits_2(self):
        code, out = self.run_cli(FIXTURES, "--select", "DET999")
        assert code == 2
        assert "unknown rule" in out

    @pytest.mark.slow
    def test_module_invocation_matches_make_lint(self):
        """`python -m repro lint src/repro` is the make-lint command;
        it must exit 0 on the shipped tree and 1 on the fixtures."""
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        clean = subprocess.run(
            [sys.executable, "-m", "repro", "lint", SRC_REPRO],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert clean.returncode == 0, clean.stdout + clean.stderr
        dirty = subprocess.run(
            [sys.executable, "-m", "repro", "lint", FIXTURES],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )
        assert dirty.returncode == 1, dirty.stdout + dirty.stderr
