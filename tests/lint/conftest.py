"""Shared helpers for the lint test suite."""

import textwrap

import pytest


@pytest.fixture
def write_tree(tmp_path):
    """Materialize ``{relpath: source}`` as an importable package tree.

    Every intermediate directory gets an ``__init__.py`` marker so
    :func:`repro.lint.context.module_name_for` infers the dotted module
    names the project rules key on (``pkg/core/soa/kernel.py`` →
    ``pkg.core.soa.kernel``).  Returns the tree root as a string.
    """

    def _write(files):
        for relpath, source in files.items():
            target = tmp_path / relpath
            target.parent.mkdir(parents=True, exist_ok=True)
            directory = target.parent
            while directory != tmp_path:
                marker = directory / "__init__.py"
                if not marker.exists():
                    marker.write_text('"""lint test fixture pkg."""\n')
                directory = directory.parent
            target.write_text(textwrap.dedent(source))
        return str(tmp_path)

    return _write
