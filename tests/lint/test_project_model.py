"""Project model pass: symbol tables, import graph, call resolution,
and the statement-span suppression machinery it feeds."""

import ast
import os

from repro.lint import lint_paths
from repro.lint.context import ModuleContext
from repro.lint.project import ProjectModel, SymbolTable, resolve_call


def _context(write_tree, relpath, source):
    root = write_tree({relpath: source})
    return ModuleContext.from_file(os.path.join(root, relpath))


class TestSymbolTable:
    def test_collects_nested_qualnames(self, write_tree):
        context = _context(
            write_tree,
            "pkg/mod.py",
            """\
            def top(x):
                def inner(y):
                    return y
                return inner

            class Box:
                def method(self):
                    return None

                class Lid:
                    def shut(self):
                        return None
            """,
        )
        table = SymbolTable(context)
        assert set(table.functions) == {
            "top",
            "top.inner",
            "Box.method",
            "Box.Lid.shut",
        }
        assert set(table.classes) == {"Box", "Box.Lid"}
        assert table.top_level_functions() == ("top",)

    def test_module_identity_comes_from_context(self, write_tree):
        context = _context(write_tree, "pkg/core/mod.py", "x = 1\n")
        assert SymbolTable(context).module == "pkg.core.mod"


class TestProjectModel:
    def _model(self, write_tree, files):
        root = write_tree(files)
        contexts = [
            ModuleContext.from_file(os.path.join(root, relpath))
            for relpath in sorted(files)
        ]
        return ProjectModel(contexts)

    def test_import_graph_resolves_from_imports(self, write_tree):
        project = self._model(
            write_tree,
            {
                "pkg/util.py": "def helper(x):\n    return x\n",
                "pkg/main.py": (
                    "from pkg.util import helper\n\n"
                    "def go():\n    return helper(1)\n"
                ),
            },
        )
        assert project.import_graph["pkg.main"] == frozenset(
            {"pkg.util"}
        )
        assert project.import_graph["pkg.util"] == frozenset()
        assert project.importers_of("pkg.util") == ("pkg.main",)

    def test_import_graph_trims_dotted_origins(self, write_tree):
        # ``import pkg.util`` binds the top name; the origin still has
        # to be trimmed right-to-left back onto a linted module.
        project = self._model(
            write_tree,
            {
                "pkg/util.py": "def helper(x):\n    return x\n",
                "pkg/main.py": (
                    "import pkg.util\n\n"
                    "def go():\n    return pkg.util.helper(1)\n"
                ),
            },
        )
        assert project.import_graph["pkg.main"] == frozenset(
            {"pkg.util"}
        )

    def test_modules_matching_requires_segment_boundary(self, write_tree):
        project = self._model(
            write_tree,
            {
                "pkg/core/kernel.py": "x = 1\n",
                "pkg/core/unkernel.py": "x = 1\n",
            },
        )
        matched = [
            c.module for c in project.modules_matching("core.kernel")
        ]
        assert matched == ["pkg.core.kernel"]
        # A suffix that crosses a dot boundary must not match.
        assert project.modules_matching("ore.kernel") == []

    def test_function_lookup(self, write_tree):
        project = self._model(
            write_tree,
            {"pkg/mod.py": "class Box:\n    def m(self):\n        pass\n"},
        )
        assert project.function("pkg.mod", "Box.m") is not None
        assert project.function("pkg.mod", "Box.gone") is None
        assert project.function("no.such.module", "m") is None


class TestResolveCall:
    def _project(self, write_tree):
        root = write_tree(
            {
                "pkg/util.py": "def helper(x):\n    return x\n",
                "pkg/main.py": """\
                from pkg.util import helper

                def top(x):
                    return x

                class Box:
                    def method(self):
                        return None

                    def caller(self, obj):
                        self.method()
                        top(1)
                        helper(2)
                        obj.method()
                """,
            }
        )
        contexts = [
            ModuleContext.from_file(os.path.join(root, rel))
            for rel in ("pkg/main.py", "pkg/util.py")
        ]
        return ProjectModel(contexts), contexts[0]

    def _calls_in(self, project, context, qualname):
        node = project.function(context.module, qualname)
        return [
            sub for sub in ast.walk(node) if isinstance(sub, ast.Call)
        ]

    def test_resolves_three_shapes_and_refuses_receivers(
        self, write_tree
    ):
        project, main = self._project(write_tree)
        calls = self._calls_in(project, main, "Box.caller")
        resolved = [
            resolve_call(project, main, "Box.caller", call)
            for call in calls
        ]
        assert resolved == [
            ("pkg.main", "Box.method"),  # self.method()
            ("pkg.main", "top"),  # same-module top level
            ("pkg.util", "helper"),  # via the import map
            None,  # obj.method(): unknown receiver stays unresolved
        ]

    def test_self_call_outside_class_is_unresolved(self, write_tree):
        project, main = self._project(write_tree)
        call = ast.parse("self.method()").body[0].value
        assert resolve_call(project, main, "top", call) is None


class TestStatementSpans:
    def test_multiline_statement_is_one_span(self, write_tree):
        context = _context(
            write_tree,
            "pkg/mod.py",
            """\
            value = make(
                7,
            )
            """,
        )
        assert context.suppression_lines(1) == (1, 2, 3)
        assert context.suppression_lines(2) == (1, 2, 3)

    def test_compound_statement_contributes_header_only(
        self, write_tree
    ):
        context = _context(
            write_tree,
            "pkg/mod.py",
            """\
            def f(
                x,
            ):
                body = 1
            """,
        )
        # The def's span is its header; the body line is its own span.
        assert context.suppression_lines(1) == (1, 2, 3)
        assert context.suppression_lines(4) == (4,)

    def test_trailing_noqa_suppresses_multiline_call(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                import random

                value = random.Random(
                    7,
                )  # repro: noqa[DET201]
                """,
            }
        )
        report = lint_paths([root], select=["DET201"])
        assert report.findings == []

    def test_noqa_in_body_never_silences_def_finding(self, write_tree):
        # KER302 anchors on the twin's def line; a suppression buried
        # in the body must not reach it.
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class StepKernel:
                    def run_lean(self, steps, packet):
                        packet.x = 1  # repro: noqa[KER302]
                        return packet
                """,
            }
        )
        report = lint_paths([root], select=["KER302"])
        assert [f.rule_id for f in report.findings] == ["KER302"]

    def test_overlapping_findings_suppress_independently(
        self, write_tree
    ):
        # One line fires DET201 (seeded ctor) and DET202 (module
        # global); a bracketed noqa silences only the named rule.
        root = write_tree(
            {
                "pkg/mod.py": """\
                import random

                partly = random.Random(7)  # repro: noqa[DET201]
                fully = random.Random(7)  # repro: noqa
                """,
            }
        )
        report = lint_paths([root], select=["DET201", "DET202"])
        assert [(f.rule_id, f.line) for f in report.findings] == [
            ("DET202", 3)
        ]
