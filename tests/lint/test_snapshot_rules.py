"""SNP7xx snapshot-coverage discipline: every mutable attribute of a
checkpointed class must be classified by the snapshot field registry."""

import os

from repro.lint import lint_paths
from repro.lint.rules import get_rule
from repro.snapshot.registry import SNAPSHOT_REGISTRY, spec_for

HERE = os.path.dirname(__file__)
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures", "dirtypkg")


def _rules(report):
    return [(f.rule_id, f.line) for f in report.findings]


class TestSnp701Coverage:
    def test_uncovered_self_assignment_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class StepKernel:
                    def __init__(self, mesh):
                        self.mesh = mesh
                        self.time = 0
                        self.shadow_state = {}
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert _rules(report) == [("SNP701", 5)]
        assert "shadow_state" in report.findings[0].message
        assert "snapshot registry" in report.findings[0].message

    def test_covered_fields_and_derived_are_clean(self, write_tree):
        # Every attribute assigned here is in the registry's fields or
        # derived set for core.kernel.StepKernel.
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class StepKernel:
                    def __init__(self, mesh, policy):
                        self.mesh = mesh
                        self.policy = policy
                        self.time = 0
                        self.in_flight = []
                        self.delivered_total = 0
                        self.abort = None
                        self._dist = {}
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert report.findings == []

    def test_class_level_declaration_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/dynamic/sources.py": """\
                class ImmediateInjection:
                    drip_interval = 4

                    def __init__(self, traffic):
                        self.traffic = traffic
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert _rules(report) == [("SNP701", 2)]
        assert "drip_interval" in report.findings[0].message

    def test_augmented_assignment_in_method_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/faults/watchdog.py": """\
                class RunWatchdog:
                    def observe(self, kernel):
                        self._stall_streak += 1
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert _rules(report) == [("SNP701", 3)]

    def test_each_attribute_reported_once(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class StepKernel:
                    def __init__(self):
                        self.ghost = 0

                    def step(self):
                        self.ghost += 1
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert _rules(report) == [("SNP701", 3)]

    def test_unregistered_class_is_clean(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class ScratchPad:
                    def __init__(self):
                        self.anything = []
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert report.findings == []

    def test_registered_name_in_other_module_is_clean(self, write_tree):
        # Same class name, wrong module suffix: no contract applies.
        root = write_tree(
            {
                "pkg/analysis/kernel.py": """\
                class StepKernel:
                    def __init__(self):
                        self.anything = []
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert report.findings == []

    def test_upper_case_constants_and_dunders_are_clean(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class StepKernel:
                    MAX_RETRIES = 3
                    __slots__ = ("time",)

                    def __init__(self):
                        self.time = 0
                """,
            }
        )
        report = lint_paths([root], select=["SNP701"])
        assert report.findings == []


class TestFixturePairAndRealTree:
    def test_fixture_pair_fires_and_suppresses(self):
        path = os.path.join(FIXTURES, "core", "engine.py")
        report = lint_paths([path], select=["SNP701"])
        hits = sorted(f.rule_id for f in report.findings)
        # Three fires (class-level retry_budget, __init__'s
        # _mystery_cache, step()'s _drift_total); the noqa'd
        # _audited_cache twin and the unregistered class are absent.
        assert hits == ["SNP701", "SNP701", "SNP701"]
        attrs = sorted(
            finding.message.split(" ", 1)[0]
            for finding in report.findings
        )
        assert attrs == [
            "HotPotatoEngine._drift_total",
            "HotPotatoEngine._mystery_cache",
            "HotPotatoEngine.retry_budget",
        ]

    def test_shipped_tree_is_clean(self):
        report = lint_paths(
            [os.path.join(REPO_ROOT, "src", "repro")],
            select=["SNP701"],
        )
        assert report.findings == []

    def test_rule_registered(self):
        rule = get_rule("SNP701")
        assert rule.name == "snapshot-coverage"

    def test_registry_suffixes_resolve_to_shipped_modules(self):
        # Every registry entry must match its real repro module —
        # a renamed module would otherwise silently drop coverage.
        for spec in SNAPSHOT_REGISTRY:
            assert (
                spec_for(f"repro.{spec.module_suffix}", spec.qualname)
                is spec
            )
