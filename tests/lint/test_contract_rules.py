"""KER3xx kernel-twin phase contracts: extraction, ordering, staleness.

The acceptance-critical test here is the seeded mutation: take the
*real* ``StepKernel.run_lean``, move its admission call to the end of
the loop, and the linter must catch the reorder — that is the whole
point of declaring the contract statically.
"""

import ast
import os

from repro.lint import lint_paths
from repro.lint.contracts import extract_phases
from repro.lint.kernelspec import KERNEL_TWINS, PHASE_ORDER

HERE = os.path.dirname(__file__)
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
REAL_KERNEL = os.path.join(REPO_ROOT, "src", "repro", "core", "kernel.py")
REAL_SOA_KERNEL = os.path.join(
    REPO_ROOT, "src", "repro", "core", "soa", "kernel.py"
)


def _function(source, name):
    tree = ast.parse(source)
    for node in ast.walk(tree):
        if isinstance(node, ast.FunctionDef) and node.name == name:
            return node
    raise AssertionError(f"no function {name!r}")


def _rules(report):
    return [(f.rule_id, f.line) for f in report.findings]


class TestExtractPhases:
    def test_orders_by_last_occurrence(self):
        node = _function(
            "def loop(self, pending, packet):\n"
            "    self._admit(0)\n"
            "    first = decide(0)\n"
            "    self._admit(1)\n"
            "    pending[0] = first\n",
            "loop",
        )
        found = extract_phases(node)
        assert found["inject"][0] == 4  # the later _admit wins
        assert found["rank"][0] == 3
        assert found["arc_assign"][0] == 5

    def test_move_marker_forms(self):
        aug = _function(
            "def loop(self, packet):\n    packet.hops += 1\n", "loop"
        )
        whole_column = _function(
            "def loop(self, hops):\n    hops = hops + 1\n", "loop"
        )
        assert set(extract_phases(aug)) == {"move"}
        assert set(extract_phases(whole_column)) == {"move"}

    def test_move_instrumented_marks_move_and_deliver(self):
        node = _function(
            "def loop(self, infos):\n"
            "    return self._move_instrumented(infos)\n",
            "loop",
        )
        found = extract_phases(node)
        assert found["move"][0] == found["deliver"][0] == 2

    def test_unrelated_code_yields_no_phases(self):
        node = _function(
            "def loop(self, xs):\n"
            "    total = sum(xs)\n"
            "    xs.append(total)\n"
            "    return sorted(xs)\n",
            "loop",
        )
        assert extract_phases(node) == {}


class TestContractDeclaration:
    def test_contract_shape(self):
        assert PHASE_ORDER == (
            "faults",
            "inject",
            "rank",
            "arc_assign",
            "move",
            "deliver",
        )
        # Every declared twin targets one of the two kernel modules.
        assert {spec.module_suffix for spec in KERNEL_TWINS} == {
            "core.kernel",
            "core.soa.kernel",
        }


class TestRealKernels:
    def test_shipped_twins_satisfy_the_contract(self):
        report = lint_paths(
            [REAL_KERNEL, REAL_SOA_KERNEL],
            select=["KER301", "KER302", "KER303"],
        )
        assert report.findings == []


def _real_kernel_copy(mutate=None):
    """The real kernel module's source, optionally mutated, unparsed."""
    with open(REAL_KERNEL, "r", encoding="utf-8") as handle:
        tree = ast.parse(handle.read())
    if mutate is not None:
        mutate(tree)
    return ast.unparse(tree) + "\n"


def _calls(stmt):
    return {
        node.func.attr
        for node in ast.walk(stmt)
        if isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
    }


def _move_admit_to_loop_end(tree):
    """Seeded defect: run admission *after* movement and delivery."""
    for node in ast.walk(tree):
        if not (
            isinstance(node, ast.ClassDef) and node.name == "StepKernel"
        ):
            continue
        run_lean = next(
            item
            for item in node.body
            if isinstance(item, ast.FunctionDef)
            and item.name == "run_lean"
        )
        loop = next(
            item
            for item in ast.walk(run_lean)
            if isinstance(item, (ast.While, ast.For))
        )
        index = next(
            i
            for i, stmt in enumerate(loop.body)
            if "_admit" in _calls(stmt)
        )
        loop.body.append(loop.body.pop(index))
        return
    raise AssertionError("StepKernel not found in the real kernel")


class TestSeededReorder:
    def test_faithful_copy_of_real_kernel_stays_clean(
        self, write_tree
    ):
        root = write_tree(
            {"pkg/core/kernel.py": _real_kernel_copy()}
        )
        report = lint_paths(
            [root], select=["KER301", "KER302", "KER303"]
        )
        assert report.findings == []

    def test_reordered_real_twin_is_caught(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": _real_kernel_copy(
                    _move_admit_to_loop_end
                )
            }
        )
        report = lint_paths([root], select=["KER301"])
        assert [f.rule_id for f in report.findings] == ["KER301"]
        assert "inject" in report.findings[0].message
        assert "run_lean" in report.findings[0].message


class TestSyntheticTwins:
    def test_missing_deliver_fires_ker302_on_the_def(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                pending = {}

                def decide(view):
                    return view

                class StepKernel:
                    def run_lean(self, steps, packet):
                        for now in range(steps):
                            self._admit(now)
                            pending[now] = decide(now)
                            packet.hops += 1
                        return packet
                """,
            }
        )
        report = lint_paths([root], select=["KER302"])
        assert _rules(report) == [("KER302", 7)]
        assert "deliver" in report.findings[0].message

    def test_faults_phase_is_optional(self, write_tree):
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                pending = {}

                def decide(view):
                    return view

                class StepKernel:
                    def run_lean(self, steps, packet):
                        for now in range(steps):
                            self._admit(now)
                            pending[now] = decide(now)
                            packet.hops += 1
                            packet.delivered_at = now
                        return packet
                """,
            }
        )
        report = lint_paths([root], select=["KER301", "KER302"])
        assert report.findings == []

    def test_stale_declaration_fires_ker303_on_the_class(
        self, write_tree
    ):
        # A ``core.kernel`` module whose StepKernel lost its twins: the
        # contract declaration went stale and must say so.
        root = write_tree(
            {
                "pkg/core/kernel.py": """\
                class StepKernel:
                    def totally_new_loop(self):
                        return None
                """,
            }
        )
        report = lint_paths([root], select=["KER303"])
        fired = {f.rule_id for f in report.findings}
        assert fired == {"KER303"}
        # One finding per missing declared twin, each anchored on the
        # owning class statement (line 1).
        assert len(report.findings) == 4
        assert {f.line for f in report.findings} == {1}
