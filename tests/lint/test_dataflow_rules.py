"""DET2xx RNG dataflow: construction, global storage, reachability."""

from repro.lint import lint_paths

#: A sanctioned factory module; the dotted path ends in ``.rng`` so
#: ``make_rng``/``spawn`` resolve as factory origins.
RNG_MODULE = {
    "pkg/core/rng.py": """\
    import random

    def make_rng(seed):
        return random.Random(seed)

    def spawn(rng, key):
        return random.Random((id(rng), key))
    """,
}


def _rules(report):
    return [(f.rule_id, f.line) for f in report.findings]


class TestDet201Construction:
    def test_seeded_random_fires_unseeded_does_not(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                import random

                def build(seed):
                    seeded = random.Random(seed)
                    keyword = random.Random(x=seed)
                    bare = random.Random()
                    return seeded, keyword, bare
                """,
            }
        )
        report = lint_paths([root], select=["DET201"])
        assert _rules(report) == [("DET201", 4), ("DET201", 5)]

    def test_system_random_fires_even_unseeded(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                import random

                def entropy():
                    return random.SystemRandom()
                """,
            }
        )
        report = lint_paths([root], select=["DET201"])
        assert _rules(report) == [("DET201", 4)]

    def test_factory_module_itself_is_exempt(self, write_tree):
        # The sanctioned factory has to construct the raw RNG somewhere.
        report = lint_paths(
            [write_tree(dict(RNG_MODULE))], select=["DET201"]
        )
        assert report.findings == []

    def test_factory_call_is_clean(self, write_tree):
        root = write_tree(
            {
                **RNG_MODULE,
                "pkg/mod.py": """\
                from pkg.core.rng import make_rng, spawn

                def build(seed):
                    rng = make_rng(seed)
                    return spawn(rng, "worker")
                """,
            }
        )
        report = lint_paths([root], select=["DET201"])
        assert report.findings == []


class TestDet202ModuleGlobals:
    def test_module_level_storage_fires(self, write_tree):
        root = write_tree(
            {
                **RNG_MODULE,
                "pkg/mod.py": """\
                import random

                from pkg.core.rng import make_rng

                SHARED = make_rng(7)
                TYPED: object = random.Random(7)
                """,
            }
        )
        report = lint_paths([root], select=["DET202"])
        assert _rules(report) == [("DET202", 5), ("DET202", 6)]

    def test_function_local_rng_is_clean(self, write_tree):
        root = write_tree(
            {
                **RNG_MODULE,
                "pkg/mod.py": """\
                from pkg.core.rng import make_rng

                def run(seed):
                    rng = make_rng(seed)
                    return rng.random()
                """,
            }
        )
        report = lint_paths([root], select=["DET202"])
        assert report.findings == []

    def test_global_statement_publication_fires(self, write_tree):
        root = write_tree(
            {
                **RNG_MODULE,
                "pkg/mod.py": """\
                from pkg.core.rng import make_rng

                CURRENT = None

                def install(seed):
                    global CURRENT
                    CURRENT = make_rng(seed)
                """,
            }
        )
        report = lint_paths([root], select=["DET202"])
        assert _rules(report) == [("DET202", 7)]

    def test_factory_origin_requires_rng_module(self, write_tree):
        # A same-named helper living outside an ``*.rng`` module is not
        # a sanctioned factory, so DET202's source check ignores it.
        root = write_tree(
            {
                "pkg/helpers.py": "def make_rng(seed):\n    return seed\n",
                "pkg/mod.py": (
                    "from pkg.helpers import make_rng\n\n"
                    "VALUE = make_rng(7)\n"
                ),
            }
        )
        report = lint_paths([root], select=["DET202"])
        assert report.findings == []


class TestDet203VectorizedReachability:
    def _lint(self, write_tree, kernel_source, extra=None):
        files = {
            **RNG_MODULE,
            "pkg/core/soa/kernel.py": kernel_source,
        }
        if extra:
            files.update(extra)
        return lint_paths([write_tree(files)], select=["DET203"])

    def test_direct_draw_in_vectorized_loop_fires(self, write_tree):
        report = self._lint(
            write_tree,
            """\
            class SoaKernel:
                def _run_vectorized(self, steps):
                    winner = self._rng.choice(steps)
                    return winner
            """,
        )
        assert _rules(report) == [("DET203", 3)]

    def test_draw_in_helper_reached_via_self_call_fires(
        self, write_tree
    ):
        report = self._lint(
            write_tree,
            """\
            class SoaKernel:
                def _run_vectorized(self, steps):
                    return self._pick(self.rng, steps)

                def _pick(self, rng, steps):
                    return rng.choice(steps)
            """,
        )
        assert _rules(report) == [("DET203", 6)]

    def test_same_helper_with_none_argument_is_clean(self, write_tree):
        # Argument sensitivity: the shared helper is legal as long as
        # the vectorized call site passes None in the rng slot.
        report = self._lint(
            write_tree,
            """\
            class SoaKernel:
                def _run_vectorized(self, steps):
                    return self._pick(None, steps)

                def _pick(self, rng, steps):
                    if rng is None:
                        return steps[0]
                    return rng.choice(steps)
            """,
        )
        assert report.findings == []

    def test_rng_escaping_to_unresolvable_call_fires(self, write_tree):
        report = self._lint(
            write_tree,
            """\
            from mystery import resolve

            class SoaKernel:
                def _run_vectorized(self, steps):
                    rng = self.adapter.rng
                    return resolve(steps, rng)
            """,
        )
        assert _rules(report) == [("DET203", 6)]

    def test_cross_module_helper_is_tracked(self, write_tree):
        report = self._lint(
            write_tree,
            """\
            from pkg.core.soa.conflict import resolve_ties

            class SoaKernel:
                def _run_vectorized(self, steps):
                    return resolve_ties(steps, self.rng)
            """,
            extra={
                "pkg/core/soa/conflict.py": """\
                def resolve_ties(steps, rng):
                    if rng is not None:
                        return rng.shuffle(steps)
                    return steps
                """,
            },
        )
        assert _rules(report) == [("DET203", 3)]
        assert "conflict.py" in report.findings[0].path

    def test_columnar_fallback_may_consume_rng(self, write_tree):
        # Only the vectorized roots seed the region; the columnar twin
        # replays the object kernel's draws and stays legal.
        report = self._lint(
            write_tree,
            """\
            class SoaKernel:
                def _run_vectorized(self, steps):
                    return steps

                def _run_columnar(self, steps):
                    return self._rng.choice(steps)
            """,
        )
        assert report.findings == []

    def test_noqa_suppresses_the_draw(self, write_tree):
        report = self._lint(
            write_tree,
            """\
            class SoaKernel:
                def _run_vectorized(self, steps):
                    return self._rng.choice(steps)  # repro: noqa[DET203]
            """,
        )
        assert report.findings == []

    def test_silent_without_entrypoints(self, write_tree):
        root = write_tree(
            {"pkg/mod.py": "def f(rng):\n    return rng.random()\n"}
        )
        report = lint_paths([root], select=["DET203"])
        assert report.findings == []
