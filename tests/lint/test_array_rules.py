"""NPY4xx array determinism: soa scoping, sorts, compat channels,
float reductions."""

from repro.lint import lint_paths

SORT_SOURCE = """\
import numpy as np

def order(keys, rows):
    bad = np.argsort(keys)
    explicit = np.argsort(keys, kind="quicksort")
    good = np.argsort(keys, kind="stable")
    ties = np.lexsort((rows, keys))
    return bad, explicit, good, ties
"""


def _rules(report):
    return [(f.rule_id, f.line) for f in report.findings]


class TestSoaScoping:
    def test_rules_only_apply_inside_soa_modules(self, write_tree):
        root = write_tree(
            {
                "pkg/core/soa/sorting.py": SORT_SOURCE,
                "pkg/core/dense.py": SORT_SOURCE,
            }
        )
        report = lint_paths([root], select=["NPY401"])
        assert {f.path.rsplit("/", 1)[-1] for f in report.findings} == {
            "sorting.py"
        }

    def test_top_level_soa_package_counts(self, write_tree):
        root = write_tree({"soa/sorting.py": SORT_SOURCE})
        report = lint_paths([root], select=["NPY401"])
        assert len(report.findings) == 2


class TestNpy401Sorts:
    def test_only_unstable_sorts_fire(self, write_tree):
        root = write_tree({"pkg/soa/sorting.py": SORT_SOURCE})
        report = lint_paths([root], select=["NPY401"])
        # argsort default and explicit quicksort fire; stable and
        # lexsort (always stable) stay clean.
        assert _rules(report) == [("NPY401", 4), ("NPY401", 5)]

    def test_method_argsort_fires_on_any_receiver(self, write_tree):
        root = write_tree(
            {
                "pkg/soa/mod.py": """\
                def order(column):
                    return column.argsort()
                """,
            }
        )
        report = lint_paths([root], select=["NPY401"])
        assert _rules(report) == [("NPY401", 2)]

    def test_list_sort_is_not_numpy(self, write_tree):
        root = write_tree(
            {
                "pkg/soa/mod.py": """\
                import numpy as np

                def order(items, arr):
                    items.sort()
                    np.sort(arr)
                    return items
                """,
            }
        )
        report = lint_paths([root], select=["NPY401"])
        # Only the module-object .sort fires; list.sort is untyped and
        # deliberately left alone.
        assert _rules(report) == [("NPY401", 5)]

    def test_from_import_argsort_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/soa/mod.py": """\
                from numpy import argsort

                def order(keys):
                    return argsort(keys)
                """,
            }
        )
        report = lint_paths([root], select=["NPY401"])
        assert _rules(report) == [("NPY401", 4)]


class TestNpy402CompatChannels:
    def test_compat_assignment_channel_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/soa/_compat.py": "np = None\n",
                "pkg/soa/mod.py": """\
                from pkg.soa import _compat

                def entropy(rows):
                    xp = _compat.np
                    return xp.random.random(len(rows))
                """,
            }
        )
        report = lint_paths([root], select=["NPY402"])
        assert _rules(report) == [("NPY402", 5)]

    def test_np_parameter_channel_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/soa/mod.py": """\
                def entropy(rows, np):
                    return np.random.random(len(rows))
                """,
            }
        )
        report = lint_paths([root], select=["NPY402"])
        assert _rules(report) == [("NPY402", 2)]

    def test_untracked_names_stay_silent(self, write_tree):
        # ``library.random`` on an ordinary name is not numpy's RNG;
        # without a tracked channel the rule must not guess.
        root = write_tree(
            {
                "pkg/soa/mod.py": """\
                def pick(library, rows):
                    return library.random.choice(rows)
                """,
            }
        )
        report = lint_paths([root], select=["NPY402"])
        assert report.findings == []


class TestNpy403Reductions:
    def test_bare_reduction_warns_int_wrap_is_exempt(self, write_tree):
        root = write_tree(
            {
                "pkg/soa/mod.py": """\
                def potential(values):
                    rough = values.sum()
                    averaged = values.mean()
                    exact = int(values.sum())
                    return rough, averaged, exact
                """,
            }
        )
        report = lint_paths([root], select=["NPY403"])
        assert _rules(report) == [("NPY403", 2), ("NPY403", 3)]

    def test_severity_is_warning(self, write_tree):
        from repro.lint import Severity

        root = write_tree(
            {"pkg/soa/mod.py": "def f(v):\n    return v.sum()\n"}
        )
        report = lint_paths([root], select=["NPY403"])
        assert [f.severity for f in report.findings] == [
            Severity.WARNING
        ]
        # Warnings fail by default but pass under --fail-on error.
        assert report.exit_code(Severity.WARNING) == 1
        assert report.exit_code(Severity.ERROR) == 0

    def test_real_soa_tree_is_reduction_clean(self):
        import os

        here = os.path.dirname(__file__)
        repo_root = os.path.dirname(os.path.dirname(here))
        soa = os.path.join(repo_root, "src", "repro", "core", "soa")
        report = lint_paths(
            [soa], select=["NPY401", "NPY402", "NPY403"]
        )
        assert report.findings == []
