"""PAR5xx parallel payload purity: what may cross the pickle boundary."""

from repro.lint import lint_paths


def _rules(report):
    return [(f.rule_id, f.line) for f in report.findings]


class TestPar501Lambdas:
    def test_inline_lambda_payload_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                def build(seed):
                    return CaseSpec(problem_factory=lambda: None, seed=seed)
                """,
            }
        )
        report = lint_paths([root], select=["PAR501"])
        assert _rules(report) == [("PAR501", 2)]
        assert "CaseSpec" in report.findings[0].message

    def test_lambda_via_name_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                def build(executor):
                    payload = lambda: None
                    return executor.submit(payload)
                """,
            }
        )
        report = lint_paths([root], select=["PAR501"])
        assert _rules(report) == [("PAR501", 3)]

    def test_partial_over_lambda_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                from functools import partial

                def build(executor):
                    return executor.submit(partial(lambda x: x, 1))
                """,
            }
        )
        report = lint_paths([root], select=["PAR501"])
        assert _rules(report) == [("PAR501", 4)]

    def test_lambda_outside_submission_is_fine(self, write_tree):
        # Lambdas are only a problem across the pickle boundary.
        root = write_tree(
            {
                "pkg/mod.py": """\
                def order(rows):
                    return sorted(rows, key=lambda row: row[0])
                """,
            }
        )
        report = lint_paths([root], select=["PAR501"])
        assert report.findings == []


class TestPar502LocalCallables:
    def test_nested_def_payload_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                def build(seed):
                    def local_problem():
                        return None

                    return CaseSpec(problem_factory=local_problem)
                """,
            }
        )
        report = lint_paths([root], select=["PAR502"])
        assert _rules(report) == [("PAR502", 5)]

    def test_partial_over_nested_def_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                from functools import partial

                def build(executor, payload):
                    def local_step():
                        return payload

                    return executor.submit(partial(local_step, payload))
                """,
            }
        )
        report = lint_paths([root], select=["PAR502"])
        assert _rules(report) == [("PAR502", 7)]

    def test_module_level_function_is_clean(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                from functools import partial

                def module_problem():
                    return None

                def build(seed):
                    direct = CaseSpec(problem_factory=module_problem)
                    wrapped = CaseSpec(
                        problem_factory=partial(module_problem), seed=seed
                    )
                    return direct, wrapped
                """,
            }
        )
        report = lint_paths([root], select=["PAR501", "PAR502"])
        assert report.findings == []

    def test_parameter_names_are_not_local_defs(self, write_tree):
        # The real analysis front doors forward factory *parameters*
        # into specs; those are the caller's problem, not this module's.
        root = write_tree(
            {
                "pkg/mod.py": """\
                def run_cases(problem_factory, seeds):
                    return [
                        CaseSpec(problem_factory=problem_factory, seed=s)
                        for s in seeds
                    ]
                """,
            }
        )
        report = lint_paths([root], select=["PAR501", "PAR502"])
        assert report.findings == []

    def test_real_analysis_tree_is_payload_clean(self):
        import os

        here = os.path.dirname(__file__)
        repo_root = os.path.dirname(os.path.dirname(here))
        report = lint_paths(
            [os.path.join(repo_root, "src", "repro")],
            select=["PAR501", "PAR502"],
        )
        assert report.findings == []


class TestRunBatchSubmission:
    """The campaign pool's ``run_batch`` is a submission boundary: its
    items and chunk function pickle into workers, but its ``on_result``
    callback stays in the parent and may close over anything."""

    def test_lambda_chunk_fn_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                def dispatch(pool, specs):
                    return pool.run_batch(specs, lambda c: list(c))
                """,
            }
        )
        report = lint_paths([root], select=["PAR501"])
        assert _rules(report) == [("PAR501", 2)]
        assert "run_batch" in report.findings[0].message

    def test_local_chunk_fn_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/mod.py": """\
                def dispatch(pool, specs):
                    def chunk_fn(chunk):
                        return list(chunk)

                    return pool.run_batch(specs, chunk_fn)
                """,
            }
        )
        report = lint_paths([root], select=["PAR502"])
        assert _rules(report) == [("PAR502", 5)]

    def test_parent_side_on_result_callback_is_clean(self, write_tree):
        # on_result fires in the parent after the chunk's results come
        # back; it never crosses the pickle boundary.
        root = write_tree(
            {
                "pkg/mod.py": """\
                def module_chunk_fn(chunk):
                    return list(chunk)

                def dispatch(pool, specs, sink):
                    def hook(index, result):
                        sink.append(result)

                    return pool.run_batch(
                        specs, module_chunk_fn, on_result=hook
                    )
                """,
            }
        )
        report = lint_paths([root], select=["PAR501", "PAR502"])
        assert report.findings == []

    def test_fixture_pair_fires_and_suppresses(self):
        import os

        here = os.path.dirname(__file__)
        path = os.path.join(
            here, "fixtures", "dirtypkg", "campaign", "dispatch.py"
        )
        report = lint_paths([path], select=["PAR501", "PAR502"])
        assert sorted(f.rule_id for f in report.findings) == [
            "PAR501",
            "PAR502",
        ]
