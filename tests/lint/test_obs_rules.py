"""OBS6xx observability discipline: registry-owned metrics and the
clock-import gate that keeps obs timestamps inside ``obs.clock``."""

import os

from repro.lint import lint_paths
from repro.lint.context import domain_of, module_name_for
from repro.lint.rules import get_rule

HERE = os.path.dirname(__file__)
REPO_ROOT = os.path.dirname(os.path.dirname(HERE))
FIXTURES = os.path.join(HERE, "fixtures", "dirtypkg")


def _rules(report):
    return [(f.rule_id, f.line) for f in report.findings]


class TestObs601RegistryBypass:
    def test_direct_counter_construction_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/analysis/mod.py": """\
                from repro.obs.metrics import Counter

                def orphan():
                    return Counter("repro_lost_total", "never merged")
                """,
            }
        )
        report = lint_paths([root], select=["OBS601"])
        assert _rules(report) == [("OBS601", 4)]
        assert "MetricRegistry.counter()" in report.findings[0].message

    def test_module_attribute_construction_fires(self, write_tree):
        # The bypass resolves through a module alias too.
        root = write_tree(
            {
                "pkg/campaign/mod.py": """\
                from repro.obs import metrics

                def orphan():
                    return metrics.Histogram("repro_h", "", buckets=(1,))
                """,
            }
        )
        report = lint_paths([root], select=["OBS601"])
        assert _rules(report) == [("OBS601", 4)]
        assert "histogram" in report.findings[0].message

    def test_collections_counter_is_clean(self, write_tree):
        # Same class name, different origin — must not fire.
        root = write_tree(
            {
                "pkg/analysis/mod.py": """\
                from collections import Counter

                def tally(tags):
                    return Counter(tags)
                """,
            }
        )
        report = lint_paths([root], select=["OBS601"])
        assert report.findings == []

    def test_registry_factories_are_clean(self, write_tree):
        root = write_tree(
            {
                "pkg/campaign/mod.py": """\
                from repro.obs.metrics import MetricRegistry

                def owned():
                    registry = MetricRegistry()
                    registry.counter("repro_ok_total", "owned").inc()
                    registry.gauge("repro_ok_peak", "owned").set(3)
                    return registry
                """,
            }
        )
        report = lint_paths([root], select=["OBS601"])
        assert report.findings == []

    def test_obs_metrics_module_itself_is_exempt(self, write_tree):
        # The registry's own get-or-create is the sanctioned
        # construction site, wherever the package tree is rooted.
        root = write_tree(
            {
                "pkg/obs/metrics.py": """\
                from repro.obs.metrics import Counter

                def _get_or_create(name, help_text):
                    return Counter(name, help_text)
                """,
            }
        )
        report = lint_paths([root], select=["OBS601"])
        assert report.findings == []


class TestObs602ClockImport:
    def test_time_import_in_obs_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/obs/stamps.py": """\
                import time

                def stamp():
                    return time.monotonic()
                """,
            }
        )
        report = lint_paths([root], select=["OBS602"])
        assert _rules(report) == [("OBS602", 1)]
        assert "obs.clock" in report.findings[0].message

    def test_aliased_from_import_fires(self, write_tree):
        # The hole DET106 call resolution cannot see.
        root = write_tree(
            {
                "pkg/obs/stamps.py": """\
                from time import monotonic as tick

                def stamp():
                    return tick()
                """,
            }
        )
        report = lint_paths([root], select=["OBS602"])
        assert _rules(report) == [("OBS602", 1)]

    def test_datetime_import_fires(self, write_tree):
        root = write_tree(
            {
                "pkg/obs/stamps.py": """\
                from datetime import datetime, timezone

                def stamp():
                    return datetime.now(timezone.utc)
                """,
            }
        )
        report = lint_paths([root], select=["OBS602"])
        assert _rules(report) == [("OBS602", 1)]

    def test_outside_obs_domain_is_clean(self, write_tree):
        # The import gate is obs-scoped; the campaign progress module
        # legitimately parses ISO stamps with datetime.
        root = write_tree(
            {
                "pkg/campaign/progress.py": """\
                import datetime

                def parse(stamp):
                    return datetime.datetime.fromisoformat(stamp)
                """,
            }
        )
        report = lint_paths([root], select=["OBS602"])
        assert report.findings == []

    def test_obs_clock_is_exempt(self, write_tree):
        root = write_tree(
            {
                "pkg/obs/clock.py": """\
                import time

                def perf_ns():
                    return time.perf_counter_ns()
                """,
            }
        )
        report = lint_paths([root], select=["OBS602"])
        assert report.findings == []


class TestFixturePairAndRealTree:
    def test_fixture_pair_fires_and_suppresses(self):
        path = os.path.join(FIXTURES, "obs", "metrics_bypass.py")
        report = lint_paths([path], select=["OBS601", "OBS602"])
        hits = sorted(f.rule_id for f in report.findings)
        # Two OBS601 fires (Counter + Gauge; the noqa'd twin is
        # absent) and two OBS602 fires (import time + from datetime;
        # the noqa'd `import time as quiet_time` is absent).
        assert hits == ["OBS601", "OBS601", "OBS602", "OBS602"]

    def test_shipped_tree_is_clean(self):
        report = lint_paths(
            [os.path.join(REPO_ROOT, "src", "repro")],
            select=["OBS601", "OBS602"],
        )
        assert report.findings == []

    def test_det106_domain_covers_new_obs_modules(self):
        # DET106's obs-domain coverage extends to the new observability
        # modules automatically: each resolves into the obs domain and
        # none is exempt.
        rule = get_rule("DET106")
        assert "obs" in rule.domains
        for module in ("metrics", "series", "tracing", "export"):
            name = module_name_for(
                os.path.join(REPO_ROOT, "src", "repro", "obs", f"{module}.py")
            )
            assert name == f"repro.obs.{module}"
            assert domain_of(name) == "obs"
            assert not any(
                name.endswith("." + suffix)
                for suffix in rule.exempt_modules
            )
