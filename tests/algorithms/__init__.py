"""Test package."""
