"""Unit tests for the greedy matching template and deflection rules."""

import random

import pytest

from repro.algorithms.base import (
    DEFLECTION_RULES,
    GreedyMatchingPolicy,
    deflect,
)
from repro.core.engine import route
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


class TestConstruction:
    def test_rejects_unknown_tie_break(self):
        with pytest.raises(ValueError):
            GreedyMatchingPolicy(tie_break="alphabetical")

    def test_rejects_unknown_deflection(self):
        with pytest.raises(ValueError):
            GreedyMatchingPolicy(deflection="bounce")

    def test_repr(self):
        policy = GreedyMatchingPolicy(tie_break="random", deflection="reverse")
        assert "random" in repr(policy)
        assert "reverse" in repr(policy)

    def test_declarations(self):
        policy = GreedyMatchingPolicy()
        assert policy.declares_greedy
        assert policy.declares_max_advance


class TestAssign:
    def _view(self, entries, node=None):
        mesh = Mesh(2, 6)
        node = node or entries[0][0]
        packets = [
            Packet(id=i, source=s, destination=d)
            for i, (s, d) in enumerate(entries)
        ]
        return NodeView(mesh, node, 0, packets), packets

    def test_lone_packet_advances(self):
        view, packets = self._view([((2, 2), (2, 5))])
        policy = GreedyMatchingPolicy()
        policy.prepare(view.mesh, None, random.Random(0))
        assignment = policy.assign(view)
        assert assignment[0] == Direction(1, 1)

    def test_maximum_matching_advances_both(self):
        # One flexible + one restricted wanting the same arc: the
        # flexible one is rerouted so both advance.
        view, _ = self._view([((3, 3), (5, 5)), ((3, 3), (3, 6))])
        policy = GreedyMatchingPolicy()
        policy.prepare(view.mesh, None, random.Random(0))
        assignment = policy.assign(view)
        assert assignment[1] == Direction(1, 1)  # restricted keeps east
        assert assignment[0] == Direction(0, 1)  # flexible rerouted south

    def test_full_node_all_assigned_distinct(self):
        entries = [
            ((3, 3), (1, 1)),
            ((3, 3), (6, 6)),
            ((3, 3), (3, 6)),
            ((3, 3), (6, 3)),
        ]
        view, _ = self._view(entries)
        policy = GreedyMatchingPolicy()
        policy.prepare(view.mesh, None, random.Random(0))
        assignment = policy.assign(view)
        assert len(assignment) == 4
        assert len(set(assignment.values())) == 4


class TestDeflectRules:
    def _setup(self):
        mesh = Mesh(2, 6)
        packet = Packet(id=0, source=(3, 3), destination=(3, 6))
        packet.entry_direction = Direction(0, 1)  # entered moving south
        view = NodeView(mesh, (3, 3), 1, [packet])
        free = [Direction(0, 1), Direction(0, -1), Direction(1, -1)]
        return view, packet, free

    def test_ordered_takes_first_free(self):
        view, packet, free = self._setup()
        result = deflect("ordered", view, [packet], free, random.Random(0))
        assert result[0] == free[0]

    def test_reverse_prefers_back_arc(self):
        view, packet, free = self._setup()
        result = deflect("reverse", view, [packet], free, random.Random(0))
        assert result[0] == Direction(0, -1)  # back where it came from

    def test_reverse_falls_back_when_back_taken(self):
        view, packet, free = self._setup()
        free = [Direction(0, 1), Direction(1, -1)]  # no north
        result = deflect("reverse", view, [packet], free, random.Random(0))
        assert result[0] in free

    def test_random_is_seed_dependent_but_valid(self):
        view, packet, free = self._setup()
        outcomes = {
            deflect("random", view, [packet], free, random.Random(s))[0]
            for s in range(20)
        }
        assert outcomes <= set(free)
        assert len(outcomes) > 1  # actually random

    def test_unknown_rule_rejected(self):
        view, packet, free = self._setup()
        with pytest.raises(ValueError):
            deflect("zigzag", view, [packet], free, random.Random(0))

    def test_all_rules_route_a_real_batch(self, mesh8):
        for rule in DEFLECTION_RULES:
            problem = random_many_to_many(mesh8, k=60, seed=60)
            policy = GreedyMatchingPolicy(deflection=rule)
            result = route(problem, policy, seed=60)
            assert result.completed, f"deflection rule {rule} failed"

    def test_both_tie_breaks_route_a_real_batch(self, mesh8):
        for tie in ("id", "random"):
            problem = random_many_to_many(mesh8, k=60, seed=61)
            policy = GreedyMatchingPolicy(tie_break=tie)
            result = route(problem, policy, seed=61)
            assert result.completed
