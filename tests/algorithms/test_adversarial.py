"""Tests for the livelock machinery: the 8-packet instance, the
blocking policy, and schedule replay."""

import pytest

from repro.algorithms import (
    BlockingGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
    SchedulePolicy,
    livelock_instance,
)
from repro.analysis.livelock import detect_cycle, find_greedy_cycle
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus


class TestLivelockInstance:
    def test_structure(self):
        problem = livelock_instance()
        assert problem.k == 8
        assert problem.mesh.side == 3
        # Two packets per block node.
        from collections import Counter

        origins = Counter(r.source for r in problem.requests)
        assert set(origins.values()) == {2}

    def test_rejects_wrong_mesh(self):
        with pytest.raises(ValueError):
            livelock_instance(Mesh(1, 5))
        with pytest.raises(ValueError):
            livelock_instance(Torus(2, 4))

    def test_works_on_larger_meshes(self):
        problem = livelock_instance(Mesh(2, 8))
        assert problem.k == 8


class TestBlockingGreedyLivelock:
    def test_enters_period_two_cycle(self):
        """The headline Section 1.2 demonstration: a uniform
        deterministic greedy policy that never terminates."""
        cycle = detect_cycle(
            livelock_instance(), BlockingGreedyPolicy(), max_steps=50
        )
        assert cycle is not None
        assert cycle.period == 2

    def test_no_packet_ever_delivered(self):
        engine = HotPotatoEngine(
            livelock_instance(), BlockingGreedyPolicy(), max_steps=100
        )
        result = engine.run()
        assert not result.completed
        assert result.delivered == 0

    def test_run_is_greedy_throughout(self):
        """The GreedyValidator runs at every node of every step of the
        livelock (the policy declares greediness); 100 violation-free
        steps certify the infinite run is legal."""
        engine = HotPotatoEngine(
            livelock_instance(), BlockingGreedyPolicy(), max_steps=100
        )
        engine.run()  # would raise GreedinessViolationError otherwise
        assert engine.time == 100

    def test_restricted_priority_breaks_the_livelock(self):
        """Definition 18 is exactly what the cycle violates: with
        restricted-packet priority the same instance routes instantly."""
        result = HotPotatoEngine(
            livelock_instance(), RestrictedPriorityPolicy()
        ).run()
        assert result.completed
        assert result.total_steps <= 4

    def test_randomized_greedy_escapes(self):
        result = HotPotatoEngine(
            livelock_instance(), RandomizedGreedyPolicy(), seed=1
        ).run()
        assert result.completed

    def test_blocking_policy_terminates_elsewhere(self, mesh8):
        """The perverse rule is not globally broken — it routes an easy
        batch; only the crafted configuration traps it."""
        from repro.workloads import random_many_to_many

        problem = random_many_to_many(mesh8, k=10, seed=90)
        result = HotPotatoEngine(
            problem, BlockingGreedyPolicy(), max_steps=2000
        ).run()
        assert result.completed

    def test_rejects_non_2d(self, mesh3d):
        from repro.workloads import random_many_to_many

        problem = random_many_to_many(mesh3d, k=5, seed=91)
        with pytest.raises(ValueError):
            HotPotatoEngine(problem, BlockingGreedyPolicy()).run()


class TestScheduleSearchAndReplay:
    def test_searcher_finds_cycle_on_instance(self):
        found = find_greedy_cycle(
            livelock_instance(), max_states=20_000, max_successors=256
        )
        assert found is not None
        assert found.period >= 1

    def test_replayed_schedule_livelocks_and_validates(self):
        problem = livelock_instance()
        found = find_greedy_cycle(
            problem, max_states=20_000, max_successors=256
        )
        policy = found.make_policy()
        engine = HotPotatoEngine(problem, policy, max_steps=80)
        result = engine.run()  # GreedyValidator active throughout
        assert not result.completed
        assert result.delivered == 0

    def test_search_requires_nontrivial_requests(self, mesh4):
        from repro.core.problem import RoutingProblem

        trivial = RoutingProblem.from_pairs(mesh4, [((1, 1), (1, 1))])
        with pytest.raises(ValueError):
            find_greedy_cycle(trivial)

    def test_terminating_instance_returns_none(self, mesh4):
        """A single packet can never cycle (it always advances)."""
        from repro.core.problem import RoutingProblem

        problem = RoutingProblem.from_pairs(mesh4, [((1, 1), (3, 3))])
        assert find_greedy_cycle(problem, max_states=5_000) is None

    def test_two_packets_cannot_livelock(self, mesh4):
        """Whenever two packets are apart they both advance, and they
        cannot stay co-located (distinct arcs lead to distinct nodes),
        so the two-packet no-delivery graph is acyclic."""
        from repro.core.problem import RoutingProblem

        problem = RoutingProblem.from_pairs(
            mesh4, [((2, 2), (4, 4)), ((2, 2), (4, 3))]
        )
        assert find_greedy_cycle(problem, max_states=20_000) is None


class TestSchedulePolicy:
    def test_loop_start_validation(self):
        with pytest.raises(ValueError):
            SchedulePolicy((), loop_start=1)

    def test_non_looping_schedule_exhausts(self):
        policy = SchedulePolicy(({},), loop_start=1)
        with pytest.raises(KeyError):
            policy._fold(5)

    def test_missing_node_raises(self):
        problem = livelock_instance()
        policy = SchedulePolicy(({},), loop_start=0)
        engine = HotPotatoEngine(problem, policy, max_steps=1)
        with pytest.raises(KeyError):
            engine.run()
