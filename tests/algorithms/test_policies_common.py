"""Cross-cutting tests every registered greedy policy must satisfy.

These are the model-level guarantees: termination, full delivery, the
greedy invariant of Definition 6 (checked by the engine validator at
every node of every step), and determinism under a fixed seed.
"""

import pytest

from repro.algorithms import available_policies, make_policy
from repro.core.engine import HotPotatoEngine
from repro.core.trace import record_run, traces_equal
from repro.potential.bounds import theorem20_bound
from repro.workloads import (
    corner_storm,
    quadrant_flood,
    random_many_to_many,
    single_target,
)

GREEDY_POLICIES = sorted(set(available_policies()) - {"blocking-greedy"})


@pytest.mark.parametrize("name", GREEDY_POLICIES)
class TestEveryPolicy:
    def test_routes_random_batch(self, name, mesh8):
        problem = random_many_to_many(mesh8, k=50, seed=50)
        policy = make_policy(name)
        result = HotPotatoEngine(problem, policy, seed=50).run()
        assert result.completed, f"{name} failed to deliver"
        assert result.delivered == 50

    def test_routes_hot_spot(self, name, mesh8):
        problem = single_target(mesh8, k=40, seed=51)
        policy = make_policy(name)
        result = HotPotatoEngine(problem, policy, seed=51).run()
        assert result.completed

    def test_routes_quadrant_flood(self, name, mesh8):
        problem = quadrant_flood(mesh8, seed=52)
        policy = make_policy(name)
        result = HotPotatoEngine(problem, policy, seed=52).run()
        assert result.completed

    def test_routes_corner_storm(self, name, mesh8):
        problem = corner_storm(mesh8, packets_per_corner=2)
        policy = make_policy(name)
        result = HotPotatoEngine(problem, policy, seed=53).run()
        assert result.completed

    def test_deterministic_given_seed(self, name, mesh8):
        problem = random_many_to_many(mesh8, k=40, seed=54)
        first = record_run(problem, make_policy(name), seed=9)
        second = record_run(problem, make_policy(name), seed=9)
        assert traces_equal(first, second)

    def test_within_theorem20_bound(self, name, mesh8):
        """Theorem 20 only covers restricted-preferring algorithms, but
        every reasonable greedy policy lands far below the bound on a
        random batch — a useful regression canary."""
        problem = random_many_to_many(mesh8, k=50, seed=55)
        policy = make_policy(name)
        result = HotPotatoEngine(problem, policy, seed=55).run()
        assert result.total_steps <= theorem20_bound(8, 50)

    def test_greedy_invariant_validated(self, name, mesh8):
        """The engine runs the Definition 6 validator (all registered
        policies declare greediness); a congested run completing means
        the invariant held at every node of every step."""
        problem = random_many_to_many(mesh8, k=120, seed=56)
        policy = make_policy(name)
        assert policy.declares_greedy
        result = HotPotatoEngine(problem, policy, seed=56).run()
        assert result.completed

    def test_three_dimensional_mesh(self, name, mesh3d):
        problem = random_many_to_many(mesh3d, k=40, seed=57)
        policy = make_policy(name)
        result = HotPotatoEngine(problem, policy, seed=57).run()
        assert result.completed
