"""Tests for the closest-first single-target policy."""

import pytest

from repro.algorithms import ClosestFirstPolicy, single_target_time_bound
from repro.core.engine import route
from repro.workloads import ring_of_sources, single_target


class TestBoundFormula:
    def test_values(self):
        assert single_target_time_bound(5, 10) == 15
        assert single_target_time_bound(5, 0) == 0


class TestSingleTargetRuns:
    @pytest.mark.parametrize("k", [5, 20, 40])
    def test_within_dmax_plus_k(self, mesh8, k):
        """Section 6.1: [BTS]'s greedy single-target algorithm matches
        the d_max + k lower bound; closest-first stays within it too."""
        problem = single_target(mesh8, k=k, seed=k)
        result = route(problem, ClosestFirstPolicy(), seed=k)
        assert result.completed
        assert result.total_steps <= single_target_time_bound(
            problem.d_max, k
        )

    def test_ring_absorbs_up_to_degree_per_step(self, mesh8):
        """The target can absorb at most 2d packets per step, so a ring
        of r-distant sources needs at least ceil(k/4) + r - 1 steps."""
        problem = ring_of_sources(mesh8, radius=2)
        k = problem.k
        result = route(problem, ClosestFirstPolicy())
        assert result.completed
        assert result.total_steps >= (k + 3) // 4
        assert result.total_steps <= single_target_time_bound(2, k)

    def test_frontier_packet_never_deflected_by_farther_one(self, mesh8):
        """With closest-first priority the globally nearest packet wins
        every conflict, so some packet is absorbed quickly."""
        problem = single_target(mesh8, k=30, seed=9)
        result = route(problem, ClosestFirstPolicy(), seed=9)
        earliest = min(o.delivered_at for o in result.outcomes)
        nearest = min(o.shortest_distance for o in result.outcomes)
        assert earliest <= nearest + 1

    def test_also_works_on_general_batches(self, mesh8):
        from repro.workloads import random_many_to_many

        problem = random_many_to_many(mesh8, k=50, seed=10)
        result = route(problem, ClosestFirstPolicy(), seed=10)
        assert result.completed
