"""Tests for destination-order priority and the snake walk."""

import pytest

from repro.algorithms import (
    DestinationOrderPolicy,
    brassil_cruz_time_bound,
    snake_order,
    snake_walk_length,
)
from repro.core.engine import route
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


class TestSnakeOrder:
    def test_covers_all_nodes(self, mesh4):
        ranks = snake_order(mesh4)
        assert len(ranks) == 16
        assert sorted(ranks.values()) == list(range(16))

    def test_consecutive_ranks_adjacent(self):
        """The snake is a Hamiltonian path: rank i and i+1 are mesh
        neighbors, so the Brassil–Cruz walk P is well defined."""
        for mesh in (Mesh(2, 4), Mesh(2, 5), Mesh(3, 3)):
            ranks = snake_order(mesh)
            by_rank = {rank: node for node, rank in ranks.items()}
            for rank in range(len(by_rank) - 1):
                assert (
                    mesh.distance(by_rank[rank], by_rank[rank + 1]) == 1
                ), f"break at rank {rank} in {mesh}"

    def test_one_dimensional_snake(self):
        ranks = snake_order(Mesh(1, 5))
        assert ranks == {(i,): i - 1 for i in range(1, 6)}

    def test_walk_length(self, mesh4):
        ranks = snake_order(mesh4)
        by_rank = {rank: node for node, rank in ranks.items()}
        destinations = [by_rank[2], by_rank[9], by_rank[5]]
        assert snake_walk_length(mesh4, destinations) == 7

    def test_walk_length_empty(self, mesh4):
        assert snake_walk_length(mesh4, []) == 0


class TestBound:
    def test_formula(self):
        assert brassil_cruz_time_bound(14, 20, 5) == 14 + 20 + 8
        assert brassil_cruz_time_bound(14, 20, 0) == 0


class TestRuns:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_within_brassil_cruz_bound(self, mesh8, seed):
        problem = random_many_to_many(mesh8, k=40, seed=seed)
        result = route(problem, DestinationOrderPolicy(), seed=seed)
        assert result.completed
        walk = snake_walk_length(
            mesh8, [r.destination for r in problem.requests]
        )
        bound = brassil_cruz_time_bound(mesh8.diameter, walk, problem.k)
        assert result.total_steps <= bound

    def test_lowest_ranked_destination_packet_never_deflected(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=3)
        result = route(problem, DestinationOrderPolicy(), seed=3)
        ranks = snake_order(mesh8)
        # The unique packet with the globally best (destination rank,
        # id) key wins every conflict it is in.
        best = min(
            result.outcomes,
            key=lambda o: (ranks[o.destination], o.packet_id),
        )
        assert best.deflections == 0
