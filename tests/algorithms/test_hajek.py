"""Tests for the fixed-priority (Hajek-style) policy and its bound."""

import pytest

from repro.algorithms import FixedPriorityPolicy, fixed_priority_time_bound
from repro.core.engine import route
from repro.workloads import (
    quadrant_flood,
    random_many_to_many,
    single_target,
)


class TestBoundFormula:
    def test_values(self):
        assert fixed_priority_time_bound(10, 14) == 34
        assert fixed_priority_time_bound(0, 14) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            fixed_priority_time_bound(-1, 5)


class TestLeaderNeverDeflected:
    def test_top_priority_packet_takes_shortest_path(self, mesh8):
        """Packet 0 outranks everyone, so it is never deflected and its
        hop count equals its distance — the core of the [Haj]/[BRS]
        evacuation argument."""
        problem = random_many_to_many(mesh8, k=100, seed=80)
        result = route(problem, FixedPriorityPolicy(), seed=80)
        assert result.completed
        leader = result.outcomes[0]
        assert leader.deflections == 0
        assert leader.hops == leader.shortest_distance


class TestLinearBound:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_random_batches_within_2k_plus_dmax(self, mesh8, seed):
        problem = random_many_to_many(mesh8, k=40, seed=seed)
        result = route(problem, FixedPriorityPolicy(), seed=seed)
        assert result.completed
        assert result.total_steps <= fixed_priority_time_bound(
            problem.k, problem.d_max
        )

    def test_hot_spot_within_bound(self, mesh8):
        problem = single_target(mesh8, k=50, seed=81)
        result = route(problem, FixedPriorityPolicy(), seed=81)
        assert result.total_steps <= fixed_priority_time_bound(50, problem.d_max)

    def test_flood_within_bound(self, mesh8):
        problem = quadrant_flood(mesh8, seed=82)
        result = route(problem, FixedPriorityPolicy(), seed=82)
        assert result.total_steps <= fixed_priority_time_bound(
            problem.k, problem.d_max
        )
