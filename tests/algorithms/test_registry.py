"""Tests for the policy registry."""

import pytest

from repro.algorithms import (
    PlainGreedyPolicy,
    available_policies,
    make_policy,
    register_policy,
)


class TestRegistry:
    def test_known_policies_present(self):
        names = available_policies()
        assert "restricted-priority" in names
        assert "plain-greedy" in names
        assert "fewest-good-directions" in names
        assert "blocking-greedy" in names

    def test_make_policy_fresh_instances(self):
        first = make_policy("plain-greedy")
        second = make_policy("plain-greedy")
        assert first is not second
        assert first.name == "plain-greedy"

    def test_unknown_name_lists_alternatives(self):
        with pytest.raises(KeyError) as excinfo:
            make_policy("does-not-exist")
        assert "restricted-priority" in str(excinfo.value)

    def test_register_custom(self):
        name = "test-custom-policy"
        if name not in available_policies():
            register_policy(name, PlainGreedyPolicy)
        assert isinstance(make_policy(name), PlainGreedyPolicy)

    def test_register_duplicate_rejected(self):
        with pytest.raises(ValueError):
            register_policy("plain-greedy", PlainGreedyPolicy)

    def test_names_sorted(self):
        names = available_policies()
        assert names == sorted(names)
