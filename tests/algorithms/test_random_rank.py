"""Tests for the random-rank ([BNS]-flavor) policy."""

from repro.algorithms import RandomRankPolicy
from repro.algorithms.hajek import fixed_priority_time_bound
from repro.core.engine import HotPotatoEngine, route
from repro.core.trace import record_run, traces_equal
from repro.mesh.hypercube import Hypercube
from repro.workloads import random_many_to_many, single_target


class TestRandomRank:
    def test_routes_batches(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=0)
        result = route(problem, RandomRankPolicy(), seed=0)
        assert result.completed

    def test_reproducible_per_seed(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=1)
        a = record_run(problem, RandomRankPolicy(), seed=5)
        b = record_run(problem, RandomRankPolicy(), seed=5)
        assert traces_equal(a, b)

    def test_different_seeds_draw_different_ranks(self, mesh8):
        problem = single_target(mesh8, k=50, seed=2)
        a = record_run(problem, RandomRankPolicy(), seed=1)
        b = record_run(problem, RandomRankPolicy(), seed=2)
        assert not traces_equal(a, b)

    def test_top_ranked_packet_never_deflected(self, mesh8):
        """Persistent ranks give a true global priority: the best-rank
        packet wins every conflict, so the linear evacuation bound
        holds surely."""
        problem = random_many_to_many(mesh8, k=80, seed=3)
        policy = RandomRankPolicy()
        engine = HotPotatoEngine(problem, policy, seed=3)
        result = engine.run()
        assert result.completed
        best = min(
            result.outcomes, key=lambda o: policy._rank(o.packet_id)
        )
        assert best.deflections == 0
        assert result.total_steps <= fixed_priority_time_bound(
            problem.k, problem.d_max
        )

    def test_single_target_on_hypercube(self):
        """The [BNS] setting: randomized greedy single-target on the
        cube; the d_max + k envelope holds."""
        cube = Hypercube(6)
        problem = single_target(cube, k=40, target=cube.node_of(0), seed=4)
        result = route(problem, RandomRankPolicy(), seed=4)
        assert result.completed
        assert result.total_steps <= problem.d_max + problem.k

    def test_lazy_ranks_for_unknown_packets(self, mesh8):
        """Packets injected by the dynamic engine (ids beyond the
        batch) get ranks drawn lazily."""
        from repro.dynamic import BernoulliTraffic, DynamicEngine

        engine = DynamicEngine(
            mesh8, RandomRankPolicy(), BernoulliTraffic(0.2), seed=5
        )
        stats = engine.run(100)
        assert stats.delivered_count > 0

    def test_declarations(self):
        policy = RandomRankPolicy()
        assert policy.declares_greedy
        assert policy.declares_max_advance
        assert not policy.declares_restricted_priority
