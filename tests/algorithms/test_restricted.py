"""Unit tests for the Section 4 restricted-priority policy."""

import random

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine, route
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.problem import RoutingProblem
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many, single_target


def make_view(mesh, specs, node):
    """specs: list of (source, dest, advanced_last, restricted_last)."""
    packets = []
    for i, (dest, advanced, restricted) in enumerate(specs):
        packet = Packet(id=i, source=node, destination=dest)
        packet.location = node
        packet.advanced_last_step = advanced
        packet.restricted_last_step = restricted
        packets.append(packet)
    return NodeView(mesh, node, 1, packets), packets


class TestPriorities:
    def test_restricted_beats_unrestricted(self):
        mesh = Mesh(2, 6)
        # Both want east; packet 0 is flexible, packet 1 restricted.
        view, _ = make_view(
            mesh,
            [((5, 5), False, False), ((3, 6), False, False)],
            node=(3, 3),
        )
        policy = RestrictedPriorityPolicy()
        policy.prepare(mesh, None, random.Random(0))
        assignment = policy.assign(view)
        assert assignment[1] == Direction(1, 1)

    def test_type_a_beats_type_b_by_default(self):
        mesh = Mesh(2, 6)
        # Both restricted to east; packet 0 type B (fresh), packet 1
        # type A (advanced while restricted).
        view, _ = make_view(
            mesh,
            [((3, 6), False, False), ((3, 5), True, True)],
            node=(3, 3),
        )
        policy = RestrictedPriorityPolicy(prefer_type_a=True)
        policy.prepare(mesh, None, random.Random(0))
        assignment = policy.assign(view)
        assert assignment[1] == Direction(1, 1)  # type A advances
        assert assignment[0] != Direction(1, 1)

    def test_type_b_wins_when_inverted(self):
        mesh = Mesh(2, 6)
        view, _ = make_view(
            mesh,
            [((3, 6), False, False), ((3, 5), True, True)],
            node=(3, 3),
        )
        policy = RestrictedPriorityPolicy(prefer_type_a=False)
        policy.prepare(mesh, None, random.Random(0))
        assignment = policy.assign(view)
        assert assignment[0] == Direction(1, 1)  # type B advances

    def test_declarations(self):
        policy = RestrictedPriorityPolicy()
        assert policy.declares_greedy
        assert policy.declares_restricted_priority
        assert policy.declares_max_advance


class TestRuns:
    @pytest.mark.parametrize("prefer_type_a", [True, False])
    def test_congested_run_validated(self, mesh8, prefer_type_a):
        """The engine's RestrictedPriorityValidator confirms
        Definition 18 at every node of every step."""
        problem = random_many_to_many(mesh8, k=150, seed=70)
        policy = RestrictedPriorityPolicy(prefer_type_a=prefer_type_a)
        result = HotPotatoEngine(problem, policy, seed=70).run()
        assert result.completed

    def test_hot_spot_validated(self, mesh8):
        problem = single_target(mesh8, k=60, seed=71)
        result = route(problem, RestrictedPriorityPolicy(), seed=71)
        assert result.completed

    def test_restricted_packet_near_destination_is_fast(self, mesh8):
        """The anti-overstructuring motivation of Section 1: a packet
        that starts one hop from its destination arrives almost
        immediately even among heavy unrelated traffic."""
        pairs = [((4, 4), (4, 5))]  # distance 1
        rng = random.Random(72)
        nodes = [n for n in mesh8.nodes()]
        used = {(4, 4): 1}
        while len(pairs) < 60:
            s = rng.choice(nodes)
            if used.get(s, 0) >= mesh8.degree(s):
                continue
            d = rng.choice(nodes)
            if d == s:
                continue
            used[s] = used.get(s, 0) + 1
            pairs.append((s, d))
        problem = RoutingProblem.from_pairs(mesh8, pairs)
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=72
        )
        result = engine.run()
        assert result.completed
        assert result.outcomes[0].delivered_at <= 5
