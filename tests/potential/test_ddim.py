"""Tests for the d-dimensional potential testbed."""

import pytest

from repro.algorithms import (
    FewestGoodDirectionsPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.engine import HotPotatoEngine
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.potential.ddim import NaiveLiftedPotential, PaidDeflectionPotential
from repro.potential.property8 import check_property8
from repro.workloads import random_many_to_many, single_target


def run_with(tracker, problem, seed=3):
    engine = HotPotatoEngine(
        problem,
        FewestGoodDirectionsPolicy(),
        seed=seed,
        observers=[tracker],
    )
    result = engine.run()
    assert result.completed
    return tracker


class TestTwoDimensionalReduction:
    def test_naive_lift_equals_paper_potential_in_2d(self, mesh8):
        """On 2-D meshes the lift *is* the Section 4.2 function: zero
        Property 8 violations under the in-class policy."""
        problem = single_target(mesh8, k=40, seed=4)
        tracker = NaiveLiftedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=4,
            observers=[tracker],
        )
        engine.run()
        assert check_property8(tracker.node_drops, 2) == []
        assert tracker.is_monotone_nonincreasing()


class TestThreeDimensionalFailure:
    def test_naive_lift_fails_property8_on_hot_spot(self, mesh3d):
        """The documented counterexample realizes: deflections of
        multi-good-direction packets go uncompensated."""
        mesh = Mesh(3, 5)
        problem = single_target(mesh, k=80, seed=2)
        tracker = run_with(NaiveLiftedPotential(), problem)
        violations = check_property8(tracker.node_drops, 3)
        assert len(violations) > 0

    def test_paid_deflections_reduce_but_do_not_fix(self):
        """The simplest 'compensate your victims' repair helps but
        does not reach Property 8 — the gap the [BHS] construction's
        complexity exists to close."""
        mesh = Mesh(3, 5)
        problem = single_target(mesh, k=80, seed=2)
        naive = run_with(NaiveLiftedPotential(), problem)
        paid = run_with(PaidDeflectionPotential(), problem)
        naive_violations = len(check_property8(naive.node_drops, 3))
        paid_violations = len(check_property8(paid.node_drops, 3))
        assert 0 < paid_violations < naive_violations

    def test_low_conflict_runs_are_clean(self):
        """Without heavy multi-packet conflicts the lift behaves: the
        failure is specifically about crowded nodes."""
        mesh = Mesh(3, 5)
        problem = random_many_to_many(mesh, k=20, seed=5)
        tracker = run_with(NaiveLiftedPotential(), problem)
        assert check_property8(tracker.node_drops, 3) == []


class TestGuards:
    def test_rejects_torus(self):
        problem = random_many_to_many(Torus(2, 6), k=5, seed=0)
        tracker = NaiveLiftedPotential()
        engine = HotPotatoEngine(
            problem,
            FewestGoodDirectionsPolicy(),
            observers=[tracker],
        )
        with pytest.raises(ConfigurationError):
            engine.run()

    def test_never_strict(self):
        assert NaiveLiftedPotential().strict is False
        assert PaidDeflectionPotential().strict is False
