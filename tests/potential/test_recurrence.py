"""Tests for the numerical Theorem 17 proof machinery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.potential.bounds import theorem17_bound
from repro.potential.recurrence import (
    claim16_b0,
    decay_steps,
    equation6_gap,
    guaranteed_two_step_drop,
    is_feasible_bad_count,
    minimum_step_loss,
    verify_claim16_case2,
)


class TestDecaySteps:
    def test_zero_potential_is_immediate(self):
        assert decay_steps(0.0, 10, 2) == 0

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            decay_steps(10, 0, 2)
        with pytest.raises(ValueError):
            decay_steps(-1, 10, 2)
        with pytest.raises(ValueError):
            decay_steps(10, 10, 0)

    @given(
        st.integers(2, 4),
        st.integers(1, 500),
        st.integers(2, 64),
    )
    @settings(max_examples=80, deadline=None)
    def test_recurrence_below_closed_form(self, dimension, k, side):
        """Iterating the Lemma 15 recurrence from Phi(0) = k*M never
        needs more steps than Theorem 17's closed form allows."""
        M = 4 * side
        steps = decay_steps(k * M, M, dimension)
        assert steps <= theorem17_bound(dimension, k, M) + 2

    def test_monotone_in_phi0(self):
        M = 32
        small = decay_steps(100, M, 2)
        large = decay_steps(1000, M, 2)
        assert small <= large

    def test_d1_is_linear(self):
        """In one dimension the recurrence drops a constant per two
        steps: (2)^1 * (phi/2M)^0 = 2."""
        assert decay_steps(100, 50, 1) == 100


class TestEquation6:
    def test_gap_signs(self):
        L = 100
        assert equation6_gap(0, L, 2) > 0
        assert equation6_gap(L, L, 2) < 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            equation6_gap(-1, 10, 2)


class TestClaim16:
    def test_zero_load(self):
        assert claim16_b0(0, 2) == 0.0

    def test_balance_point_solves_equation(self):
        b0 = claim16_b0(100, 2)
        assert abs(equation6_gap(b0, 100, 2)) < 1e-6

    @given(st.integers(2, 5), st.integers(1, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_b0_at_least_half_of_L_in_case_1(self, dimension, L):
        """The paper's case 1 (L >= 4d): the continuous balance point
        of equation (6) is at least L/2."""
        if L < 4 * dimension:
            L += 4 * dimension  # shift into the case-1 regime
        b0 = claim16_b0(float(L), dimension)
        assert b0 >= L / 2 - 1e-6

    def test_continuous_relaxation_fails_below_4d(self):
        """The reason the paper needs the case analysis at all: for
        L < 4d the continuous B_0 genuinely drops below L/2, so only
        the discrete structure (a bad node holds >= d+1 packets)
        rescues the claim."""
        assert claim16_b0(5.0, 2) < 2.5
        assert claim16_b0(8.0, 3) < 4.0

    @given(st.integers(2, 4), st.integers(1, 10_000))
    @settings(max_examples=100, deadline=None)
    def test_equation7_consequence_case1(self, dimension, L):
        """For L >= 4d: max(L - B, surface(B)) at the balance point
        beats (2d)^(1/d) * (L/2)^((d-1)/d)."""
        d = dimension
        if L < 4 * d:
            L += 4 * d
        guarantee = guaranteed_two_step_drop(float(L), d)
        b0 = claim16_b0(float(L), d)
        minimum = max(
            L - b0, (2 * d) ** (1 / d) * b0 ** ((d - 1) / d)
        )
        assert minimum >= guarantee - 1e-6

    @pytest.mark.parametrize("dimension", [2, 3, 4, 5])
    def test_case2_reconstruction_holds(self, dimension):
        """The reconstructed 'tedious case analysis': for every small
        load and every feasible bad-packet count, the discrete two-step
        guarantee beats the equation-(7) target."""
        for L in range(0, 6 * dimension + 1):
            assert verify_claim16_case2(L, dimension) == []

    def test_rejects_negative_load(self):
        with pytest.raises(ValueError):
            claim16_b0(-1, 2)
        with pytest.raises(ValueError):
            guaranteed_two_step_drop(-1, 2)
        with pytest.raises(ValueError):
            verify_claim16_case2(-1, 2)


class TestDiscreteStructure:
    def test_feasible_bad_counts_2d(self):
        """d=2: bad nodes hold 3 or 4 packets, so feasible counts are
        0, 3, 4, 6, 7, 8, 9, ..."""
        feasible = [
            B for B in range(0, 13) if is_feasible_bad_count(B, 2)
        ]
        assert feasible == [0, 3, 4, 6, 7, 8, 9, 10, 11, 12]

    def test_small_counts_infeasible(self):
        for d in (2, 3, 4):
            for B in range(1, d + 1):
                assert not is_feasible_bad_count(B, d)

    def test_minimum_step_loss_values(self):
        # d=2: cost 1,2 for loads 1,2; 1,0 for loads 3,4.
        assert minimum_step_loss(0, 2) == 0
        assert minimum_step_loss(1, 2) == 1
        assert minimum_step_loss(4, 2) == 0  # one full bad node
        assert minimum_step_loss(8, 2) == 0  # two full bad nodes
        assert minimum_step_loss(5, 2) == 1  # 4 + 1
        assert minimum_step_loss(2, 2) == 2

    def test_minimum_step_loss_rejects_negative(self):
        with pytest.raises(ValueError):
            minimum_step_loss(-1, 2)
