"""Tests for the Section 4.2 potential function rules 1-4."""

import pytest

from repro.algorithms import (
    FixedPriorityPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.engine import HotPotatoEngine
from repro.core.problem import RoutingProblem
from repro.exceptions import ConfigurationError
from repro.mesh.torus import Torus
from repro.potential.restricted import RestrictedPotential
from repro.workloads import (
    quadrant_flood,
    random_many_to_many,
    saturated_load,
    single_target,
)


def run_with_potential(problem, policy, seed=0, strict=True):
    tracker = RestrictedPotential(strict=strict)
    engine = HotPotatoEngine(
        problem, policy, seed=seed, observers=[tracker], record_steps=True
    )
    result = engine.run()
    return tracker, result


class TestInitialization:
    def test_rule_1_initial_additional_potential_is_2n(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=100)
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), observers=[tracker]
        )
        engine._start()
        assert all(tracker.C[p] == 16 for p in range(10))
        assert tracker.M == 32

    def test_initial_phi_is_distance_plus_2n(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (4, 5))])
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), observers=[tracker]
        )
        engine._start()
        assert tracker.phi[0] == 7 + 16

    def test_trivial_request_starts_at_zero(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((2, 2), (2, 2))])
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), observers=[tracker]
        )
        engine._start()
        assert tracker.phi[0] == 0.0
        assert tracker.C[0] == 0.0

    def test_rejects_torus(self):
        problem = random_many_to_many(Torus(2, 8), k=5, seed=0)
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), observers=[tracker]
        )
        with pytest.raises(ConfigurationError):
            engine.run()

    def test_rejects_3d(self, mesh3d):
        problem = random_many_to_many(mesh3d, k=5, seed=0)
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), observers=[tracker]
        )
        with pytest.raises(ConfigurationError):
            engine.run()


class TestRules:
    def test_rule_4_delivered_packets_have_zero_potential(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=101)
        tracker, result = run_with_potential(
            problem, RestrictedPriorityPolicy(), seed=101
        )
        assert result.completed
        assert all(value == 0.0 for value in tracker.phi.values())
        assert tracker.total == 0.0

    def test_rule_3a_type_a_drops_two_per_step(self, mesh8):
        """A lone restricted packet advancing along a row: C drops by 2
        every step after the first (when it becomes type A)."""
        problem = RoutingProblem.from_pairs(mesh8, [((3, 1), (3, 6))])
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            observers=[tracker],
            record_steps=True,
        )
        # Step 0: fresh packet is type B; after advancing it becomes
        # type A, so C stays 2n after step 0... rule 2 applies only if
        # the packet is *not* type A after the step.  After step 0 the
        # packet advanced while restricted and is still restricted:
        # type A, so rule 3(a) fires already at step 0.
        engine.step()
        assert tracker.C[0] == 16 - 2
        engine.step()
        assert tracker.C[0] == 16 - 4

    def test_rule_2_reset_after_deflection(self, mesh8):
        """A type-A packet that is deflected becomes type B and its
        additional potential resets to 2n."""
        # Two restricted packets share the east arc for several steps.
        problem = RoutingProblem.from_pairs(
            mesh8, [((3, 1), (3, 7)), ((3, 1), (3, 8))]
        )
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            observers=[tracker],
            record_steps=True,
        )
        engine.step()
        # One advanced (now type A, C=14), the loser was deflected
        # (type B next step, C=16).
        values = sorted(tracker.C.values())
        assert values == [14.0, 16.0]

    def test_rule_3b_switch_fires_with_type_b_priority(self, mesh8):
        """With prefer_type_a=False a type-B packet deflects a type-A
        packet and inherits its (smaller) additional potential."""
        problem = single_target(mesh8, k=30, seed=102)
        tracker, result = run_with_potential(
            problem, RestrictedPriorityPolicy(prefer_type_a=False), seed=102
        )
        assert result.completed
        assert tracker.switch_count > 0

    def test_switch_rare_with_type_a_priority(self, mesh8):
        problem = single_target(mesh8, k=30, seed=102)
        tracker, result = run_with_potential(
            problem, RestrictedPriorityPolicy(prefer_type_a=True), seed=102
        )
        assert tracker.switch_count == 0


class TestInvariants:
    WORKLOADS = [
        ("random", lambda mesh: random_many_to_many(mesh, k=100, seed=103)),
        ("hotspot", lambda mesh: single_target(mesh, k=50, seed=104)),
        ("flood", lambda mesh: quadrant_flood(mesh, seed=105)),
        ("saturated", lambda mesh: saturated_load(mesh, per_node=2, seed=106)),
    ]

    @pytest.mark.parametrize("label,factory", WORKLOADS)
    @pytest.mark.parametrize("prefer_type_a", [True, False])
    def test_strict_invariants_hold(self, mesh8, label, factory, prefer_type_a):
        """phi in [0, 4n], C in [2, 2n] while in flight, at most one
        type-A victim per arc, deflectors of type A are type B — all
        asserted inside the strict tracker."""
        problem = factory(mesh8)
        tracker, result = run_with_potential(
            problem,
            RestrictedPriorityPolicy(prefer_type_a=prefer_type_a),
            seed=107,
        )
        assert result.completed  # and no AssertionError was raised

    def test_monotone_nonincreasing(self, mesh8):
        problem = random_many_to_many(mesh8, k=80, seed=108)
        tracker, result = run_with_potential(
            problem, RestrictedPriorityPolicy(), seed=108
        )
        assert tracker.is_monotone_nonincreasing()

    def test_phi_history_length(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=109)
        tracker, result = run_with_potential(
            problem, RestrictedPriorityPolicy(), seed=109
        )
        # Phi recorded at time 0 and after every step.
        assert len(tracker.phi_history) == len(result.step_metrics) + 1
        assert tracker.phi_history[-1] == 0.0

    def test_initial_total_bounded_by_kM(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=110)
        tracker, _ = run_with_potential(
            problem, RestrictedPriorityPolicy(), seed=110
        )
        assert tracker.initial_total <= problem.k * tracker.M

    def test_non_strict_mode_observes_out_of_class_policy(self, mesh8):
        """Fixed-priority is greedy but not restricted-preferring; the
        potential may increase, which non-strict mode tolerates."""
        problem = random_many_to_many(mesh8, k=100, seed=111)
        tracker = RestrictedPotential(strict=False)
        engine = HotPotatoEngine(
            problem,
            FixedPriorityPolicy(),
            seed=111,
            observers=[tracker],
            record_steps=True,
        )
        result = engine.run()
        assert result.completed
        assert tracker.phi_history[-1] == 0.0
