"""Tests for good/bad node classification (Definition 9)."""

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.metrics import StepRecord
from repro.potential.classification import classify_nodes, node_loads
from repro.workloads import random_many_to_many, single_target
from tests.core.test_metrics import make_info


class TestClassification:
    def test_bad_iff_more_than_d_packets(self):
        infos = {
            0: make_info(0, (1, 1), (2, 1), 5, 4),
            1: make_info(1, (1, 1), (1, 2), 5, 6),
            2: make_info(2, (1, 1), (2, 1), 5, 4),
            3: make_info(3, (3, 3), (3, 4), 2, 1),
        }
        record = StepRecord(step=0, infos=infos)
        classification = classify_nodes(record, dimension=2)
        assert classification.bad_nodes == {(1, 1)}  # 3 > d = 2
        assert classification.b == 3
        assert classification.g == 1
        assert classification.total == 4

    def test_exactly_d_packets_is_good(self):
        infos = {
            0: make_info(0, (1, 1), (2, 1), 5, 4),
            1: make_info(1, (1, 1), (1, 2), 5, 6),
        }
        record = StepRecord(step=0, infos=infos)
        classification = classify_nodes(record, dimension=2)
        assert classification.bad_nodes == set()
        assert classification.g == 2

    def test_empty_record(self):
        record = StepRecord(step=0, infos={})
        classification = classify_nodes(record, dimension=2)
        assert classification.total == 0
        assert classification.b == 0

    def test_node_loads(self):
        infos = {
            0: make_info(0, (1, 1), (2, 1), 5, 4),
            1: make_info(1, (1, 1), (1, 2), 5, 6),
            2: make_info(2, (2, 2), (2, 3), 3, 2),
        }
        record = StepRecord(step=0, infos=infos)
        assert node_loads(record) == {(1, 1): 2, (2, 2): 1}


class TestAgainstEngineMetrics:
    def test_matches_engine_b_and_g(self, mesh8):
        """classify_nodes on records agrees with the engine's cheap
        per-step metrics."""
        problem = single_target(mesh8, k=50, seed=130)
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=130,
            record_steps=True,
        )
        result = engine.run()
        for record, metrics in zip(result.records, result.step_metrics):
            classification = classify_nodes(record, 2)
            assert classification.b == metrics.b
            assert classification.g == metrics.g
            assert len(classification.bad_nodes) == metrics.bad_nodes

    def test_hot_spot_creates_bad_nodes(self, mesh8):
        problem = single_target(mesh8, k=60, seed=131)
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=131, record_steps=True
        )
        result = engine.run()
        assert any(m.bad_nodes > 0 for m in result.step_metrics)

    def test_sparse_run_all_good(self, mesh8):
        problem = random_many_to_many(mesh8, k=3, seed=132)
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=132, record_steps=True
        )
        result = engine.run()
        assert all(m.bad_nodes == 0 for m in result.step_metrics)
