"""Unit tests for the closed-form bounds of Theorems 17/20 and Section 5."""

import math

import pytest

from repro.potential.bounds import (
    four_per_node_remark_bound,
    permutation_remark_bound,
    phase_decay_bound,
    restricted_potential_M,
    section5_bound,
    theorem17_bound,
    theorem20_bound,
    trivial_lower_bound,
)


class TestTheorem17:
    def test_formula(self):
        # (4d)^(1-1/d) * k^(1/d) * M with d=2, k=16, M=10:
        # 8^(1/2) * 4 * 10.
        assert theorem17_bound(2, 16, 10) == pytest.approx(
            math.sqrt(8) * 4 * 10
        )

    def test_d3(self):
        assert theorem17_bound(3, 27, 1) == pytest.approx(
            12 ** (2 / 3) * 3
        )

    def test_zero_packets(self):
        assert theorem17_bound(2, 0, 100) == 0.0

    def test_rejects_bad_input(self):
        with pytest.raises(ValueError):
            theorem17_bound(0, 5, 1)
        with pytest.raises(ValueError):
            theorem17_bound(2, -1, 1)
        with pytest.raises(ValueError):
            theorem17_bound(2, 1, -1)


class TestTheorem20:
    def test_is_theorem17_with_M_4n(self):
        for side in (4, 8, 16):
            for k in (1, 10, 100):
                assert theorem20_bound(side, k) == pytest.approx(
                    theorem17_bound(2, k, restricted_potential_M(side))
                )

    def test_headline_form(self):
        # 8 * sqrt(2) * n * sqrt(k).
        assert theorem20_bound(10, 25) == pytest.approx(
            8 * math.sqrt(2) * 10 * 5
        )

    def test_zero_packets(self):
        assert theorem20_bound(8, 0) == 0.0

    def test_M_rejects_tiny_side(self):
        with pytest.raises(ValueError):
            restricted_potential_M(1)


class TestRemarkBounds:
    def test_full_load_is_8_n_squared(self):
        # The parity split: 8*sqrt(2)*n*sqrt(n^2/2) == 8 n^2.
        for side in (4, 8, 16):
            split = theorem20_bound(side, side * side // 2)
            assert permutation_remark_bound(side) == pytest.approx(split)

    def test_four_per_node_is_16_n_squared(self):
        for side in (4, 8):
            split = theorem20_bound(side, 4 * side * side // 2)
            assert four_per_node_remark_bound(side) == pytest.approx(split)


class TestSection5:
    def test_formula(self):
        d, n, k = 3, 4, 8
        expected = (
            4 ** (d + 1 - 1 / d)
            * d ** (1 - 1 / d)
            * k ** (1 / d)
            * n ** (d - 1)
        )
        assert section5_bound(d, n, k) == pytest.approx(expected)

    def test_d2_is_looser_than_theorem20(self):
        """Section 5's generic constants are worse than the dedicated
        2-D analysis — the paper notes the specialization pays off."""
        assert section5_bound(2, 8, 50) > theorem20_bound(8, 50)

    def test_zero_packets(self):
        assert section5_bound(3, 4, 0) == 0.0

    def test_rejects_d1(self):
        with pytest.raises(ValueError):
            section5_bound(1, 4, 5)


class TestAuxiliary:
    def test_trivial_lower_bound(self):
        assert trivial_lower_bound(13) == 13

    def test_phase_decay_bound(self):
        # (2d)^((d-1)/d) * phi0^(1/d) * (2M)^((d-1)/d), d=2:
        # 2 * sqrt(phi0) * sqrt(2M).
        assert phase_decay_bound(100, 32, 2) == pytest.approx(
            2 * 10 * math.sqrt(64)
        )

    def test_phase_decay_dominated_by_theorem17_worst_case(self):
        """With phi0 = k*M the instance bound equals Theorem 17's."""
        k, M, d = 50, 32, 2
        assert phase_decay_bound(k * M, M, d) == pytest.approx(
            theorem17_bound(d, k, M)
        )

    def test_phase_decay_zero(self):
        assert phase_decay_bound(0, 32, 2) == 0.0

    def test_phase_decay_rejects_negative(self):
        with pytest.raises(ValueError):
            phase_decay_bound(-1, 32, 2)
