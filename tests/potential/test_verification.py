"""Tests for the run-level verification of the full analysis chain."""

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.potential.verification import verify_restricted_run
from repro.workloads import (
    corner_storm,
    quadrant_flood,
    random_many_to_many,
    random_permutation,
    saturated_load,
    single_target,
)


WORKLOADS = [
    ("random-60", lambda mesh: random_many_to_many(mesh, k=60, seed=150)),
    ("hotspot", lambda mesh: single_target(mesh, k=50, seed=151)),
    ("flood", lambda mesh: quadrant_flood(mesh, seed=152)),
    ("permutation", lambda mesh: random_permutation(mesh, seed=153)),
    ("saturated", lambda mesh: saturated_load(mesh, per_node=2, seed=154)),
    ("corner", lambda mesh: corner_storm(mesh, packets_per_corner=2)),
]


class TestFullChain:
    @pytest.mark.parametrize("label,factory", WORKLOADS)
    @pytest.mark.parametrize("prefer_type_a", [True, False])
    def test_all_inequalities_hold(self, mesh8, label, factory, prefer_type_a):
        """Corollary 10, Lemmas 12/14/15, Property 8, monotonicity, and
        the Theorem 20 bound — audited on a live run."""
        problem = factory(mesh8)
        report = verify_restricted_run(
            problem,
            RestrictedPriorityPolicy(prefer_type_a=prefer_type_a),
            seed=5,
        )
        assert report.result.completed
        assert report.monotone
        assert report.property8_violations == []
        assert report.corollary10_violations == []
        assert report.lemma12_violations == []
        assert report.lemma14_violations == []
        assert report.lemma15_violations == []
        assert report.all_hold
        assert 0 < report.bound_ratio < 1


class TestReportContents:
    def test_bgf_series_shape(self, mesh8):
        problem = single_target(mesh8, k=40, seed=155)
        report = verify_restricted_run(
            problem, RestrictedPriorityPolicy(), seed=6
        )
        assert len(report.bgf_series) == report.result.total_steps
        for step, b, f in report.bgf_series:
            assert b >= 0 and f >= 0

    def test_hot_spot_produces_surface_activity(self, mesh8):
        problem = single_target(mesh8, k=60, seed=156)
        report = verify_restricted_run(
            problem, RestrictedPriorityPolicy(), seed=7
        )
        assert any(f > 0 for _, _, f in report.bgf_series)

    def test_phi_decays_to_zero(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=157)
        report = verify_restricted_run(
            problem, RestrictedPriorityPolicy(), seed=8
        )
        assert report.phi_history[0] > 0
        assert report.phi_history[-1] == 0.0

    def test_summary_mentions_status(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=158)
        report = verify_restricted_run(
            problem, RestrictedPriorityPolicy(), seed=9
        )
        assert "ALL INEQUALITIES HOLD" in report.summary()

    def test_theorem20_limit_matches_bound(self, mesh8):
        from repro.potential.bounds import theorem20_bound

        problem = random_many_to_many(mesh8, k=25, seed=159)
        report = verify_restricted_run(
            problem, RestrictedPriorityPolicy(), seed=10
        )
        assert report.theorem20_limit == theorem20_bound(8, 25)

    def test_switch_counter_propagated(self, mesh8):
        problem = single_target(mesh8, k=40, seed=160)
        report = verify_restricted_run(
            problem,
            RestrictedPriorityPolicy(prefer_type_a=False),
            seed=11,
        )
        assert report.switch_count > 0


class TestLargerMesh:
    def test_16x16_permutation(self):
        from repro.mesh.topology import Mesh

        mesh = Mesh(2, 16)
        problem = random_permutation(mesh, seed=161)
        report = verify_restricted_run(
            problem, RestrictedPriorityPolicy(), seed=12
        )
        assert report.all_hold
