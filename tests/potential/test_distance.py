"""Tests for the pure-distance potential tracker."""

from repro.algorithms import PlainGreedyPolicy, RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.problem import RoutingProblem
from repro.potential.distance import DistancePotential
from repro.potential.property8 import check_property8
from repro.workloads import random_many_to_many, single_target


def run_with_distance(problem, policy, seed=0):
    tracker = DistancePotential()
    engine = HotPotatoEngine(
        problem, policy, seed=seed, observers=[tracker], record_steps=True
    )
    result = engine.run()
    return tracker, result


class TestDistancePotential:
    def test_initial_is_total_distance(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=170)
        tracker, _ = run_with_distance(problem, PlainGreedyPolicy(), seed=170)
        assert tracker.initial_total == problem.total_distance

    def test_reaches_zero_on_completion(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=171)
        tracker, result = run_with_distance(
            problem, PlainGreedyPolicy(), seed=171
        )
        assert result.completed
        assert tracker.total == 0.0

    def test_single_packet_drops_one_per_step(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (1, 5))])
        tracker, _ = run_with_distance(problem, PlainGreedyPolicy())
        assert tracker.phi_history == [4.0, 3.0, 2.0, 1.0, 0.0]

    def test_M_is_diameter(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=172)
        tracker, _ = run_with_distance(problem, PlainGreedyPolicy(), seed=172)
        assert tracker.M == mesh8.diameter

    def test_change_equals_deflections_minus_advances(self, mesh8):
        """Each step Phi_dist changes by (deflected - advancing)."""
        problem = single_target(mesh8, k=40, seed=173)
        tracker, result = run_with_distance(
            problem, RestrictedPriorityPolicy(), seed=173
        )
        for metrics, before, after in zip(
            result.step_metrics,
            tracker.phi_history,
            tracker.phi_history[1:],
        ):
            assert after - before == metrics.deflected - metrics.advancing

    def test_does_not_satisfy_property8_under_congestion(self, mesh8):
        """The motivation for the C_p term: distance alone fails
        Property 8 as soon as a node's deflections eat the slack."""
        problem = single_target(mesh8, k=60, seed=174)
        tracker, _ = run_with_distance(
            problem, RestrictedPriorityPolicy(), seed=174
        )
        violations = check_property8(tracker.node_drops, dimension=2)
        assert violations  # the naive potential breaks
