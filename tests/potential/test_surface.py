"""Tests for surface arcs (Definition 11) and Lemma 14."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.classification import classify_nodes
from repro.potential.surface import (
    check_lemma_14,
    class_volumes,
    count_surface_arcs,
    count_surface_arcs_via_volumes,
    f_of_t,
    lemma_14_lower_bound,
    surface_arcs,
)
from repro.workloads import single_target, saturated_load


class TestSurfaceArcsDefinition:
    def test_single_interior_bad_node(self):
        """An isolated bad node in the interior has 2d surface arcs."""
        mesh = Mesh(2, 8)
        assert count_surface_arcs(mesh, {(4, 4)}) == 4

    def test_bad_node_on_edge_counts_out_of_mesh_arcs(self):
        """Definition 11: arcs leading out of the mesh count too, so a
        corner bad node still has 2d surface arcs."""
        mesh = Mesh(2, 8)
        assert count_surface_arcs(mesh, {(1, 1)}) == 4

    def test_adjacent_bad_nodes_are_not_2neighbors(self):
        """Two adjacent bad nodes are in different equivalence classes,
        so they shield nothing from each other: 4 + 4 arcs."""
        mesh = Mesh(2, 8)
        assert count_surface_arcs(mesh, {(4, 4), (4, 5)}) == 8

    def test_2neighbor_bad_pair_shields_two_arcs(self):
        """Bad 2-neighbors hide one face each: 2*4 - 2 = 6."""
        mesh = Mesh(2, 8)
        assert count_surface_arcs(mesh, {(4, 4), (4, 6)}) == 6

    def test_enumeration_matches_count(self):
        mesh = Mesh(2, 8)
        bad = {(4, 4), (4, 6), (2, 2)}
        assert len(surface_arcs(mesh, bad)) == count_surface_arcs(mesh, bad)

    def test_empty(self):
        mesh = Mesh(2, 8)
        assert count_surface_arcs(mesh, set()) == 0


class TestGeometricCorrespondence:
    """F(t) equals the total surface of the per-class volumes — the
    Section 3.2 geometric interpretation, computed both ways."""

    @given(st.integers(0, 10_000), st.integers(0, 20))
    @settings(max_examples=60, deadline=None)
    def test_definition_equals_volume_surface(self, seed, num_bad):
        mesh = Mesh(2, 8)
        rng = random.Random(seed)
        nodes = [node for node in mesh.nodes()]
        bad = set(rng.sample(nodes, min(num_bad, len(nodes))))
        assert count_surface_arcs(mesh, bad) == (
            count_surface_arcs_via_volumes(bad)
        )

    @given(st.integers(0, 10_000), st.integers(0, 15))
    @settings(max_examples=30, deadline=None)
    def test_three_dimensional_correspondence(self, seed, num_bad):
        mesh = Mesh(3, 4)
        rng = random.Random(seed)
        nodes = [node for node in mesh.nodes()]
        bad = set(rng.sample(nodes, min(num_bad, len(nodes))))
        assert count_surface_arcs(mesh, bad) == (
            count_surface_arcs_via_volumes(bad)
        )

    def test_class_volumes_partition(self):
        bad = {(1, 1), (1, 3), (2, 2), (4, 4)}
        volumes = class_volumes(bad)
        assert sum(len(v) for v in volumes.values()) == len(bad)


class TestLemma14:
    def test_lower_bound_formula(self):
        # (2d)^(1/d) * B^((d-1)/d) with d=2: 2 * sqrt(B).
        assert lemma_14_lower_bound(16, 2) == pytest.approx(8.0)
        assert lemma_14_lower_bound(0, 2) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            lemma_14_lower_bound(-1, 2)

    @given(st.integers(0, 10_000), st.integers(1, 25))
    @settings(max_examples=60, deadline=None)
    def test_holds_for_arbitrary_bad_sets(self, seed, num_bad):
        """Lemma 14 with the worst case B = 2d per bad node: F >=
        (2d)^(1/d) * B^((d-1)/d).  We check the strongest form: every
        bad node carrying the full 2d packets."""
        mesh = Mesh(2, 10)
        rng = random.Random(seed)
        nodes = [node for node in mesh.nodes()]
        bad = set(rng.sample(nodes, min(num_bad, len(nodes))))
        f = count_surface_arcs(mesh, bad)
        b = 4 * len(bad)  # maximal packets in bad nodes
        assert f >= lemma_14_lower_bound(b, 2) - 1e-9

    def test_on_real_hot_spot_run(self, mesh8):
        problem = single_target(mesh8, k=60, seed=140)
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=140, record_steps=True
        )
        result = engine.run()
        saw_bad = False
        for record in result.records:
            f, bound, holds = check_lemma_14(mesh8, record)
            assert holds
            if bound > 0:
                saw_bad = True
        assert saw_bad  # the workload actually exercised the lemma

    def test_f_of_t_convenience(self, mesh8):
        problem = saturated_load(mesh8, per_node=3, seed=141)
        engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=141, record_steps=True
        )
        result = engine.run()
        record = result.records[0]
        classification = classify_nodes(record, 2)
        assert f_of_t(mesh8, record) == count_surface_arcs(
            mesh8, classification.bad_nodes
        )
