"""Test package."""
