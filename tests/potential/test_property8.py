"""Tests for the Property 8 checker (and Lemma 19 empirically)."""

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.potential.base import NodeDrop
from repro.potential.property8 import (
    check_property8,
    minimum_margin,
    property8_required_drop,
)
from repro.potential.restricted import RestrictedPotential
from repro.workloads import (
    quadrant_flood,
    random_many_to_many,
    saturated_load,
    single_target,
)


class TestRequiredDrop:
    def test_good_node_pays_per_packet(self):
        # l <= d: lose l.
        assert property8_required_drop(0, 2) == 0
        assert property8_required_drop(1, 2) == 1
        assert property8_required_drop(2, 2) == 2

    def test_bad_node_pays_per_missing_packet(self):
        # l > d: lose 2d - l.
        assert property8_required_drop(3, 2) == 1
        assert property8_required_drop(4, 2) == 0

    def test_d3(self):
        assert property8_required_drop(3, 3) == 3
        assert property8_required_drop(5, 3) == 1
        assert property8_required_drop(6, 3) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            property8_required_drop(-1, 2)


class TestChecker:
    def test_detects_violation(self):
        drops = [[NodeDrop(step=0, node=(1, 1), load=2, drop=1.0)]]
        violations = check_property8(drops, dimension=2)
        assert len(violations) == 1
        assert violations[0].required == 2
        assert "node (1, 1)" in str(violations[0])

    def test_passes_sufficient_drop(self):
        drops = [[NodeDrop(step=0, node=(1, 1), load=2, drop=2.0)]]
        assert check_property8(drops, dimension=2) == []

    def test_bad_node_with_full_load_needs_nothing(self):
        drops = [[NodeDrop(step=0, node=(1, 1), load=4, drop=-3.0)]]
        # 2d - l = 0; a full node may even gain... but not more than
        # required allows.  drop=-3 < 0 = required -> violation.
        assert len(check_property8(drops, dimension=2)) == 1
        drops = [[NodeDrop(step=0, node=(1, 1), load=4, drop=0.0)]]
        assert check_property8(drops, dimension=2) == []

    def test_minimum_margin(self):
        drops = [
            [NodeDrop(step=0, node=(1, 1), load=1, drop=3.0)],
            [NodeDrop(step=1, node=(2, 2), load=2, drop=2.5)],
        ]
        assert minimum_margin(drops, dimension=2) == pytest.approx(0.5)


class TestLemma19OnRealRuns:
    """Property 8 holds at every node of every step for the in-class
    algorithm on every congested workload — the empirical Lemma 19."""

    WORKLOADS = [
        lambda mesh: random_many_to_many(mesh, k=120, seed=120),
        lambda mesh: single_target(mesh, k=60, seed=121),
        lambda mesh: quadrant_flood(mesh, seed=122),
        lambda mesh: saturated_load(mesh, per_node=3, seed=123),
    ]

    @pytest.mark.parametrize("factory", WORKLOADS)
    @pytest.mark.parametrize("prefer_type_a", [True, False])
    def test_property8_holds(self, mesh8, factory, prefer_type_a):
        problem = factory(mesh8)
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(prefer_type_a=prefer_type_a),
            seed=9,
            observers=[tracker],
        )
        result = engine.run()
        assert result.completed
        violations = check_property8(tracker.node_drops, dimension=2)
        assert violations == [], violations[:3]
        assert minimum_margin(tracker.node_drops, dimension=2) >= 0
