"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRoute:
    def test_basic_route(self, capsys):
        code = main(
            ["route", "--side", "8", "--workload", "random", "--k", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 20 bound" in out
        assert "delivered=10" in out

    def test_verify_mode(self, capsys):
        code = main(
            [
                "route",
                "--side",
                "8",
                "--workload",
                "hotspot",
                "--k",
                "20",
                "--verify",
            ]
        )
        assert code == 0
        assert "ALL INEQUALITIES HOLD" in capsys.readouterr().out

    def test_verify_rejects_torus(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "route",
                    "--topology",
                    "torus",
                    "--side",
                    "8",
                    "--verify",
                ]
            )

    def test_save_trace(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        code = main(
            [
                "route",
                "--side",
                "8",
                "--k",
                "5",
                "--save-trace",
                path,
            ]
        )
        assert code == 0
        from repro.core.serialization import load_trace

        trace = load_trace(path)
        assert trace.num_steps > 0

    def test_each_workload(self, capsys):
        for workload in ("permutation", "transpose", "flood", "corners"):
            code = main(
                ["route", "--side", "8", "--workload", workload]
            )
            assert code == 0

    def test_hypercube_topology(self, capsys):
        code = main(
            [
                "route",
                "--topology",
                "hypercube",
                "--dimension",
                "5",
                "--workload",
                "random",
                "--k",
                "20",
                "--policy",
                "fixed-priority",
            ]
        )
        assert code == 0

    def test_unknown_policy_fails(self):
        with pytest.raises(KeyError):
            main(["route", "--side", "8", "--policy", "nope"])

    def test_buffered_engine(self, capsys):
        code = main(
            ["route", "--side", "8", "--k", "20", "--engine", "buffered"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "store-and-forward" in out
        assert "max buffer occupancy" in out

    def test_buffered_engine_rejects_hot_potato_policy(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "route",
                    "--side",
                    "8",
                    "--engine",
                    "buffered",
                    "--policy",
                    "restricted-priority",
                ]
            )

    def test_buffered_engine_rejects_verify(self):
        with pytest.raises(SystemExit):
            main(["route", "--side", "8", "--engine", "buffered", "--verify"])


class TestSweep:
    def test_table_printed(self, capsys):
        code = main(
            [
                "sweep",
                "--side",
                "8",
                "--k-min",
                "4",
                "--k-max",
                "8",
                "--seeds",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm20 bound" in out
        assert "k" in out


class TestDynamic:
    def test_load_sweep(self, capsys):
        code = main(
            [
                "dynamic",
                "--side",
                "6",
                "--rates",
                "0.05",
                "0.1",
                "--horizon",
                "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lat mean" in out

    def test_buffered_load_sweep(self, capsys):
        code = main(
            [
                "dynamic",
                "--side",
                "6",
                "--rates",
                "0.1",
                "--horizon",
                "80",
                "--engine",
                "buffered",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "store-and-forward" in out
        assert "queue" in out


class TestProfile:
    def test_batch_profile_prints_phase_table(self, capsys):
        code = main(["profile", "--side", "6", "--k", "12"])
        assert code == 0
        out = capsys.readouterr().out
        for phase in ("inject", "rank", "arc_assign", "move", "deliver"):
            assert phase in out
        assert "telemetry:" in out
        assert "us/step" in out

    def test_buffered_profile(self, capsys):
        code = main(
            ["profile", "--side", "6", "--k", "12", "--engine", "buffered"]
        )
        assert code == 0
        assert "dimension-order" in capsys.readouterr().out

    def test_dynamic_profile(self, capsys):
        code = main(
            [
                "profile",
                "--engine",
                "dynamic",
                "--side",
                "5",
                "--rate",
                "0.1",
                "--horizon",
                "60",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "rank" in out
        assert "telemetry:" in out

    def test_buffered_dynamic_profile(self, capsys):
        code = main(
            [
                "profile",
                "--engine",
                "buffered-dynamic",
                "--side",
                "5",
                "--rate",
                "0.1",
                "--horizon",
                "60",
            ]
        )
        assert code == 0
        assert "buffered-dynamic" in capsys.readouterr().out

    def test_profile_writes_manifest_with_phases(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        path = str(tmp_path / "m.jsonl")
        code = main(
            ["profile", "--side", "6", "--k", "8", "--telemetry", path]
        )
        assert code == 0
        manifests = read_manifests(path)
        assert len(manifests) == 1
        assert manifests[0].command == "profile"
        assert manifests[0].phases is not None
        assert manifests[0].phases["steps"] > 0


class TestTelemetryFlag:
    def test_route_appends_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests, validate_manifest

        path = str(tmp_path / "m.jsonl")
        code = main(
            ["route", "--side", "6", "--k", "8", "--telemetry", path]
        )
        assert code == 0
        assert "manifest appended" in capsys.readouterr().out
        manifests = read_manifests(path)
        assert len(manifests) == 1
        manifest = manifests[0]
        assert manifest.command == "route"
        assert manifest.engine == "hot-potato"
        assert manifest.seed == 0
        assert manifest.git_sha != ""
        assert validate_manifest(manifest.to_dict()) == []

    def test_route_buffered_appends_manifest(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        path = str(tmp_path / "m.jsonl")
        code = main(
            [
                "route",
                "--side",
                "6",
                "--k",
                "8",
                "--engine",
                "buffered",
                "--telemetry",
                path,
            ]
        )
        assert code == 0
        assert read_manifests(path)[0].engine == "buffered"

    def test_route_telemetry_rejects_verify(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "route",
                    "--side",
                    "6",
                    "--verify",
                    "--telemetry",
                    "unused.jsonl",
                ]
            )

    def test_sweep_appends_one_manifest_per_point(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        path = str(tmp_path / "m.jsonl")
        code = main(
            [
                "sweep",
                "--side",
                "6",
                "--k-min",
                "4",
                "--k-max",
                "8",
                "--seeds",
                "2",
                "--telemetry",
                path,
            ]
        )
        assert code == 0
        manifests = read_manifests(path)
        # two k values (4, 8) x two seeds
        assert len(manifests) == 4
        assert all(m.command == "sweep" for m in manifests)
        assert all(m.telemetry is not None for m in manifests)

    def test_dynamic_appends_one_manifest_per_rate(self, tmp_path, capsys):
        from repro.obs.manifest import read_manifests

        path = str(tmp_path / "m.jsonl")
        code = main(
            [
                "dynamic",
                "--side",
                "5",
                "--rates",
                "0.1",
                "0.2",
                "--horizon",
                "50",
                "--telemetry",
                path,
            ]
        )
        assert code == 0
        manifests = read_manifests(path)
        assert len(manifests) == 2
        assert all(m.engine == "dynamic" for m in manifests)
        assert all(m.result["kind"] == "dynamic" for m in manifests)


class TestLivelock:
    def test_demo(self, capsys):
        code = main(["livelock", "--steps", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0/8 delivered" in out
        assert "recurs every 2 steps" in out


class TestPolicies:
    def test_listing(self, capsys):
        code = main(["policies"])
        assert code == 0
        out = capsys.readouterr().out
        assert "restricted-priority" in out
        assert "prefers-restricted" in out


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_report_from_real_results(self, capsys):
        code = main(["report"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# Measured experiment tables")

    def test_report_to_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "report.md")
        code = main(["report", "--output", out_path])
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_report_missing_directory(self, tmp_path, capsys):
        code = main(["report", "--results", str(tmp_path / "none")])
        assert code == 0
        assert "no experiment results" in capsys.readouterr().out
