"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestRoute:
    def test_basic_route(self, capsys):
        code = main(
            ["route", "--side", "8", "--workload", "random", "--k", "10"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Theorem 20 bound" in out
        assert "delivered=10" in out

    def test_verify_mode(self, capsys):
        code = main(
            [
                "route",
                "--side",
                "8",
                "--workload",
                "hotspot",
                "--k",
                "20",
                "--verify",
            ]
        )
        assert code == 0
        assert "ALL INEQUALITIES HOLD" in capsys.readouterr().out

    def test_verify_rejects_torus(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "route",
                    "--topology",
                    "torus",
                    "--side",
                    "8",
                    "--verify",
                ]
            )

    def test_save_trace(self, tmp_path, capsys):
        path = str(tmp_path / "trace.json")
        code = main(
            [
                "route",
                "--side",
                "8",
                "--k",
                "5",
                "--save-trace",
                path,
            ]
        )
        assert code == 0
        from repro.core.serialization import load_trace

        trace = load_trace(path)
        assert trace.num_steps > 0

    def test_each_workload(self, capsys):
        for workload in ("permutation", "transpose", "flood", "corners"):
            code = main(
                ["route", "--side", "8", "--workload", workload]
            )
            assert code == 0

    def test_hypercube_topology(self, capsys):
        code = main(
            [
                "route",
                "--topology",
                "hypercube",
                "--dimension",
                "5",
                "--workload",
                "random",
                "--k",
                "20",
                "--policy",
                "fixed-priority",
            ]
        )
        assert code == 0

    def test_unknown_policy_fails(self):
        with pytest.raises(KeyError):
            main(["route", "--side", "8", "--policy", "nope"])

    def test_buffered_engine(self, capsys):
        code = main(
            ["route", "--side", "8", "--k", "20", "--engine", "buffered"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "store-and-forward" in out
        assert "max buffer occupancy" in out

    def test_buffered_engine_rejects_hot_potato_policy(self):
        with pytest.raises(SystemExit):
            main(
                [
                    "route",
                    "--side",
                    "8",
                    "--engine",
                    "buffered",
                    "--policy",
                    "restricted-priority",
                ]
            )

    def test_buffered_engine_rejects_verify(self):
        with pytest.raises(SystemExit):
            main(["route", "--side", "8", "--engine", "buffered", "--verify"])


class TestSweep:
    def test_table_printed(self, capsys):
        code = main(
            [
                "sweep",
                "--side",
                "8",
                "--k-min",
                "4",
                "--k-max",
                "8",
                "--seeds",
                "1",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Thm20 bound" in out
        assert "k" in out


class TestDynamic:
    def test_load_sweep(self, capsys):
        code = main(
            [
                "dynamic",
                "--side",
                "6",
                "--rates",
                "0.05",
                "0.1",
                "--horizon",
                "100",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "lat mean" in out

    def test_buffered_load_sweep(self, capsys):
        code = main(
            [
                "dynamic",
                "--side",
                "6",
                "--rates",
                "0.1",
                "--horizon",
                "80",
                "--engine",
                "buffered",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "store-and-forward" in out
        assert "queue" in out


class TestLivelock:
    def test_demo(self, capsys):
        code = main(["livelock", "--steps", "50"])
        assert code == 0
        out = capsys.readouterr().out
        assert "0/8 delivered" in out
        assert "recurs every 2 steps" in out


class TestPolicies:
    def test_listing(self, capsys):
        code = main(["policies"])
        assert code == 0
        out = capsys.readouterr().out
        assert "restricted-priority" in out
        assert "prefers-restricted" in out


class TestParser:
    def test_missing_command_fails(self):
        with pytest.raises(SystemExit):
            main([])


class TestReport:
    def test_report_from_real_results(self, capsys):
        code = main(["report"])
        assert code == 0
        out = capsys.readouterr().out
        assert out.startswith("# Measured experiment tables")

    def test_report_to_file(self, tmp_path, capsys):
        out_path = str(tmp_path / "report.md")
        code = main(["report", "--output", out_path])
        assert code == 0
        assert "wrote" in capsys.readouterr().out

    def test_report_missing_directory(self, tmp_path, capsys):
        code = main(["report", "--results", str(tmp_path / "none")])
        assert code == 0
        assert "no experiment results" in capsys.readouterr().out
