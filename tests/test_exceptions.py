"""Tests for the exception hierarchy."""

import pytest

from repro.exceptions import (
    ArcAssignmentError,
    CapacityExceededError,
    ConfigurationError,
    GreedinessViolationError,
    HotPotatoViolationError,
    InvalidProblemError,
    LivelockSuspectedError,
    ProtocolViolationError,
    ReproError,
    RestrictedPriorityViolationError,
    TraceError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exception",
        [
            ConfigurationError,
            InvalidProblemError,
            ProtocolViolationError,
            HotPotatoViolationError,
            ArcAssignmentError,
            GreedinessViolationError,
            RestrictedPriorityViolationError,
            CapacityExceededError,
            LivelockSuspectedError,
            TraceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exception):
        assert issubclass(exception, ReproError)

    def test_problem_errors_are_configuration_errors(self):
        assert issubclass(InvalidProblemError, ConfigurationError)

    @pytest.mark.parametrize(
        "exception",
        [
            HotPotatoViolationError,
            ArcAssignmentError,
            GreedinessViolationError,
            RestrictedPriorityViolationError,
            CapacityExceededError,
        ],
    )
    def test_runtime_violations_share_a_base(self, exception):
        assert issubclass(exception, ProtocolViolationError)

    def test_catching_the_base_catches_library_errors(self, mesh8):
        from repro.core.problem import RoutingProblem

        with pytest.raises(ReproError):
            RoutingProblem.from_pairs(mesh8, [((0, 0), (1, 1))])

    def test_configuration_vs_protocol_disjoint(self):
        assert not issubclass(ConfigurationError, ProtocolViolationError)
        assert not issubclass(ProtocolViolationError, ConfigurationError)
