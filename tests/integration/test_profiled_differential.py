"""Profiled-loop differential tests.

:meth:`StepKernel.run_profiled` re-implements the lean loop with
timestamps around each phase, so it must be *observably identical* to
:meth:`run_lean`: same :class:`RunResult` (telemetry included), same
RNG consumption, same delivery order.  These tests pin that contract
for all four engines, and check that the profiler actually measured
something while telemetry stayed bit-identical.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    DimensionOrderPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.validation import validators_for
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
)
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.obs.profiler import PhaseProfiler
from repro.workloads import random_many_to_many, random_permutation

_SETTINGS = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

POLICIES = (
    RestrictedPriorityPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
)


def _stats_tuple(stats):
    return (
        stats.samples,
        stats.deliveries,
        stats.horizon,
        stats.final_in_flight,
        stats.final_backlog,
    )


@st.composite
def _batch_problems(draw):
    kind = draw(st.sampled_from(["mesh", "torus"]))
    side = draw(st.integers(min_value=3, max_value=6))
    mesh = (Torus if kind == "torus" else Mesh)(2, side)
    if draw(st.booleans()):
        problem = random_permutation(
            mesh, seed=draw(st.integers(min_value=0, max_value=2**16))
        )
    else:
        problem = random_many_to_many(
            mesh,
            k=draw(st.integers(min_value=1, max_value=mesh.num_nodes)),
            seed=draw(st.integers(min_value=0, max_value=2**16)),
        )
    return problem, draw(st.integers(min_value=0, max_value=2**16))


class TestHotPotatoProfiled:
    @_SETTINGS
    @given(
        instance=_batch_problems(), policy_cls=st.sampled_from(POLICIES)
    )
    def test_profiled_equals_lean(self, instance, policy_cls):
        problem, seed = instance

        def engine(profiler=None):
            policy = policy_cls()
            return HotPotatoEngine(
                problem,
                policy,
                seed=seed,
                validators=validators_for(policy, strict=False),
                profiler=profiler,
            )

        profiler = PhaseProfiler()
        lean_result = engine().run()
        profiled_result = engine(profiler).run()
        assert profiled_result == lean_result
        assert profiler.steps == profiled_result.total_steps


class TestBufferedProfiled:
    @_SETTINGS
    @given(instance=_batch_problems())
    def test_profiled_equals_lean(self, instance):
        problem, seed = instance
        lean = BufferedEngine(problem, DimensionOrderPolicy(), seed=seed)
        profiler = PhaseProfiler()
        profiled = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=seed, profiler=profiler
        )
        assert profiled.run() == lean.run()
        assert profiled.max_buffer_seen == lean.max_buffer_seen
        assert profiler.steps > 0 or problem.k == 0


class TestDynamicProfiled:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.05, max_value=0.3),
        steps=st.integers(min_value=1, max_value=50),
        policy_cls=st.sampled_from(POLICIES),
    )
    def test_profiled_equals_lean(self, seed, rate, steps, policy_cls):
        mesh = Mesh(2, 4)
        lean = DynamicEngine(
            mesh, policy_cls(), BernoulliTraffic(rate), seed=seed
        )
        profiler = PhaseProfiler()
        profiled = DynamicEngine(
            mesh,
            policy_cls(),
            BernoulliTraffic(rate),
            seed=seed,
            profiler=profiler,
        )
        assert _stats_tuple(profiled.run(steps)) == _stats_tuple(
            lean.run(steps)
        )
        assert profiled.telemetry == lean.telemetry
        assert profiler.steps == steps


class TestBufferedDynamicProfiled:
    @_SETTINGS
    @given(
        seed=st.integers(min_value=0, max_value=2**16),
        rate=st.floats(min_value=0.05, max_value=0.3),
        steps=st.integers(min_value=1, max_value=50),
    )
    def test_profiled_equals_lean(self, seed, rate, steps):
        mesh = Mesh(2, 4)
        lean = BufferedDynamicEngine(
            mesh, DimensionOrderPolicy(), BernoulliTraffic(rate), seed=seed
        )
        profiler = PhaseProfiler()
        profiled = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            BernoulliTraffic(rate),
            seed=seed,
            profiler=profiler,
        )
        assert _stats_tuple(profiled.run(steps)) == _stats_tuple(
            lean.run(steps)
        )
        assert profiled.telemetry == lean.telemetry
        assert profiled.max_queue_seen == lean.max_queue_seen


class TestProfilerRefusals:
    def test_batch_profiling_requires_the_lean_loop(self, mesh4):
        import pytest

        from repro.core.events import RunObserver

        problem = random_many_to_many(mesh4, k=5, seed=1)
        policy = RestrictedPriorityPolicy()
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=1,
            validators=validators_for(policy, strict=False),
            observers=[RunObserver()],
            profiler=PhaseProfiler(),
        )
        with pytest.raises(ValueError, match="profiling times the lean"):
            engine.run()

    def test_dynamic_profiling_requires_the_lean_loop(self, mesh4):
        import pytest

        from repro.core.events import RunObserver

        engine = DynamicEngine(
            mesh4,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.1),
            seed=1,
            observers=[RunObserver()],
            profiler=PhaseProfiler(),
        )
        with pytest.raises(ValueError, match="profiling times the lean"):
            engine.run(10)
