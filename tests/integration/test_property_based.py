"""Hypothesis-driven end-to-end properties on random instances.

Each test generates a random routing problem (and sometimes a random
policy configuration), runs a full simulation with all validators
active, and asserts the model- and paper-level invariants.
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    GreedyMatchingPolicy,
    RestrictedPriorityPolicy,
    make_policy,
)
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import theorem20_bound
from repro.potential.property8 import check_property8
from repro.potential.restricted import RestrictedPotential
from repro.workloads import random_many_to_many

SLOW = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


problem_params = st.tuples(
    st.sampled_from([4, 6, 8]),          # side
    st.integers(1, 60),                  # k
    st.integers(0, 10_000),              # workload seed
)


class TestModelInvariants:
    @given(problem_params, st.integers(0, 1000))
    @SLOW
    def test_restricted_policy_full_chain(self, params, seed):
        """Termination within the Theorem 20 bound, Property 8, and
        monotone potential — on arbitrary random instances."""
        side, k, wseed = params
        mesh = Mesh(2, side)
        k = min(k, mesh.num_nodes)
        problem = random_many_to_many(mesh, k=k, seed=wseed)
        tracker = RestrictedPotential()
        limit = int(theorem20_bound(side, k)) + 1
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=seed,
            observers=[tracker],
            max_steps=limit,
        )
        result = engine.run()
        assert result.completed
        assert result.total_steps <= theorem20_bound(side, k)
        assert tracker.is_monotone_nonincreasing()
        assert check_property8(tracker.node_drops, 2) == []

    @given(
        problem_params,
        st.sampled_from(["ordered", "reverse", "random"]),
        st.sampled_from(["id", "random"]),
        st.integers(0, 1000),
    )
    @SLOW
    def test_any_matching_greedy_configuration_terminates(
        self, params, deflection, tie_break, seed
    ):
        """Every (tie-break, deflection) configuration of the matching
        template is greedy and max-advance — validated per node — and
        delivers everything."""
        side, k, wseed = params
        mesh = Mesh(2, side)
        k = min(k, mesh.num_nodes)
        problem = random_many_to_many(mesh, k=k, seed=wseed)
        policy = GreedyMatchingPolicy(
            tie_break=tie_break, deflection=deflection
        )
        result = HotPotatoEngine(problem, policy, seed=seed).run()
        assert result.completed
        assert result.delivered == k

    @given(
        st.sampled_from(
            [
                "restricted-priority",
                "plain-greedy",
                "fixed-priority",
                "closest-first",
                "fewest-good-directions",
            ]
        ),
        problem_params,
    )
    @SLOW
    def test_packet_conservation(self, name, params):
        """delivered + in-flight == k at all times; every delivered
        packet is at its destination."""
        side, k, wseed = params
        mesh = Mesh(2, side)
        k = min(k, mesh.num_nodes)
        problem = random_many_to_many(mesh, k=k, seed=wseed)
        engine = HotPotatoEngine(problem, make_policy(name), seed=1)
        engine._start()
        for _ in range(200):
            if not engine.in_flight:
                break
            delivered = sum(1 for p in engine.packets if p.delivered)
            assert delivered + len(engine.in_flight) == k
            engine.step()
        assert not engine.in_flight
        for packet in engine.packets:
            assert packet.location == packet.destination

    @given(problem_params)
    @SLOW
    def test_advance_deflection_balance(self, params):
        """For every delivered packet:
        advances - deflections == shortest distance."""
        side, k, wseed = params
        mesh = Mesh(2, side)
        k = min(k, mesh.num_nodes)
        problem = random_many_to_many(mesh, k=k, seed=wseed)
        result = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=2
        ).run()
        for outcome in result.outcomes:
            assert (
                outcome.advances - outcome.deflections
                == outcome.shortest_distance
            )
