"""Cross-checks between independent implementations of the same facts.

Several quantities in this library are computed twice by design
(engine metrics vs record classification, Definition 11 vs class-volume
surfaces, trace reconstruction vs live engine state).  These tests pin
the equivalences on full runs.
"""

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine, default_step_limit
from repro.core.trace import TraceRecorder
from repro.potential.distance import DistancePotential
from repro.workloads import random_many_to_many, single_target


class TestTraceVsLiveState:
    def test_positions_at_matches_engine_between_steps(self, mesh8):
        """Trace.positions_at(t) reconstructs exactly the engine's live
        in-flight positions after t steps."""
        problem = single_target(mesh8, k=40, seed=90)
        recorder = TraceRecorder(problem, "restricted-priority", 90)
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=90,
            observers=[recorder],
        )
        engine._start()
        time = 0
        while engine.in_flight:
            assert recorder.trace.positions_at(time) == {
                p.id: p.location for p in engine.in_flight
            }
            engine.step()
            time += 1
        assert recorder.trace.positions_at(time) == {}


class TestMetricsVsRecords:
    def test_step_metrics_recomputable_from_records(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=91)
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=91,
            record_steps=True,
        )
        result = engine.run()
        for record, metrics in zip(result.records, result.step_metrics):
            assert record.num_advancing == metrics.advancing
            assert record.num_deflected == metrics.deflected
            assert len(record.infos) == metrics.in_flight
            assert (
                sum(i.distance_before for i in record.infos.values())
                == metrics.total_distance
            )

    def test_distance_potential_equals_metrics_series(self, mesh8):
        """Phi_dist(t) == total_distance metric at every step."""
        problem = random_many_to_many(mesh8, k=40, seed=92)
        tracker = DistancePotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=92,
            observers=[tracker],
        )
        result = engine.run()
        for metrics, phi in zip(result.step_metrics, tracker.phi_history):
            assert metrics.total_distance == phi


class TestOutcomeVsMetricsTotals:
    def test_totals_agree(self, mesh8):
        problem = random_many_to_many(mesh8, k=50, seed=93)
        result = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=93
        ).run()
        assert result.total_advances == sum(
            m.advancing for m in result.step_metrics
        )
        assert result.total_deflections == sum(
            m.deflected for m in result.step_metrics
        )
        assert sum(
            1 for o in result.outcomes if o.delivered
        ) == result.delivered

    def test_delivery_times_bounded_by_total(self, mesh8):
        problem = random_many_to_many(mesh8, k=50, seed=94)
        result = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=94
        ).run()
        assert result.total_steps == max(
            o.delivered_at for o in result.outcomes
        )


class TestDefaultLimits:
    def test_formula(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=95)
        expected = max(256, 8 * (2 * 10 + problem.d_max) + 64)
        assert default_step_limit(problem) == expected

    def test_floor_applies_to_tiny_problems(self, mesh8):
        problem = random_many_to_many(mesh8, k=1, seed=96)
        assert default_step_limit(problem) >= 256
