"""Chaos differential: under arbitrary seeded fault schedules the lean
guarded loop and the instrumented loop must stay bit-identical, and an
empty schedule must be indistinguishable from no fault plumbing at all.

Property-based so the fault phase is exercised across mesh sizes,
workloads, schedule shapes, and abort outcomes (drops, partitions,
no-progress) — not just the handcrafted cases in tests/faults/."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import DimensionOrderPolicy, RandomRankPolicy
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.events import RunObserver
from repro.faults import FaultSchedule, random_schedule
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many, random_permutation

_SETTINGS = settings(
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


@st.composite
def _chaos_instances(draw):
    side = draw(st.integers(min_value=3, max_value=5))
    mesh = Mesh(2, side)
    if draw(st.booleans()):
        problem = random_permutation(
            mesh, seed=draw(st.integers(min_value=0, max_value=2**16))
        )
    else:
        problem = random_many_to_many(
            mesh,
            k=draw(st.integers(min_value=1, max_value=mesh.num_nodes)),
            seed=draw(st.integers(min_value=0, max_value=2**16)),
        )
    schedule = random_schedule(
        mesh,
        seed=draw(st.integers(min_value=0, max_value=2**16)),
        link_faults=draw(st.integers(min_value=0, max_value=3)),
        node_faults=draw(st.integers(min_value=0, max_value=1)),
        packet_drops=draw(st.integers(min_value=0, max_value=2)),
        horizon=32,
        max_window=16,
    )
    seed = draw(st.integers(min_value=0, max_value=2**16))
    return problem, schedule, seed


class TestHotPotatoChaos:
    @_SETTINGS
    @given(instance=_chaos_instances())
    def test_lean_equals_instrumented_under_faults(self, instance):
        problem, schedule, seed = instance
        lean = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=seed,
            faults=schedule,
            max_steps=600,
        ).run()
        instrumented = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=seed,
            faults=schedule,
            max_steps=600,
            observers=[RunObserver()],
        ).run()
        assert lean == instrumented

    @_SETTINGS
    @given(instance=_chaos_instances())
    def test_faulted_runs_are_reproducible(self, instance):
        problem, schedule, seed = instance
        first = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=seed,
            faults=schedule,
            max_steps=600,
        ).run()
        second = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=seed,
            faults=schedule,
            max_steps=600,
        ).run()
        assert first == second

    @_SETTINGS
    @given(instance=_chaos_instances())
    def test_empty_schedule_is_bit_identical_to_no_faults(self, instance):
        problem, _, seed = instance
        plain = HotPotatoEngine(
            problem, RandomRankPolicy(), seed=seed
        ).run()
        empty = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=seed,
            faults=FaultSchedule.empty(),
        ).run()
        assert plain == empty


class TestBufferedChaos:
    @_SETTINGS
    @given(instance=_chaos_instances())
    def test_lean_equals_instrumented_under_faults(self, instance):
        problem, schedule, seed = instance
        lean = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=seed,
            faults=schedule,
            max_steps=600,
        ).run()
        instrumented = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=seed,
            faults=schedule,
            max_steps=600,
            observers=[RunObserver()],
        ).run()
        assert lean == instrumented

    @_SETTINGS
    @given(instance=_chaos_instances())
    def test_empty_schedule_is_bit_identical_to_no_faults(self, instance):
        problem, _, seed = instance
        plain = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=seed
        ).run()
        empty = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=seed,
            faults=FaultSchedule.empty(),
        ).run()
        assert plain == empty
