"""Test package."""
