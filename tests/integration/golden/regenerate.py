"""Regenerate ``engines.json`` from the current engines.

The committed fixture was captured from the legacy (pre-kernel)
engines; regenerating overwrites that baseline, so only do it when a
behavior change is intended — and say so in CHANGES.md.

    PYTHONPATH=src python tests/integration/golden/regenerate.py
"""

from __future__ import annotations

import json
import os
import sys

sys.path.insert(
    0,
    os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "..", "..", ".."
    ),
)

from tests.integration.golden.scenarios import (  # noqa: E402
    FIXTURE_PATH,
    capture_all,
)


def main() -> int:
    snapshot = capture_all()
    with open(FIXTURE_PATH, "w", encoding="utf-8") as handle:
        json.dump(snapshot, handle, indent=1, sort_keys=True)
        handle.write("\n")
    total = sum(
        len(record.get("samples", [])) + len(record.get("outcomes", []))
        for record in snapshot.values()
    )
    print(
        f"wrote {len(snapshot)} scenarios ({total} rows) to {FIXTURE_PATH}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
