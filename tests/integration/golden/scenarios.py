"""Golden-fixture scenarios shared by the regeneration script and tests.

The fixture file ``engines.json`` was captured from the *legacy*
per-engine step loops (the hand-rolled ``BufferedEngine._start``/
``_route``/``_move`` clones that predate ``repro.core.kernel``)
immediately before they were deleted.  The tests in
``tests/integration/test_golden_engines.py`` re-run every scenario on
the current code and require identical results, so the kernel refactor
is pinned to the exact observable behavior of the engines it replaced
— including policy RNG streams (the ``randomized-greedy`` scenarios)
and injection ordering.

Regenerate (only when a behavior change is intended and documented)::

    PYTHONPATH=src python tests/integration/golden/regenerate.py
"""

from __future__ import annotations

import json
import os
from typing import Any, Callable, Dict, List, Tuple

from repro.algorithms import (
    DimensionOrderPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.buffered_engine import BufferedEngine
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
    HotSpotTraffic,
    ScriptedTraffic,
)
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.workloads import random_many_to_many, transpose

FIXTURE_PATH = os.path.join(os.path.dirname(__file__), "engines.json")


def _buffered_batch(
    mesh: Any, problem: Any, seed: int, backend: str = "object"
) -> Dict[str, Any]:
    """Run a batch through the store-and-forward engine; full snapshot."""
    engine = BufferedEngine(
        problem, DimensionOrderPolicy(), seed=seed, backend=backend
    )
    result = engine.run()
    return {
        "completed": result.completed,
        "total_steps": result.total_steps,
        "delivered": result.delivered,
        "max_buffer_seen": engine.max_buffer_seen,
        "outcomes": [
            [o.packet_id, o.delivered_at, o.hops, o.advances, o.deflections]
            for o in result.outcomes
        ],
    }


def _dynamic_snapshot(engine: Any, stats: Any) -> Dict[str, Any]:
    """Everything a dynamic run observably produced, as plain JSON."""
    return {
        "delivered_count": stats.delivered_count,
        "horizon": stats.horizon,
        "final_in_flight": stats.final_in_flight,
        "final_backlog": stats.final_backlog,
        "next_id": engine._next_id,
        "samples": [
            [s.step, s.generated, s.injected, s.in_flight, s.advancing,
             s.delivered, s.backlog]
            for s in stats.samples
        ],
        "deliveries": [
            [d.generated_at, d.delivered_at, d.hops, d.deflections, d.shortest]
            for d in stats.deliveries
        ],
    }


def scenario_buffered_random(backend: str = "object") -> Dict[str, Any]:
    mesh = Mesh(2, 8)
    return _buffered_batch(
        mesh, random_many_to_many(mesh, k=60, seed=13), 0, backend
    )


def scenario_buffered_transpose(
    backend: str = "object",
) -> Dict[str, Any]:
    mesh = Mesh(2, 6)
    return _buffered_batch(mesh, transpose(mesh), 1, backend)


def scenario_buffered_odd_torus(
    backend: str = "object",
) -> Dict[str, Any]:
    mesh = Torus(2, 5)
    return _buffered_batch(
        mesh, random_many_to_many(mesh, k=20, seed=3), 2, backend
    )


def scenario_dynamic_restricted(
    backend: str = "object",
) -> Dict[str, Any]:
    engine = DynamicEngine(
        Mesh(2, 8),
        RestrictedPriorityPolicy(),
        BernoulliTraffic(0.2),
        seed=7,
        warmup=20,
        backend=backend,
    )
    return _dynamic_snapshot(engine, engine.run(150))


def scenario_dynamic_randomized(
    backend: str = "object",
) -> Dict[str, Any]:
    # RNG-stream sensitive: the policy consumes its private stream once
    # per node visit, so this pins the node visit order too.
    engine = DynamicEngine(
        Mesh(2, 6),
        RandomizedGreedyPolicy(),
        BernoulliTraffic(0.3),
        seed=11,
        warmup=10,
        backend=backend,
    )
    return _dynamic_snapshot(engine, engine.run(120))


def scenario_dynamic_hotspot(backend: str = "object") -> Dict[str, Any]:
    engine = DynamicEngine(
        Mesh(2, 6),
        PlainGreedyPolicy(),
        HotSpotTraffic(0.15, hot_fraction=0.3),
        seed=5,
        backend=backend,
    )
    return _dynamic_snapshot(engine, engine.run(100))


def scenario_buffered_dynamic_bernoulli(
    backend: str = "object",
) -> Dict[str, Any]:
    engine = BufferedDynamicEngine(
        Mesh(2, 8),
        DimensionOrderPolicy(),
        BernoulliTraffic(0.3),
        seed=9,
        warmup=20,
        backend=backend,
    )
    snapshot = _dynamic_snapshot(engine, engine.run(150))
    snapshot["max_queue_seen"] = engine.max_queue_seen
    return snapshot


def scenario_buffered_dynamic_scripted(
    backend: str = "object",
) -> Dict[str, Any]:
    traffic = ScriptedTraffic(
        [
            ((1, 1), 0, (5, 5)),
            ((1, 1), 0, (3, 2)),
            ((5, 5), 1, (1, 1)),
            ((2, 2), 4, (2, 5)),
        ]
    )
    engine = BufferedDynamicEngine(
        Mesh(2, 6), DimensionOrderPolicy(), traffic, seed=0, backend=backend
    )
    snapshot = _dynamic_snapshot(engine, engine.run(30))
    snapshot["max_queue_seen"] = engine.max_queue_seen
    return snapshot


SCENARIOS: List[Tuple[str, Callable[[], Dict[str, Any]]]] = [
    ("buffered_random", scenario_buffered_random),
    ("buffered_transpose", scenario_buffered_transpose),
    ("buffered_odd_torus", scenario_buffered_odd_torus),
    ("dynamic_restricted", scenario_dynamic_restricted),
    ("dynamic_randomized", scenario_dynamic_randomized),
    ("dynamic_hotspot", scenario_dynamic_hotspot),
    ("buffered_dynamic_bernoulli", scenario_buffered_dynamic_bernoulli),
    ("buffered_dynamic_scripted", scenario_buffered_dynamic_scripted),
]


def capture_all() -> Dict[str, Any]:
    return {name: build() for name, build in SCENARIOS}


def load_fixture() -> Dict[str, Any]:
    with open(FIXTURE_PATH, "r", encoding="utf-8") as handle:
        return json.load(handle)
