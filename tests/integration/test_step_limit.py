"""Unified step-limit semantics: all four engines end an exhausted
run with the same structured ``RunAborted`` vocabulary (reason
``"step-limit"``), never a silent truncation or an exception — unless
``raise_on_timeout`` explicitly asks for one."""

import pytest

from repro.algorithms import DimensionOrderPolicy, RandomRankPolicy
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.events import RunObserver
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
    ScriptedTraffic,
)
from repro.exceptions import LivelockSuspectedError
from repro.faults import FaultSchedule, RunWatchdog
from repro.mesh.topology import Mesh
from repro.workloads import random_permutation

MESH = Mesh(2, 4)
LIMIT = 2  # far below what a 4x4 permutation needs


def problem():
    return random_permutation(MESH, seed=4)


class TestHotPotatoStepLimit:
    def run_limited(self, **kwargs):
        return HotPotatoEngine(
            problem(), RandomRankPolicy(), seed=0, max_steps=LIMIT, **kwargs
        ).run()

    def test_structured_abort_with_census(self):
        result = self.run_limited()
        assert not result.completed
        assert result.total_steps == LIMIT
        assert result.abort is not None
        assert result.abort.reason == "step-limit"
        assert result.abort.step == LIMIT
        assert list(result.abort.undelivered) == result.undelivered_ids
        assert result.abort.undelivered  # something really was in flight
        assert result.abort.stranded == ()
        assert "TIMEOUT" in result.summary()

    def test_instrumented_path_matches(self):
        lean = self.run_limited()
        instrumented = self.run_limited(observers=[RunObserver()])
        assert lean == instrumented

    def test_guarded_path_matches(self):
        lean = self.run_limited()
        guarded = self.run_limited(faults=FaultSchedule.empty())
        assert lean == guarded

    def test_raise_on_timeout_still_raises(self):
        with pytest.raises(LivelockSuspectedError):
            self.run_limited(raise_on_timeout=True)


class TestBufferedStepLimit:
    def run_limited(self, **kwargs):
        return BufferedEngine(
            problem(),
            DimensionOrderPolicy(),
            seed=0,
            max_steps=LIMIT,
            **kwargs,
        ).run()

    def test_structured_abort_with_census(self):
        result = self.run_limited()
        assert not result.completed
        assert result.total_steps == LIMIT
        assert result.abort is not None
        assert result.abort.reason == "step-limit"
        assert list(result.abort.undelivered) == result.undelivered_ids
        assert "TIMEOUT" in result.summary()

    def test_instrumented_path_matches(self):
        lean = self.run_limited()
        instrumented = self.run_limited(observers=[RunObserver()])
        assert lean == instrumented

    def test_raise_on_timeout_still_raises(self):
        with pytest.raises(LivelockSuspectedError):
            self.run_limited(raise_on_timeout=True)


class TestDynamicHorizon:
    """For the dynamic engines the requested horizon is a normal end,
    not an abort; only a watchdog verdict sets ``stats.abort``."""

    def test_horizon_end_is_not_an_abort(self):
        stats = DynamicEngine(
            MESH, RandomRankPolicy(), BernoulliTraffic(0.1), seed=3
        ).run(40)
        assert stats.horizon == 40
        assert stats.abort is None

    def test_buffered_horizon_end_is_not_an_abort(self):
        stats = BufferedDynamicEngine(
            MESH, DimensionOrderPolicy(), BernoulliTraffic(0.1), seed=3
        ).run(40)
        assert stats.abort is None

    def test_watchdog_verdict_lands_on_stats(self):
        # One far-away packet, zero tolerance for delivery-free steps:
        # the watchdog must cut the horizon short with a structured
        # verdict while the packet is still crossing the mesh.
        traffic = ScriptedTraffic([((1, 1), 0, (4, 4))])
        stats = DynamicEngine(
            MESH,
            RandomRankPolicy(),
            traffic,
            seed=3,
            watchdog=RunWatchdog(
                no_progress_limit=1, partition_interval=None
            ),
        ).run(200)
        assert stats.abort is not None
        assert stats.abort.reason == "no-progress"
        assert stats.horizon < 200
