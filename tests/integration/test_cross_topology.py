"""Cross-topology integration: every engine on every topology."""

import pytest

from repro.algorithms import (
    FewestGoodDirectionsPolicy,
    PlainGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.engine import HotPotatoEngine
from repro.dynamic import BernoulliTraffic, DynamicEngine
from repro.exceptions import ConfigurationError
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.potential.restricted import RestrictedPotential
from repro.workloads import random_many_to_many

TOPOLOGIES = [
    Mesh(2, 6),
    Mesh(3, 4),
    Torus(2, 6),
    Torus(3, 4),
    Hypercube(5),
]


@pytest.mark.parametrize(
    "mesh", TOPOLOGIES, ids=lambda m: f"{m.kind}-d{m.dimension}-n{m.side}"
)
class TestBatchOnAllTopologies:
    def test_greedy_routes(self, mesh):
        problem = random_many_to_many(mesh, k=30, seed=7)
        result = HotPotatoEngine(problem, PlainGreedyPolicy(), seed=7).run()
        assert result.completed
        assert result.delivered == 30

    def test_fewest_good_directions_routes(self, mesh):
        problem = random_many_to_many(mesh, k=30, seed=8)
        result = HotPotatoEngine(
            problem, FewestGoodDirectionsPolicy(), seed=8
        ).run()
        assert result.completed

    def test_stretch_reasonable(self, mesh):
        problem = random_many_to_many(mesh, k=20, seed=9)
        result = HotPotatoEngine(problem, PlainGreedyPolicy(), seed=9).run()
        assert result.average_stretch < 2.0


@pytest.mark.parametrize(
    "mesh", TOPOLOGIES, ids=lambda m: f"{m.kind}-d{m.dimension}-n{m.side}"
)
class TestDynamicOnAllTopologies:
    def test_continuous_traffic_flows(self, mesh):
        engine = DynamicEngine(
            mesh,
            PlainGreedyPolicy(),
            BernoulliTraffic(0.1),
            seed=10,
            warmup=30,
        )
        stats = engine.run(200)
        assert stats.delivered_count > 0
        assert stats.mean_stretch >= 1.0


class TestPotentialGuards:
    @pytest.mark.parametrize(
        "mesh",
        [Torus(2, 6), Hypercube(5), Mesh(3, 4)],
        ids=lambda m: m.kind + str(m.dimension),
    )
    def test_section42_potential_rejects_non_2d_mesh(self, mesh):
        problem = random_many_to_many(mesh, k=5, seed=0)
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            observers=[tracker],
        )
        with pytest.raises(ConfigurationError):
            engine.run()
