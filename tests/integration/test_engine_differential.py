"""Lean/instrumented differential tests for the buffered and dynamic engines.

The batch hot-potato engine's fast-path equivalence suite
(``tests/core/test_engine_fastpath.py``) pins the kernel's two code
paths against each other for one configuration of the kernel.  Now that
*every* engine is a kernel configuration, the same differential must
hold for the others: a run with zero observers (the lean loop) must be
observably identical to the same run driven step-by-step through the
instrumented loop (forced here by attaching a no-op observer).
"""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    DimensionOrderPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.buffered_engine import BufferedEngine
from repro.core.events import RunObserver
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
    HotSpotTraffic,
)
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.workloads import random_many_to_many, random_permutation

DYNAMIC_POLICIES = (
    RestrictedPriorityPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
)

_SETTINGS = settings(
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)


def _stats_tuple(stats):
    return (
        stats.samples,
        stats.deliveries,
        stats.horizon,
        stats.final_in_flight,
        stats.final_backlog,
    )


@st.composite
def _batch_problems(draw):
    kind = draw(st.sampled_from(["mesh", "torus"]))
    side = draw(st.integers(min_value=3, max_value=6))
    mesh = (Torus if kind == "torus" else Mesh)(2, side)
    if draw(st.booleans()):
        problem = random_permutation(
            mesh, seed=draw(st.integers(min_value=0, max_value=2**16))
        )
    else:
        problem = random_many_to_many(
            mesh,
            k=draw(st.integers(min_value=1, max_value=mesh.num_nodes)),
            seed=draw(st.integers(min_value=0, max_value=2**16)),
        )
    return problem, draw(st.integers(min_value=0, max_value=2**16))


@st.composite
def _dynamic_configs(draw):
    kind = draw(st.sampled_from(["mesh", "torus"]))
    side = draw(st.integers(min_value=3, max_value=5))
    mesh = (Torus if kind == "torus" else Mesh)(2, side)
    # A factory, not an instance: each engine under comparison gets its
    # own traffic object so neither run can leak state into the other.
    if draw(st.booleans()):
        rate = draw(st.floats(min_value=0.05, max_value=0.4))

        def traffic():
            return BernoulliTraffic(rate)

    else:
        rate = draw(st.floats(min_value=0.05, max_value=0.3))

        def traffic():
            return HotSpotTraffic(rate, hot_fraction=0.25)

    seed = draw(st.integers(min_value=0, max_value=2**16))
    warmup = draw(st.integers(min_value=0, max_value=10))
    steps = draw(st.integers(min_value=1, max_value=60))
    return mesh, traffic, seed, warmup, steps


class TestBufferedDifferential:
    @_SETTINGS
    @given(instance=_batch_problems())
    def test_lean_equals_instrumented(self, instance):
        problem, seed = instance
        lean = BufferedEngine(problem, DimensionOrderPolicy(), seed=seed)
        instrumented = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=seed,
            observers=[RunObserver()],
        )
        assert lean.run() == instrumented.run()
        assert lean.max_buffer_seen == instrumented.max_buffer_seen

    @_SETTINGS
    @given(instance=_batch_problems())
    def test_runs_are_reproducible(self, instance):
        problem, seed = instance
        first = BufferedEngine(problem, DimensionOrderPolicy(), seed=seed)
        second = BufferedEngine(problem, DimensionOrderPolicy(), seed=seed)
        assert first.run() == second.run()


class TestDynamicDifferential:
    @_SETTINGS
    @given(
        instance=_dynamic_configs(),
        policy_cls=st.sampled_from(DYNAMIC_POLICIES),
    )
    def test_lean_equals_instrumented(self, instance, policy_cls):
        mesh, traffic, seed, warmup, steps = instance
        lean = DynamicEngine(
            mesh, policy_cls(), traffic(), seed=seed, warmup=warmup
        )
        instrumented = DynamicEngine(
            mesh,
            policy_cls(),
            traffic(),
            seed=seed,
            warmup=warmup,
            observers=[RunObserver()],
        )
        assert _stats_tuple(lean.run(steps)) == _stats_tuple(
            instrumented.run(steps)
        )
        assert lean.telemetry == instrumented.telemetry
        assert lean._next_id == instrumented._next_id
        assert [p.id for p in lean.in_flight] == [
            p.id for p in instrumented.in_flight
        ]


class TestBufferedDynamicDifferential:
    @_SETTINGS
    @given(instance=_dynamic_configs())
    def test_lean_equals_instrumented(self, instance):
        mesh, traffic, seed, warmup, steps = instance
        lean = BufferedDynamicEngine(
            mesh, DimensionOrderPolicy(), traffic(), seed=seed, warmup=warmup
        )
        instrumented = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            traffic(),
            seed=seed,
            warmup=warmup,
            observers=[RunObserver()],
        )
        assert _stats_tuple(lean.run(steps)) == _stats_tuple(
            instrumented.run(steps)
        )
        assert lean.telemetry == instrumented.telemetry
        assert lean.max_queue_seen == instrumented.max_queue_seen
