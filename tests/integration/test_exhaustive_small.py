"""Exhaustive verification on small meshes.

Complete enumeration beats sampling where it is affordable: every
two-packet conflict configuration on the 3x3 mesh is routed under the
paper's algorithm with the potential attached, and every one must
terminate within the Theorem 20 bound with Property 8 intact.
"""

import itertools

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.problem import RoutingProblem
from repro.mesh.topology import Mesh
from repro.potential.bounds import theorem20_bound
from repro.potential.property8 import check_property8
from repro.potential.restricted import RestrictedPotential


MESH = Mesh(2, 3)
NODES = list(MESH.nodes())


def _route_checked(pairs):
    problem = RoutingProblem.from_pairs(MESH, pairs)
    tracker = RestrictedPotential(strict=True)
    engine = HotPotatoEngine(
        problem,
        RestrictedPriorityPolicy(),
        observers=[tracker],
        max_steps=int(theorem20_bound(3, len(pairs))) + 1,
    )
    result = engine.run()
    assert result.completed, f"timeout on {pairs}"
    assert result.total_steps <= theorem20_bound(3, len(pairs))
    violations = check_property8(tracker.node_drops, 2)
    assert violations == [], f"Property 8 failed on {pairs}: {violations[0]}"
    assert tracker.is_monotone_nonincreasing(), f"Phi rose on {pairs}"
    return result


class TestExhaustiveTwoPacket:
    def test_all_colocated_pairs(self):
        """Both packets start at the same node — every destination
        combination (576 complete runs, all strictly validated)."""
        count = 0
        for source in NODES:
            for dest_a, dest_b in itertools.product(NODES, NODES):
                if dest_a == source or dest_b == source:
                    continue
                _route_checked([(source, dest_a), (source, dest_b)])
                count += 1
        assert count == 9 * 8 * 8

    def test_all_single_packet_cases(self):
        """Every (source, destination) pair routes along a shortest
        path with no deflections."""
        for source, destination in itertools.product(NODES, NODES):
            if source == destination:
                continue
            result = _route_checked([(source, destination)])
            assert result.total_steps == MESH.distance(source, destination)
            assert result.outcomes[0].deflections == 0


class TestExhaustiveAdjacentPairs:
    def test_adjacent_sources_same_destination(self):
        """Two packets from adjacent nodes to every shared destination
        — the head-on conflict family."""
        for source_a in NODES:
            for source_b in MESH.neighbors(source_a):
                for destination in NODES:
                    if destination in (source_a, source_b):
                        continue
                    _route_checked(
                        [(source_a, destination), (source_b, destination)]
                    )


class TestSampledTriples:
    @pytest.mark.parametrize("corner_index", range(4))
    def test_three_packets_from_corner_region(self, corner_index):
        """Triples stacked near a corner (degree-2/3 nodes): the
        boundary cases where deflection options are scarcest."""
        corner = MESH.corner(corner_index)
        neighbors = MESH.neighbors(corner)
        sources = [corner, corner] + neighbors[:1]
        for destinations in itertools.product(NODES, repeat=3):
            if any(s == d for s, d in zip(sources, destinations)):
                continue
            # Thin the 9^3 grid: keep destination triples whose sum of
            # coordinates is even, an arbitrary but deterministic half.
            if sum(sum(d) for d in destinations) % 2:
                continue
            _route_checked(list(zip(sources, destinations)))
