"""Integration: the Section 5 d-dimensional class and its bound."""

import pytest

from repro.algorithms import FewestGoodDirectionsPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import section5_bound
from repro.workloads import (
    corner_storm,
    random_many_to_many,
    random_permutation,
    single_target,
)


def run(problem, seed=0):
    policy = FewestGoodDirectionsPolicy()
    result = HotPotatoEngine(problem, policy, seed=seed).run()
    assert result.completed
    return result


class TestThreeDimensional:
    @pytest.mark.parametrize("side", [3, 4, 5])
    def test_random_batches_within_section5_bound(self, side):
        mesh = Mesh(3, side)
        k = mesh.num_nodes // 2
        for seed in (0, 1):
            problem = random_many_to_many(mesh, k=k, seed=seed)
            result = run(problem, seed=seed)
            assert result.total_steps <= section5_bound(3, side, k)

    def test_permutation_within_bound(self):
        mesh = Mesh(3, 4)
        problem = random_permutation(mesh, seed=2)
        result = run(problem, seed=2)
        assert result.total_steps <= section5_bound(3, 4, problem.k)

    def test_hot_spot_within_bound(self):
        mesh = Mesh(3, 4)
        problem = single_target(mesh, k=40, seed=3)
        result = run(problem, seed=3)
        assert result.total_steps <= section5_bound(3, 4, 40)

    def test_corner_storm_within_bound(self):
        mesh = Mesh(3, 4)
        problem = corner_storm(mesh, packets_per_corner=3)
        result = run(problem)
        assert result.total_steps <= section5_bound(3, 4, problem.k)


class TestFourDimensional:
    def test_random_batch(self):
        mesh = Mesh(4, 3)
        problem = random_many_to_many(mesh, k=40, seed=4)
        result = run(problem, seed=4)
        assert result.total_steps <= section5_bound(4, 3, 40)


class TestBoundShape:
    def test_measured_time_grows_slower_than_bound_in_k(self):
        """Doubling k multiplies the Section 5 bound by 2^(1/d); the
        measured time on random batches grows even slower."""
        mesh = Mesh(3, 4)
        small = random_many_to_many(mesh, k=16, seed=5)
        large = random_many_to_many(mesh, k=64, seed=5)
        t_small = run(small, seed=5).total_steps
        t_large = run(large, seed=5).total_steps
        assert t_large <= t_small * 4  # loose sanity: sublinear in k

    def test_higher_dimension_routes_fast_despite_weaker_bound(self):
        """Section 6: meshes of higher dimension route *faster* in
        practice (more links), even though the bound deteriorates.
        Compare 64-node meshes: 8x8 (d=2) vs 4x4x4 (d=3) at equal k."""
        k = 48
        t2 = HotPotatoEngine(
            random_many_to_many(Mesh(2, 8), k=k, seed=6),
            FewestGoodDirectionsPolicy(),
            seed=6,
        ).run()
        t3 = HotPotatoEngine(
            random_many_to_many(Mesh(3, 4), k=k, seed=6),
            FewestGoodDirectionsPolicy(),
            seed=6,
        ).run()
        assert t3.total_steps <= t2.total_steps
        # ...while the analytic bounds point the other way:
        assert section5_bound(3, 4, k) > section5_bound(2, 8, k)
