"""Integration: archived traces replay as greedy-certified schedules.

A recorded run can be turned into a :class:`SchedulePolicy` and
replayed through the engine with validators on — closing the loop
between trace archives and the adversarial-schedule machinery.
"""

import pytest

from repro.algorithms import RestrictedPriorityPolicy, SchedulePolicy
from repro.core.engine import HotPotatoEngine
from repro.core.trace import record_run, traces_equal
from repro.workloads import random_many_to_many, single_target


def schedule_from_trace(trace):
    """Convert a finite trace into a non-looping SchedulePolicy."""
    schedule = []
    for record in trace.records:
        per_node = {}
        for info in record.infos.values():
            per_node.setdefault(info.node, {})[info.packet_id] = (
                info.assigned_direction
            )
        schedule.append(per_node)
    return SchedulePolicy(tuple(schedule), loop_start=len(schedule))


class TestTraceReplay:
    def test_replay_reproduces_the_run(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=77)
        original = record_run(problem, RestrictedPriorityPolicy(), seed=77)
        replayed = record_run(
            problem, schedule_from_trace(original), seed=0
        )
        assert traces_equal(original, replayed)
        assert replayed.result.completed

    def test_replay_is_validated_greedy(self, mesh8):
        """The schedule policy declares greediness, so the replay runs
        under the Definition 6 validator — a recorded in-class run must
        replay violation-free."""
        problem = single_target(mesh8, k=40, seed=78)
        original = record_run(problem, RestrictedPriorityPolicy(), seed=78)
        policy = schedule_from_trace(original)
        assert policy.declares_greedy
        result = HotPotatoEngine(problem, policy).run()  # would raise
        assert result.completed
        assert result.total_steps == original.result.total_steps

    def test_replay_on_wrong_problem_fails(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=79)
        other = random_many_to_many(mesh8, k=10, seed=80)
        trace = record_run(problem, RestrictedPriorityPolicy(), seed=79)
        policy = schedule_from_trace(trace)
        with pytest.raises(Exception):
            HotPotatoEngine(other, policy).run()

    def test_serialized_trace_replays(self, mesh8, tmp_path):
        """Disk round trip composes with replay."""
        from repro.core.serialization import load_trace, save_trace

        problem = random_many_to_many(mesh8, k=20, seed=81)
        original = record_run(problem, RestrictedPriorityPolicy(), seed=81)
        path = str(tmp_path / "trace.json")
        save_trace(original, path)
        restored = load_trace(path)
        replayed = record_run(
            restored.problem, schedule_from_trace(restored), seed=0
        )
        assert traces_equal(original, replayed)
