"""Integration: Theorem 20 and the Remark, across a parameter grid.

Every greedy algorithm that prefers restricted packets must route
every k-packet problem on the n x n mesh within 8*sqrt(2)*n*sqrt(k)
steps.  These tests sweep mesh sizes, loads, and workload families and
assert the bound (and its parity-split sharpenings) on real runs.
"""

import pytest

from repro.algorithms import (
    FewestGoodDirectionsPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import (
    four_per_node_remark_bound,
    permutation_remark_bound,
    theorem20_bound,
)
from repro.workloads import (
    column_collapse,
    corner_storm,
    quadrant_flood,
    random_many_to_many,
    random_permutation,
    reversal,
    saturated_load,
    single_target,
    transpose,
)


def run(problem, policy=None, seed=0):
    policy = policy or RestrictedPriorityPolicy()
    limit = int(theorem20_bound(problem.mesh.side, max(problem.k, 1))) + 1
    engine = HotPotatoEngine(problem, policy, seed=seed, max_steps=limit)
    result = engine.run()
    assert result.completed, "exceeded the Theorem 20 bound"
    return result


class TestRandomBatches:
    @pytest.mark.parametrize("side", [4, 8, 16])
    @pytest.mark.parametrize("load", [0.1, 0.5, 1.0])
    def test_bound_holds(self, side, load):
        mesh = Mesh(2, side)
        k = max(1, int(load * mesh.num_nodes))
        for seed in (0, 1):
            problem = random_many_to_many(mesh, k=k, seed=seed)
            result = run(problem, seed=seed)
            assert result.total_steps <= theorem20_bound(side, k)

    def test_bound_holds_for_fewest_good_directions_too(self):
        """The d-dimensional policy class restricted to d=2 also
        prefers restricted packets, so Theorem 20 covers it."""
        mesh = Mesh(2, 8)
        problem = random_many_to_many(mesh, k=60, seed=5)
        result = run(problem, FewestGoodDirectionsPolicy(), seed=5)
        assert result.total_steps <= theorem20_bound(8, 60)


class TestStructuredWorkloads:
    @pytest.mark.parametrize(
        "factory",
        [
            transpose,
            reversal,
            lambda mesh: quadrant_flood(mesh, seed=2),
            lambda mesh: single_target(mesh, k=40, seed=3),
            lambda mesh: column_collapse(mesh),
            lambda mesh: corner_storm(mesh, packets_per_corner=2),
        ],
    )
    def test_bound_holds(self, factory):
        mesh = Mesh(2, 8)
        problem = factory(mesh)
        result = run(problem)
        assert result.total_steps <= theorem20_bound(8, problem.k)


class TestRemark:
    @pytest.mark.parametrize("side", [4, 8, 12])
    def test_full_permutation_within_8n_squared(self, side):
        mesh = Mesh(2, side)
        problem = random_permutation(mesh, seed=7)
        result = run(problem, seed=7)
        assert result.total_steps <= permutation_remark_bound(side)

    def test_full_load_within_8n_squared(self):
        mesh = Mesh(2, 8)
        problem = saturated_load(mesh, per_node=1, seed=8)
        result = run(problem, seed=8)
        assert result.total_steps <= permutation_remark_bound(8)

    def test_four_per_node_within_16n_squared(self):
        mesh = Mesh(2, 8)
        problem = saturated_load(mesh, per_node=4, seed=9)
        result = run(problem, seed=9)
        assert result.total_steps <= four_per_node_remark_bound(8)

    def test_reversal_beats_trivial_lower_bound_sanely(self):
        """Sanity on the other side: routing time is at least d_max."""
        mesh = Mesh(2, 8)
        problem = reversal(mesh)
        result = run(problem)
        assert result.total_steps >= problem.d_max


class TestMeasuredFarBelowBound:
    def test_typical_ratio_is_small(self):
        """The paper's motivation: greedy performs far better in
        practice than the worst-case bound.  On random batches the
        measured time is under 15% of the Theorem 20 bound."""
        mesh = Mesh(2, 16)
        ratios = []
        for seed in range(3):
            problem = random_many_to_many(mesh, k=128, seed=seed)
            result = run(problem, seed=seed)
            ratios.append(
                result.total_steps / theorem20_bound(16, problem.k)
            )
        assert max(ratios) < 0.15
