"""Integration: cross-algorithm comparisons on identical instances.

Checks the *shape* results the paper's discussion predicts: greedy
hot-potato routing is near-optimal on typical loads, the structured
buffered baseline needs buffers that hot-potato routing eliminates,
and specialist priorities win on their home workloads.
"""

from repro.algorithms import (
    ClosestFirstPolicy,
    DimensionOrderPolicy,
    FixedPriorityPolicy,
    RestrictedPriorityPolicy,
    fixed_priority_time_bound,
)
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.workloads import (
    random_many_to_many,
    random_permutation,
    single_target,
    transpose,
)


class TestGreedyNearOptimal:
    def test_permutation_close_to_dmax(self):
        """On random permutations greedy routes within a small factor
        of the trivial lower bound d_max — the simulation folklore the
        paper opens with."""
        mesh = Mesh(2, 16)
        problem = random_permutation(mesh, seed=300)
        result = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=300
        ).run()
        assert result.completed
        assert result.total_steps <= 2 * problem.d_max

    def test_low_load_is_essentially_conflict_free(self):
        mesh = Mesh(2, 16)
        problem = random_many_to_many(mesh, k=8, seed=301)
        result = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=301
        ).run()
        assert result.total_steps <= problem.d_max + 4
        assert result.average_stretch <= 1.2


class TestAgainstBufferedBaseline:
    def test_same_order_of_magnitude_on_permutations(self):
        mesh = Mesh(2, 8)
        problem = transpose(mesh)
        hot = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=302
        ).run()
        buffered = BufferedEngine(problem, DimensionOrderPolicy()).run()
        assert hot.completed and buffered.completed
        assert hot.total_steps <= 3 * buffered.total_steps

    def test_hot_potato_needs_no_buffers_structured_does(self):
        """The Section 1 motivation, measured: under a hot spot the
        buffered baseline accumulates multi-packet queues while the
        hot-potato engine never holds more than degree packets."""
        mesh = Mesh(2, 8)
        problem = single_target(mesh, k=50, seed=303)
        hot_engine = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=303
        )
        hot = hot_engine.run()
        buffered_engine = BufferedEngine(problem, DimensionOrderPolicy())
        buffered_engine.run()
        assert hot.max_load_seen <= 4  # 2d
        assert buffered_engine.max_buffer_seen > 4


class TestSpecialists:
    def test_closest_first_at_least_as_good_on_hot_spot(self):
        mesh = Mesh(2, 8)
        times = {"closest": [], "fixed": []}
        for seed in range(3):
            problem = single_target(mesh, k=40, seed=seed)
            times["closest"].append(
                HotPotatoEngine(
                    problem, ClosestFirstPolicy(), seed=seed
                ).run().total_steps
            )
            times["fixed"].append(
                HotPotatoEngine(
                    problem, FixedPriorityPolicy(), seed=seed
                ).run().total_steps
            )
        assert sum(times["closest"]) <= sum(times["fixed"]) + 3

    def test_fixed_priority_linear_bound_vs_theorem20(self):
        """For small k the [BRS]-style 2k + d_max beats the
        O(n sqrt(k)) bound; the measured fixed-priority times respect
        the linear bound."""
        mesh = Mesh(2, 16)
        problem = random_many_to_many(mesh, k=10, seed=304)
        result = HotPotatoEngine(
            problem, FixedPriorityPolicy(), seed=304
        ).run()
        assert result.total_steps <= fixed_priority_time_bound(
            10, problem.d_max
        )
