"""Observer-effect differential: observability must never change a run.

The summary-fed recorders (:class:`RunMetricsRecorder`,
:class:`SeriesRecorder`) keep the lean loop and the soa backend
eligible; the step-fed :class:`PacketTracer` forces the instrumented
loop.  Either way the routing outcome must be bit-identical to the
unobserved run, and the object and soa backends must agree on every
exported artifact — registry snapshots and series payloads included.

The hypothesis suites sweep problems and policies; the golden capture
(``golden/obs_capture.json``) pins one fully-observed scenario's
series, registry snapshot and telemetry so a regression in any
observability layer fails loudly against a committed artifact.
"""

import json
import os

from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.validation import validators_for
from repro.dynamic import BernoulliTraffic, DynamicEngine
from repro.mesh.topology import Mesh
from repro.obs.metrics import RunMetricsRecorder
from repro.obs.series import SeriesRecorder
from repro.obs.tracing import PacketTracer
from repro.workloads import random_many_to_many

from .test_engine_differential import _SETTINGS, _batch_problems
from .test_soa_differential import HOT_POTATO_POLICIES, _hot_potato

CAPTURE_PATH = os.path.join(
    os.path.dirname(__file__), "golden", "obs_capture.json"
)

policy_indices = st.integers(
    min_value=0, max_value=len(HOT_POTATO_POLICIES) - 1
)


def _observed_run(problem, policy, seed, backend):
    metrics = RunMetricsRecorder()
    series = SeriesRecorder()
    engine = _hot_potato(
        problem, policy, seed, backend, observers=[metrics, series]
    )
    return engine.run(), metrics.registry, series.series


class TestSummaryObserversAreInert:
    @_SETTINGS
    @given(instance=_batch_problems(), policy_index=policy_indices)
    def test_object_backend_unchanged(self, instance, policy_index):
        problem, seed = instance
        build = HOT_POTATO_POLICIES[policy_index]
        plain = _hot_potato(problem, build(), seed, "object").run()
        observed, _, _ = _observed_run(problem, build(), seed, "object")
        assert observed == plain

    @_SETTINGS
    @given(instance=_batch_problems(), policy_index=policy_indices)
    def test_soa_backend_unchanged(self, instance, policy_index):
        problem, seed = instance
        build = HOT_POTATO_POLICIES[policy_index]
        plain = _hot_potato(problem, build(), seed, "soa").run()
        observed, _, _ = _observed_run(problem, build(), seed, "soa")
        assert observed == plain

    @_SETTINGS
    @given(instance=_batch_problems(), policy_index=policy_indices)
    def test_backends_agree_on_exported_artifacts(
        self, instance, policy_index
    ):
        problem, seed = instance
        build = HOT_POTATO_POLICIES[policy_index]
        obj = _observed_run(problem, build(), seed, "object")
        soa = _observed_run(problem, build(), seed, "soa")
        assert obj[0] == soa[0]
        assert obj[1].snapshot() == soa[1].snapshot()
        assert obj[2].to_dict() == soa[2].to_dict()


class TestTracerIsInert:
    @_SETTINGS
    @given(instance=_batch_problems())
    def test_traced_run_unchanged(self, instance):
        problem, seed = instance
        plain = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=seed
        ).run()
        tracer = PacketTracer()
        traced = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=seed,
            observers=[tracer],
        ).run()
        assert traced == plain
        delivers = sum(
            1 for e in tracer.trace.events if e.kind == "deliver"
        )
        # Packets whose source equals their destination are absorbed at
        # time 0 before routing starts, so the trace only sees the
        # step-delivered population (what telemetry counts).
        assert delivers == plain.telemetry.delivered


class TestDynamicObserversAreInert:
    @_SETTINGS
    @given(
        side=st.integers(min_value=3, max_value=5),
        rate=st.floats(min_value=0.05, max_value=0.3),
        seed=st.integers(min_value=0, max_value=2**16),
        steps=st.integers(min_value=1, max_value=60),
    )
    def test_dynamic_run_unchanged(self, side, rate, seed, steps):
        def run(observers):
            engine = DynamicEngine(
                Mesh(2, side),
                RestrictedPriorityPolicy(),
                BernoulliTraffic(rate),
                seed=seed,
                observers=observers,
            )
            stats = engine.run(steps)
            return stats.samples, stats.deliveries, engine.telemetry

        assert run([RunMetricsRecorder(), SeriesRecorder()]) == run([])


def observed_capture(backend="object"):
    """The pinned scenario behind ``golden/obs_capture.json``.

    Regenerate (only for an intended, documented behavior change)::

        PYTHONPATH=src python - <<'EOF'
        import json
        from tests.integration.test_obs_differential import (
            CAPTURE_PATH, observed_capture,
        )
        with open(CAPTURE_PATH, "w", encoding="utf-8") as fh:
            json.dump(observed_capture(), fh, indent=2, sort_keys=True)
            fh.write("\\n")
        EOF
    """
    mesh = Mesh(2, 6)
    problem = random_many_to_many(mesh, k=40, seed=11)
    result, registry, series = _observed_run(
        problem, RestrictedPriorityPolicy(), 5, backend
    )
    return {
        "total_steps": result.total_steps,
        "delivered": result.delivered,
        "telemetry": result.telemetry.to_dict(),
        "registry": registry.snapshot(),
        "series": series.to_dict(),
    }


class TestGoldenObsCapture:
    def test_object_backend_matches_capture(self):
        with open(CAPTURE_PATH, encoding="utf-8") as fh:
            assert observed_capture("object") == json.load(fh)

    def test_soa_backend_matches_capture(self):
        with open(CAPTURE_PATH, encoding="utf-8") as fh:
            assert observed_capture("soa") == json.load(fh)
