"""Object/array differential: ``backend="soa"`` must be bit-identical.

The structure-of-arrays kernel (:mod:`repro.core.soa`) re-implements
:meth:`~repro.core.kernel.StepKernel.run_lean` on flat columns, with a
vectorized numpy path for RNG-free policies and a columnar pure-Python
path for the rest.  Its correctness claim is *bit identity*: for every
supported engine and policy, a soa run must produce exactly the object
kernel's results — ``RunResult``, ``RunTelemetry``, per-packet
outcomes, dynamic step samples, packet-id sequences, and the RNG
stream (pinned indirectly through RNG-consuming policies).

These hypothesis suites are the proof harness; the golden fixtures
(``tests/integration/test_golden_engines.py``) pin the same property
against the pre-kernel legacy captures.
"""

from hypothesis import given
from hypothesis import strategies as st

from repro.algorithms import (
    DimensionOrderPolicy,
    MaximalGreedyPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.algorithms.random_rank import RandomRankPolicy
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.soa import _compat
from repro.core.validation import validators_for
from repro.dynamic import BufferedDynamicEngine, DynamicEngine
from repro.faults import FaultSchedule

from .test_engine_differential import (
    _SETTINGS,
    DYNAMIC_POLICIES,
    _batch_problems,
    _dynamic_configs,
    _stats_tuple,
)

#: Every hot-potato policy family the adapter supports, including the
#: RNG-consuming ones (columnar path) and the RNG-free ones
#: (vectorized path).
HOT_POTATO_POLICIES = (
    lambda: RestrictedPriorityPolicy(),
    lambda: RestrictedPriorityPolicy(prefer_type_a=False),
    lambda: RestrictedPriorityPolicy(tie_break="random"),
    lambda: RestrictedPriorityPolicy(deflection="reverse"),
    lambda: RestrictedPriorityPolicy(deflection="random"),
    lambda: PlainGreedyPolicy(),
    lambda: RandomizedGreedyPolicy(),
    lambda: MaximalGreedyPolicy(),
    lambda: MaximalGreedyPolicy(deflection="random"),
    lambda: RandomRankPolicy(),
)


def _hot_potato(problem, policy, seed, backend, **kwargs):
    # Capacity-only validators: the soa backend runs the lean loop,
    # and the object run must use the same (lean) configuration.
    return HotPotatoEngine(
        problem,
        policy,
        seed=seed,
        validators=validators_for(policy, strict=False),
        backend=backend,
        **kwargs,
    )


class TestHotPotatoSoaDifferential:
    @_SETTINGS
    @given(
        instance=_batch_problems(),
        policy_index=st.integers(
            min_value=0, max_value=len(HOT_POTATO_POLICIES) - 1
        ),
    )
    def test_soa_equals_object(self, instance, policy_index):
        problem, seed = instance
        make = HOT_POTATO_POLICIES[policy_index]
        obj = _hot_potato(problem, make(), seed, "object")
        soa = _hot_potato(problem, make(), seed, "soa")
        assert obj.run() == soa.run()
        assert obj.telemetry == soa.telemetry

    @_SETTINGS
    @given(instance=_batch_problems())
    def test_incomplete_run_leaves_identical_packets(self, instance):
        # A tight step budget stops mid-flight, so this pins the soa
        # kernel's writeback of live packet state (location, entry
        # direction, flags, counters), not just delivered outcomes.
        problem, seed = instance
        obj = _hot_potato(
            problem, RestrictedPriorityPolicy(), seed, "object", max_steps=3
        )
        soa = _hot_potato(
            problem, RestrictedPriorityPolicy(), seed, "soa", max_steps=3
        )
        assert obj.run() == soa.run()
        assert len(obj.in_flight) == len(soa.in_flight)
        for left, right in zip(obj.in_flight, soa.in_flight):
            assert left.id == right.id
            assert left.location == right.location
            assert left.entry_direction == right.entry_direction
            assert left.restricted_last_step == right.restricted_last_step
            assert left.advanced_last_step == right.advanced_last_step
            assert left.hops == right.hops
            assert left.advances == right.advances
            assert left.deflections == right.deflections

    @_SETTINGS
    @given(instance=_batch_problems())
    def test_empty_fault_schedule_is_equivalent(self, instance):
        # backend="soa" accepts FaultSchedule.empty() and must behave
        # exactly like a fault-free object run (the empty schedule's
        # auto-watchdog can never fire on the lean path either).
        problem, seed = instance
        obj = _hot_potato(problem, RestrictedPriorityPolicy(), seed, "object")
        soa = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=seed,
            validators=validators_for(
                RestrictedPriorityPolicy(), strict=False
            ),
            backend="soa",
            faults=FaultSchedule.empty(),
        )
        assert obj.run() == soa.run()
        assert obj.telemetry == soa.telemetry

    @_SETTINGS
    @given(
        instance=_batch_problems(),
        policy_index=st.integers(
            min_value=0, max_value=len(HOT_POTATO_POLICIES) - 1
        ),
    )
    def test_pure_python_fallback_equals_object(self, instance, policy_index):
        # With numpy unavailable the soa backend must transparently run
        # its columnar pure-Python loop — same bit-identical results.
        problem, seed = instance
        make = HOT_POTATO_POLICIES[policy_index]
        obj = _hot_potato(problem, make(), seed, "object")
        expected = obj.run()
        soa = _hot_potato(problem, make(), seed, "soa")
        saved = _compat.np
        _compat.np = None
        try:
            assert expected == soa.run()
        finally:
            _compat.np = saved
        assert obj.telemetry == soa.telemetry


class TestBufferedSoaDifferential:
    @_SETTINGS
    @given(instance=_batch_problems())
    def test_soa_equals_object(self, instance):
        problem, seed = instance
        obj = BufferedEngine(problem, DimensionOrderPolicy(), seed=seed)
        soa = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=seed, backend="soa"
        )
        assert obj.run() == soa.run()
        assert obj.telemetry == soa.telemetry
        assert obj.max_buffer_seen == soa.max_buffer_seen


class TestDynamicSoaDifferential:
    @_SETTINGS
    @given(
        instance=_dynamic_configs(),
        policy_cls=st.sampled_from(DYNAMIC_POLICIES),
    )
    def test_soa_equals_object(self, instance, policy_cls):
        mesh, traffic, seed, warmup, steps = instance
        obj = DynamicEngine(
            mesh, policy_cls(), traffic(), seed=seed, warmup=warmup
        )
        soa = DynamicEngine(
            mesh,
            policy_cls(),
            traffic(),
            seed=seed,
            warmup=warmup,
            backend="soa",
        )
        assert _stats_tuple(obj.run(steps)) == _stats_tuple(soa.run(steps))
        assert obj.telemetry == soa.telemetry
        assert obj._next_id == soa._next_id
        assert [p.id for p in obj.in_flight] == [
            p.id for p in soa.in_flight
        ]


class TestBufferedDynamicSoaDifferential:
    @_SETTINGS
    @given(instance=_dynamic_configs())
    def test_soa_equals_object(self, instance):
        mesh, traffic, seed, warmup, steps = instance
        obj = BufferedDynamicEngine(
            mesh, DimensionOrderPolicy(), traffic(), seed=seed, warmup=warmup
        )
        soa = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            traffic(),
            seed=seed,
            warmup=warmup,
            backend="soa",
        )
        assert _stats_tuple(obj.run(steps)) == _stats_tuple(soa.run(steps))
        assert obj.telemetry == soa.telemetry
        assert obj.max_queue_seen == soa.max_queue_seen
