"""The kernel-based engines must reproduce the legacy engines bit-for-bit.

``golden/engines.json`` was captured from the per-engine step loops
this repo shipped *before* ``repro.core.kernel`` existed (the
hand-rolled ``_start``/``_route``/``_move`` clones).  Each scenario
re-runs on the current code and must match exactly — delivery counts,
step-by-step samples, per-packet outcomes, queue maxima, packet-id
sequences.  A mismatch means the refactor changed an RNG stream, a
node visit order, or an injection order.
"""

import pytest

from .golden.scenarios import SCENARIOS, load_fixture


@pytest.fixture(scope="module")
def fixture_data():
    return load_fixture()


@pytest.mark.parametrize(
    "name,build", SCENARIOS, ids=[name for name, _ in SCENARIOS]
)
def test_scenario_matches_legacy_capture(name, build, fixture_data):
    assert name in fixture_data, (
        f"scenario {name!r} has no captured fixture; run "
        "tests/integration/golden/regenerate.py (only if the behavior "
        "change is intended and documented)"
    )
    assert build() == fixture_data[name]


@pytest.mark.parametrize(
    "name,build", SCENARIOS, ids=[name for name, _ in SCENARIOS]
)
def test_soa_backend_matches_legacy_capture(name, build, fixture_data):
    # The structure-of-arrays kernel must reproduce the very same
    # legacy captures: identical samples, outcomes, packet-id
    # sequences and queue maxima, with no soa-specific fixtures.
    assert build(backend="soa") == fixture_data[name]


def test_fixture_has_no_orphan_scenarios(fixture_data):
    assert set(fixture_data) == {name for name, _ in SCENARIOS}
