"""Unit tests for the deterministic infrastructure-fault injector.

The injector patches the manifest module's syscall seams, so every
test here also pins the seam contract ``append_jsonl`` relies on —
most importantly that one append is one write (whole-buffer
``O_APPEND`` atomicity).
"""

import errno
import os

import pytest

from repro.chaos import ChaosPlan, ProcessKilled, durability_chaos, tear_tail
from repro.obs import manifest
from repro.obs.manifest import append_jsonl


def _append(path, payloads, fsync=True):
    append_jsonl(payloads, str(path), fsync=fsync)


class TestSeams:
    def test_batch_is_one_write(self, tmp_path):
        # Three payloads, one buffer, one write: concurrent workers
        # interleave whole batches, never bytes.
        path = tmp_path / "log.jsonl"
        with durability_chaos(ChaosPlan()) as log:
            _append(path, [{"i": i} for i in range(3)])
        assert log.writes == 1
        assert log.fsyncs == 1
        assert log.injected == []
        assert path.read_bytes().count(b"\n") == 3

    def test_fsync_not_called_when_disabled(self, tmp_path):
        with durability_chaos(ChaosPlan()) as log:
            _append(tmp_path / "log.jsonl", [{"i": 0}], fsync=False)
        assert log.fsyncs == 0

    def test_seams_restored_after_scope(self, tmp_path):
        real_write, real_fsync = manifest._os_write, manifest._os_fsync
        with durability_chaos(ChaosPlan(kill_at_write=10)):
            assert manifest._os_write is not real_write
        assert manifest._os_write is real_write
        assert manifest._os_fsync is real_fsync

    def test_seams_restored_after_injected_failure(self, tmp_path):
        real_write = manifest._os_write
        with pytest.raises(ProcessKilled):
            with durability_chaos(ChaosPlan(kill_at_write=1)):
                _append(tmp_path / "log.jsonl", [{"i": 0}])
        assert manifest._os_write is real_write


class TestInjection:
    def test_fsync_eio_at_ordinal(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with durability_chaos(ChaosPlan(fail_fsync_at=2)) as log:
            _append(path, [{"i": 0}])
            with pytest.raises(OSError) as excinfo:
                _append(path, [{"i": 1}])
            _append(path, [{"i": 2}])
        assert excinfo.value.errno == errno.EIO
        assert log.injected == ["EIO at fsync 2"]
        # The doomed append's bytes reached the page cache — only the
        # durability acknowledgement failed.
        assert path.read_bytes().count(b"\n") == 3

    def test_enospc_short_write(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with durability_chaos(
            ChaosPlan(enospc_at_write=1, short_bytes=5)
        ) as log:
            with pytest.raises(OSError) as excinfo:
                _append(path, [{"payload": "x" * 40}])
        assert excinfo.value.errno == errno.ENOSPC
        assert log.injected == ["ENOSPC at write 1 after 5 bytes"]
        # Exactly the torn prefix landed.
        assert path.read_bytes() == b'{"pay'

    def test_kill_is_not_an_exception(self, tmp_path):
        # A simulated SIGKILL must sail through `except Exception` —
        # no recovery layer gets to "survive" it.
        path = tmp_path / "log.jsonl"
        with pytest.raises(ProcessKilled):
            with durability_chaos(ChaosPlan(kill_at_write=1)):
                try:
                    _append(path, [{"i": 0}])
                except Exception:  # noqa: BLE001
                    pytest.fail("ProcessKilled was caught as Exception")
        assert not issubclass(ProcessKilled, Exception)
        assert issubclass(ProcessKilled, BaseException)

    def test_untargeted_ordinals_pass_through(self, tmp_path):
        path = tmp_path / "log.jsonl"
        with durability_chaos(
            ChaosPlan(enospc_at_write=99, fail_fsync_at=99)
        ) as log:
            for i in range(4):
                _append(path, [{"i": i}])
        assert log.writes == 4 and log.fsyncs == 4
        assert log.injected == []


class TestTearTail:
    def test_tears_exact_bytes(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(b"0123456789")
        assert tear_tail(str(path), 3) == 7
        assert path.read_bytes() == b"0123456"

    def test_tear_inside_multibyte_character(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes('{"label": "torn ✓"}\n'.encode("utf-8"))
        # Keep one byte of the 3-byte U+2713: the tail no longer
        # decodes as UTF-8 — the crash shape text-mode readers die on.
        tear_tail(str(path), len(b'"}\n') + 2)
        tail = path.read_bytes()
        assert tail.endswith(b"\xe2")
        with pytest.raises(UnicodeDecodeError):
            tail.decode("utf-8")

    def test_overlong_drop_clamps_to_empty(self, tmp_path):
        path = tmp_path / "log.jsonl"
        path.write_bytes(b"abc")
        assert tear_tail(str(path), 99) == 0
        assert path.read_bytes() == b""

    def test_logs_carry_real_utf8(self, tmp_path):
        # ensure_ascii=False is what makes mid-character tears a real
        # failure mode rather than a theoretical one.
        path = tmp_path / "log.jsonl"
        _append(path, [{"label": "torn ✓"}])
        assert "✓".encode("utf-8") in path.read_bytes()
