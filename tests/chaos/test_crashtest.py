"""Crashtest drivers as pytest cases.

The quick tests run a reduced kill-and-resume matrix inline; the
``slow``-marked ones run the full drivers ``make crashtest`` and the
CI leg execute — including the real SIGKILLed campaign subprocess.
In between sits the fully *deterministic* campaign crash: instead of
racing a kill signal, the event log of a finished checkpointed
campaign is truncated at an exact event boundary (and then mid-line),
which reproduces byte-for-byte what a kill at that instant leaves on
disk.
"""

import json

import pytest

from repro.campaign.orchestrator import Campaign
from repro.campaign.spec import CaseSpec, spec_key
from repro.campaign.store import CampaignStore
from repro.chaos.crashtest import (
    crashtest_campaign,
    crashtest_engine,
    crashtest_route,
    crashtest_store,
)

from ..snapshot.scenarios import make_engine


def _campaign_specs(checkpoint_every=4, seeds=3):
    return [
        CaseSpec(
            topology="mesh",
            workload="random",
            policy="random-rank",
            seed=seed,
            side=6,
            checkpoint_every=checkpoint_every,
        )
        for seed in range(seeds)
    ]


def _reference(specs):
    with Campaign(specs) as campaign:
        result = campaign.run()
    assert not result.failures
    return {
        spec_key(spec): point.result
        for spec, point in zip(specs, result.points)
    }


def _resume_and_compare(path, specs, reference):
    campaign = Campaign.from_store(str(path))
    try:
        result = campaign.run()
    finally:
        campaign.close()
    assert not result.failures
    for spec, point in zip(campaign.specs, result.points):
        assert point.result == reference[spec_key(spec)]


class TestEngineDriver:
    def test_every_boundary_survives(self):
        report = crashtest_engine(
            lambda every, cb: make_engine(
                "hot-potato", "object", every=every, on_checkpoint=cb
            ),
            every=3,
            scenario="unit",
        )
        assert report.boundaries > 0

    def test_divergence_is_caught(self):
        # A factory whose "fresh" resume engine differs from the
        # original must fail loudly, not return a green report.  The
        # first two calls (reference, checkpointed) agree; every later
        # call — the resume targets — carries another seed.
        calls = {"n": 0}

        def factory(every, cb):
            calls["n"] += 1
            seed = 11 if calls["n"] <= 2 else 13
            return make_engine(
                "hot-potato", "object", seed=seed, every=every, on_checkpoint=cb
            )

        with pytest.raises(ValueError, match="seed"):
            crashtest_engine(factory, every=3, scenario="unit-diverge")


class TestDeterministicCampaignCrash:
    def _truncate_after_first_checkpoint(self, path, extra_bytes=0):
        with open(path, "rb") as handle:
            raw = handle.read()
        offset = 0
        for line in raw.splitlines(keepends=True):
            offset += len(line)
            if json.loads(line)["event"] == "case-checkpointed":
                break
        else:
            pytest.fail("no case-checkpointed event in the log")
        keep = min(len(raw), offset + extra_bytes)
        with open(path, "rb+") as handle:
            handle.truncate(keep)

    @pytest.fixture()
    def finished_store(self, tmp_path):
        specs = _campaign_specs()
        reference = _reference(specs)
        path = tmp_path / "campaign.jsonl"
        with Campaign(specs, store=CampaignStore(str(path))) as campaign:
            result = campaign.run()
        assert not result.failures
        return path, specs, reference

    def test_crash_at_event_boundary_resumes_from_checkpoint(
        self, finished_store
    ):
        path, specs, reference = finished_store
        self._truncate_after_first_checkpoint(path)
        state = CampaignStore(str(path)).replay()
        assert state.checkpoints, "truncation lost the checkpoint"
        assert state.pending(), "checkpointed case must still be pending"
        assert not state.errors, "boundary truncation is not a torn line"
        _resume_and_compare(path, specs, reference)

    def test_crash_mid_line_after_checkpoint_resumes(self, finished_store):
        path, specs, reference = finished_store
        self._truncate_after_first_checkpoint(path, extra_bytes=10)
        state = CampaignStore(str(path)).replay()
        assert state.checkpoints
        assert state.errors, "the torn half-line should be reported"
        _resume_and_compare(path, specs, reference)


@pytest.mark.slow
class TestFullDrivers:
    def test_route_matrix(self):
        reports = crashtest_route(every=3)
        assert len(reports) == 4
        assert all(r.boundaries > 0 for r in reports)

    def test_store_chaos(self):
        report = crashtest_store(workers=2)
        # Three injector plans plus three byte-level tears.
        assert report.boundaries == 6

    def test_campaign_sigkill(self):
        report = crashtest_campaign(seeds=4, workers=2)
        assert report.boundaries == 1
        assert any("SIGKILL" in d for d in report.details)
