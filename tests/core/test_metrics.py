"""Unit tests for step records, metrics, and run results."""

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.metrics import (
    PacketOutcome,
    PacketStepInfo,
    StepMetrics,
    StepRecord,
)
from repro.core.packet import RestrictedType
from repro.mesh.directions import Direction
from repro.workloads import random_many_to_many


def make_info(packet_id, node, next_node, dist_before, dist_after):
    return PacketStepInfo(
        packet_id=packet_id,
        node=node,
        destination=(9, 9),
        entry_direction=None,
        assigned_direction=Direction(0, 1),
        next_node=next_node,
        distance_before=dist_before,
        distance_after=dist_after,
        num_good=1,
        restricted=True,
        restricted_type=RestrictedType.TYPE_B,
    )


class TestPacketStepInfo:
    def test_advanced_and_deflected_are_complements(self):
        advanced = make_info(0, (1, 1), (2, 1), 5, 4)
        deflected = make_info(1, (1, 1), (1, 2), 5, 6)
        assert advanced.advanced and not advanced.deflected
        assert deflected.deflected and not deflected.advanced


class TestStepRecord:
    def test_node_groups(self):
        infos = {
            0: make_info(0, (1, 1), (2, 1), 5, 4),
            1: make_info(1, (1, 1), (1, 2), 5, 6),
            2: make_info(2, (3, 3), (3, 4), 2, 1),
        }
        record = StepRecord(step=0, infos=infos)
        groups = record.node_groups()
        assert set(groups) == {(1, 1), (3, 3)}
        assert [i.packet_id for i in groups[(1, 1)]] == [0, 1]

    def test_node_groups_sorted_by_packet_id_within_node(self):
        # Insert out of id order: grouping must still come back sorted,
        # so analyses see a deterministic per-node packet order.
        infos = {
            7: make_info(7, (1, 1), (2, 1), 5, 4),
            2: make_info(2, (1, 1), (1, 2), 5, 6),
            5: make_info(5, (1, 1), (0, 1), 4, 3),
        }
        record = StepRecord(step=0, infos=infos)
        groups = record.node_groups()
        assert [i.packet_id for i in groups[(1, 1)]] == [2, 5, 7]

    def test_advancing_deflected_counts(self):
        infos = {
            0: make_info(0, (1, 1), (2, 1), 5, 4),
            1: make_info(1, (1, 1), (1, 2), 5, 6),
        }
        record = StepRecord(step=0, infos=infos)
        assert record.num_advancing == 1
        assert record.num_deflected == 1

    def test_advancing_and_deflected_partition_the_record(self):
        infos = {
            i: make_info(i, (1, 1), (2, 1), 5, 4 if i % 2 else 6)
            for i in range(5)
        }
        record = StepRecord(step=0, infos=infos)
        assert record.num_advancing + record.num_deflected == len(infos)


class TestStepMetricsAliases:
    def test_b_and_g(self):
        metrics = StepMetrics(
            step=0,
            in_flight=10,
            advancing=6,
            deflected=4,
            delivered_total=0,
            total_distance=50,
            max_node_load=3,
            bad_nodes=1,
            packets_in_bad_nodes=3,
            packets_in_good_nodes=7,
        )
        assert metrics.b == 3
        assert metrics.g == 7


class TestPacketOutcome:
    def test_stretch(self):
        outcome = PacketOutcome(
            packet_id=0,
            source=(1, 1),
            destination=(1, 5),
            shortest_distance=4,
            delivered_at=6,
            hops=6,
            advances=5,
            deflections=1,
        )
        assert outcome.delivered
        assert outcome.stretch == 1.5

    def test_stretch_none_for_undelivered(self):
        outcome = PacketOutcome(
            packet_id=0,
            source=(1, 1),
            destination=(1, 5),
            shortest_distance=4,
            delivered_at=None,
            hops=10,
            advances=5,
            deflections=5,
        )
        assert outcome.stretch is None

    def test_stretch_none_for_zero_distance(self):
        outcome = PacketOutcome(
            packet_id=0,
            source=(1, 1),
            destination=(1, 1),
            shortest_distance=0,
            delivered_at=0,
            hops=0,
            advances=0,
            deflections=0,
        )
        assert outcome.stretch is None


class TestRunResultAggregates:
    def test_aggregates_consistent(self, mesh8):
        problem = random_many_to_many(mesh8, k=40, seed=31)
        engine = HotPotatoEngine(problem, RestrictedPriorityPolicy())
        result = engine.run()
        assert result.total_advances - result.total_deflections == sum(
            o.shortest_distance for o in result.outcomes
        )
        assert result.average_stretch >= 1.0
        assert 0 < result.average_delivery_time <= result.total_steps
        assert result.max_load_seen >= 1
        assert "restricted-priority" in result.summary()

    def test_step_metrics_in_flight_decreases_to_zero(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=32)
        engine = HotPotatoEngine(problem, RestrictedPriorityPolicy())
        result = engine.run()
        assert result.step_metrics[-1].delivered_total == 20

    def test_empty_run_defaults(self, mesh8):
        from repro.core.problem import RoutingProblem

        problem = RoutingProblem.from_pairs(mesh8, [])
        result = HotPotatoEngine(problem, RestrictedPriorityPolicy()).run()
        assert result.average_delivery_time == 0.0
        assert result.average_stretch == 1.0
        assert result.max_load_seen == 0
