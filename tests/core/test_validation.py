"""Unit tests for the protocol validators (Definitions 6 and 18)."""

import pytest

from repro.algorithms import (
    FixedPriorityPolicy,
    PlainGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.engine import route
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.validation import (
    CapacityValidator,
    GreedyValidator,
    MaxAdvanceValidator,
    RestrictedPriorityValidator,
    validators_for,
)
from repro.exceptions import (
    GreedinessViolationError,
    RestrictedPriorityViolationError,
)
from repro.workloads import random_many_to_many


class _AntiGreedyPolicy(RoutingPolicy):
    """Deflects everything it can — flagrantly violates Definition 6."""

    name = "anti-greedy"
    declares_greedy = True  # lies, so the validator must catch it

    def assign(self, view):
        assignment = {}
        used = set()
        for packet in view.packets:
            good = set(view.good_directions(packet))
            # Prefer a bad direction.
            for direction in view.out_directions:
                if direction not in used and direction not in good:
                    assignment[packet.id] = direction
                    used.add(direction)
                    break
            else:
                for direction in view.out_directions:
                    if direction not in used:
                        assignment[packet.id] = direction
                        used.add(direction)
                        break
        return assignment


class _RestrictedBullyPolicy(RoutingPolicy):
    """Greedy, but lets non-restricted packets deflect restricted ones.

    Wraps the fixed-priority policy (id order) and claims Definition 18.
    """

    name = "restricted-bully"
    declares_greedy = True
    declares_restricted_priority = True  # lies

    def __init__(self):
        self._inner = FixedPriorityPolicy()

    def prepare(self, mesh, problem, rng):
        self._inner.prepare(mesh, problem, rng)

    def assign(self, view):
        return self._inner.assign(view)


class TestGreedyValidator:
    def test_catches_anti_greedy(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((4, 4), (4, 6))])
        with pytest.raises(GreedinessViolationError):
            route(problem, _AntiGreedyPolicy())

    def test_passes_real_greedy(self, mesh8):
        problem = random_many_to_many(mesh8, k=40, seed=1)
        result = route(problem, PlainGreedyPolicy())  # validators on
        assert result.completed


class TestRestrictedPriorityValidator:
    def test_catches_bully(self, mesh8):
        # id 0 is non-restricted (diagonal), id 1 restricted; both at
        # the same node and id 0's priority takes the shared good arc.
        problem = RoutingProblem.from_pairs(
            mesh8,
            [
                ((3, 3), (5, 5)),  # id 0: good = {south, east}
                ((3, 3), (3, 6)),  # id 1: good = {east} (restricted)
            ],
        )
        # Force the conflict: id 0 must take east.  With FixedPriority,
        # Kuhn matches id 0 first to its first-listed good direction;
        # an augmenting path would reroute id 0 to south and advance
        # both, so we need the bully to actually win east.  Use a
        # problem where the restricted packet loses for sure: put a
        # third packet restricted to south.
        problem = RoutingProblem.from_pairs(
            mesh8,
            [
                ((3, 3), (5, 5)),  # good = {south, east}
                ((3, 3), (3, 6)),  # good = {east}
                ((3, 3), (6, 3)),  # good = {south}
            ],
        )
        with pytest.raises(RestrictedPriorityViolationError):
            route(problem, _RestrictedBullyPolicy())

    def test_passes_restricted_priority_policy(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=2)
        result = route(problem, RestrictedPriorityPolicy())
        assert result.completed


class TestMaxAdvanceValidator:
    def test_passes_matching_policies(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=3)
        result = route(problem, PlainGreedyPolicy())
        assert result.completed

    def test_catches_non_maximum(self, mesh8):
        class LazyPolicy(RoutingPolicy):
            """Greedy but advances fewer packets than the maximum."""

            name = "lazy"
            declares_max_advance = True  # lies

            def assign(self, view):
                # First-fit in id order can miss the maximum matching.
                assignment = {}
                used = set()
                for packet in view.packets:
                    chosen = None
                    for direction in view.good_directions(packet):
                        if direction not in used:
                            chosen = direction
                            break
                    if chosen is None:
                        for direction in view.out_directions:
                            if direction not in used:
                                chosen = direction
                                break
                    assignment[packet.id] = chosen
                    used.add(chosen)
                return assignment

        # id 0 flexible {south, east}, id 1 restricted {east}: first-fit
        # in direction order gives id 0 south... both advance.  Make a
        # case where first-fit fails: id 0 takes east (its only listed
        # first good is south -> need order where conflict occurs).
        # Use: id 0 restricted-to-east destination listed after a
        # flexible packet whose first good direction is east.
        problem = RoutingProblem.from_pairs(
            mesh8,
            [
                ((3, 3), (3, 6)),  # good = (east,)   [axis 1 only]
                ((3, 3), (3, 5)),  # good = (east,)
                ((3, 3), (5, 5)),  # good = (south, east)
            ],
        )
        # first-fit: id0 east, id1 unmatched, id2 south -> 2 advance,
        # and maximum is also 2 -> passes.  Construct a real gap:
        problem = RoutingProblem.from_pairs(
            mesh8,
            [
                ((3, 3), (5, 5)),  # good = (south, east), takes south
                ((3, 3), (6, 3)),  # good = (south,) -> blocked
                ((3, 3), (6, 2)),  # good = (south, west) -> takes west
            ],
        )
        # first-fit: id0 south, id1 blocked, id2 west => 2 advancing.
        # maximum: id1 south, id0 east, id2 west => 3 advancing.
        with pytest.raises(GreedinessViolationError):
            route(problem, LazyPolicy())


class TestValidatorsFor:
    def test_strict_stack_matches_declarations(self):
        policy = RestrictedPriorityPolicy()
        stack = validators_for(policy, strict=True)
        kinds = {type(v) for v in stack}
        assert CapacityValidator in kinds
        assert GreedyValidator in kinds
        assert RestrictedPriorityValidator in kinds
        assert MaxAdvanceValidator in kinds

    def test_non_strict_is_capacity_only(self):
        stack = validators_for(RestrictedPriorityPolicy(), strict=False)
        assert len(stack) == 1
        assert isinstance(stack[0], CapacityValidator)

    def test_plain_policy_has_no_restricted_validator(self):
        stack = validators_for(PlainGreedyPolicy())
        kinds = {type(v) for v in stack}
        assert RestrictedPriorityValidator not in kinds
        assert GreedyValidator in kinds
