"""Unit tests for RoutingProblem (the Section 2 many-to-many model)."""

import pytest

from repro.core.problem import Request, RoutingProblem
from repro.exceptions import InvalidProblemError


class TestValidation:
    def test_valid_problem(self, mesh4):
        problem = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (4, 4)), ((2, 2), (1, 3))]
        )
        assert problem.k == 2

    def test_source_outside_mesh(self, mesh4):
        with pytest.raises(InvalidProblemError):
            RoutingProblem.from_pairs(mesh4, [((0, 1), (2, 2))])

    def test_destination_outside_mesh(self, mesh4):
        with pytest.raises(InvalidProblemError):
            RoutingProblem.from_pairs(mesh4, [((1, 1), (5, 2))])

    def test_origin_capacity_enforced(self, mesh4):
        # Corner (1,1) has out-degree 2; three origins there violate
        # the Section 2 rule.
        pairs = [((1, 1), (4, 4))] * 3
        with pytest.raises(InvalidProblemError):
            RoutingProblem.from_pairs(mesh4, pairs)

    def test_origin_capacity_at_limit_ok(self, mesh4):
        pairs = [((1, 1), (4, 4))] * 2
        problem = RoutingProblem.from_pairs(mesh4, pairs)
        assert problem.k == 2

    def test_interior_capacity_is_2d(self, mesh4):
        pairs = [((2, 2), (4, 4))] * 4
        assert RoutingProblem.from_pairs(mesh4, pairs).k == 4
        with pytest.raises(InvalidProblemError):
            RoutingProblem.from_pairs(mesh4, pairs + [((2, 2), (1, 1))])

    def test_many_packets_one_destination_allowed(self, mesh4):
        pairs = [((1, 1), (3, 3)), ((2, 2), (3, 3)), ((4, 4), (3, 3))]
        problem = RoutingProblem.from_pairs(mesh4, pairs)
        assert problem.is_single_target()


class TestProperties:
    def test_d_max(self, mesh4):
        problem = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (4, 4)), ((1, 1), (1, 2))]
        )
        assert problem.d_max == 6

    def test_d_max_empty(self, mesh4):
        assert RoutingProblem.from_pairs(mesh4, []).d_max == 0

    def test_total_distance(self, mesh4):
        problem = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (4, 4)), ((2, 2), (2, 3))]
        )
        assert problem.total_distance == 7

    def test_is_permutation(self, mesh4):
        good = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (2, 2)), ((2, 2), (1, 1))]
        )
        assert good.is_permutation()
        repeated_dest = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (2, 2)), ((3, 3), (2, 2))]
        )
        assert not repeated_dest.is_permutation()

    def test_len(self, mesh4):
        assert len(RoutingProblem.from_pairs(mesh4, [((1, 1), (2, 2))])) == 1

    def test_describe_mentions_key_facts(self, mesh4):
        problem = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (4, 4))], name="demo"
        )
        text = problem.describe()
        assert "demo" in text
        assert "k=1" in text

    def test_subproblem(self, mesh4):
        problem = RoutingProblem.from_pairs(
            mesh4,
            [((1, 1), (2, 2)), ((3, 3), (4, 4)), ((2, 1), (1, 2))],
        )
        sub = problem.subproblem([0, 2], name="half")
        assert sub.k == 2
        assert sub.requests[0] == Request((1, 1), (2, 2))
        assert sub.requests[1] == Request((2, 1), (1, 2))

    def test_make_packets_ids_are_indices(self, mesh4):
        problem = RoutingProblem.from_pairs(
            mesh4, [((1, 1), (2, 2)), ((3, 3), (4, 4))]
        )
        packets = problem.make_packets()
        assert [p.id for p in packets] == [0, 1]
        assert packets[1].source == (3, 3)

    def test_make_packets_fresh_each_call(self, mesh4):
        problem = RoutingProblem.from_pairs(mesh4, [((1, 1), (2, 2))])
        first = problem.make_packets()
        first[0].location = (9, 9)
        second = problem.make_packets()
        assert second[0].location == (1, 1)

    def test_frozen(self, mesh4):
        problem = RoutingProblem.from_pairs(mesh4, [((1, 1), (2, 2))])
        with pytest.raises(AttributeError):
            problem.requests = ()
