"""Unit tests for Packet state and the type-A/B classification."""

from repro.core.packet import Packet, RestrictedType


class TestPacketBasics:
    def test_initial_location_is_source(self):
        packet = Packet(id=0, source=(1, 1), destination=(3, 3))
        assert packet.location == (1, 1)
        assert packet.in_flight
        assert not packet.delivered

    def test_delivered_flag(self):
        packet = Packet(id=0, source=(1, 1), destination=(3, 3))
        packet.delivered_at = 5
        assert packet.delivered
        assert not packet.in_flight

    def test_clone_is_independent(self):
        packet = Packet(id=1, source=(1, 1), destination=(2, 2))
        packet.path.append((1, 1))
        twin = packet.clone()
        twin.path.append((1, 2))
        twin.location = (9, 9)
        assert packet.path == [(1, 1)]
        assert packet.location == (1, 1)
        assert twin.id == packet.id

    def test_clone_copies_counters(self):
        packet = Packet(id=1, source=(1, 1), destination=(2, 2))
        packet.hops = 7
        packet.advances = 5
        packet.deflections = 2
        twin = packet.clone()
        assert (twin.hops, twin.advances, twin.deflections) == (7, 5, 2)


class TestClassification:
    """Figure 5: type A = restricted now, was restricted and advanced
    last step; type B = all other restricted packets."""

    def _packet(self, advanced, was_restricted):
        packet = Packet(id=0, source=(1, 1), destination=(5, 1))
        packet.advanced_last_step = advanced
        packet.restricted_last_step = was_restricted
        return packet

    def test_type_a(self):
        packet = self._packet(advanced=True, was_restricted=True)
        assert packet.classify(restricted_now=True) is RestrictedType.TYPE_A

    def test_type_b_after_deflection(self):
        packet = self._packet(advanced=False, was_restricted=True)
        assert packet.classify(restricted_now=True) is RestrictedType.TYPE_B

    def test_type_b_when_previously_unrestricted(self):
        packet = self._packet(advanced=True, was_restricted=False)
        assert packet.classify(restricted_now=True) is RestrictedType.TYPE_B

    def test_fresh_packet_is_type_b(self):
        packet = Packet(id=0, source=(1, 1), destination=(5, 1))
        assert packet.classify(restricted_now=True) is RestrictedType.TYPE_B

    def test_unrestricted(self):
        packet = self._packet(advanced=True, was_restricted=True)
        assert (
            packet.classify(restricted_now=False)
            is RestrictedType.UNRESTRICTED
        )
