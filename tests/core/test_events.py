"""Unit tests for run observers."""

from repro.algorithms import PlainGreedyPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.events import CallbackObserver, RunObserver
from repro.workloads import random_many_to_many


class CountingObserver(RunObserver):
    def __init__(self):
        self.starts = 0
        self.steps = 0
        self.ends = 0
        self.final_result = None

    def on_run_start(self, engine):
        self.starts += 1

    def on_step(self, record, metrics):
        self.steps += 1

    def on_run_end(self, result):
        self.ends += 1
        self.final_result = result


class TestObserverLifecycle:
    def test_callbacks_fire_in_order(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=40)
        observer = CountingObserver()
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[observer]
        )
        result = engine.run()
        assert observer.starts == 1
        assert observer.ends == 1
        assert observer.steps == len(result.step_metrics)
        assert observer.final_result is result

    def test_multiple_observers(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=41)
        first, second = CountingObserver(), CountingObserver()
        HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[first, second]
        ).run()
        assert first.steps == second.steps > 0

    def test_default_observer_methods_are_noops(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=42)
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[RunObserver()]
        )
        assert engine.run().completed


class TestCallbackObserver:
    def test_wraps_plain_callables(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=43)
        seen = {"steps": 0, "start": False, "end": False}
        observer = CallbackObserver(
            on_run_start=lambda engine: seen.update(start=True),
            on_step=lambda record, metrics: seen.update(
                steps=seen["steps"] + 1
            ),
            on_run_end=lambda result: seen.update(end=True),
        )
        HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[observer]
        ).run()
        assert seen["start"] and seen["end"] and seen["steps"] > 0

    def test_partial_callbacks_ok(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=44)
        observer = CallbackObserver()  # nothing wired up
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[observer]
        )
        assert engine.run().completed

    def test_only_run_end_wired(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=45)
        seen = []
        observer = CallbackObserver(on_run_end=seen.append)
        result = HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[observer]
        ).run()
        assert seen == [result]

    def test_only_step_wired(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=46)
        steps = []
        observer = CallbackObserver(
            on_step=lambda record, metrics: steps.append(record.step)
        )
        result = HotPotatoEngine(
            problem, PlainGreedyPolicy(), observers=[observer]
        ).run()
        assert steps == list(range(result.total_steps))


class TestNeedsSteps:
    def test_base_observer_consumes_steps_by_default(self):
        assert RunObserver.needs_steps is True

    def test_callback_observer_mirrors_its_wiring(self):
        assert CallbackObserver().needs_steps is False
        assert (
            CallbackObserver(on_run_end=lambda result: None).needs_steps
            is False
        )
        assert (
            CallbackObserver(on_step=lambda r, m: None).needs_steps is True
        )

    def test_step_free_callbacks_keep_the_lean_loop(self, mesh8):
        from repro.core.kernel import lean_equivalent

        observer = CallbackObserver(on_run_end=lambda result: None)
        assert lean_equivalent([], [observer], False)
