"""Unit tests for the synchronous hot-potato engine."""

import pytest

from repro.algorithms import PlainGreedyPolicy, RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine, default_step_limit, route
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.exceptions import ArcAssignmentError, LivelockSuspectedError
from repro.mesh.directions import Direction
from repro.workloads import random_many_to_many


class TestBasicRuns:
    def test_single_packet_shortest_path(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (4, 5))])
        result = route(problem, PlainGreedyPolicy())
        assert result.completed
        assert result.total_steps == 7  # L1 distance, no conflicts
        assert result.outcomes[0].hops == 7
        assert result.outcomes[0].deflections == 0

    def test_zero_distance_request_delivered_at_zero(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((2, 2), (2, 2))])
        result = route(problem, PlainGreedyPolicy())
        assert result.completed
        assert result.total_steps == 0
        assert result.outcomes[0].delivered_at == 0

    def test_empty_problem(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [])
        result = route(problem, PlainGreedyPolicy())
        assert result.completed
        assert result.total_steps == 0

    def test_two_opposing_packets_cross(self, mesh8):
        # Packets moving in opposite directions use antiparallel arcs
        # and never conflict.
        problem = RoutingProblem.from_pairs(
            mesh8, [((1, 1), (1, 5)), ((1, 5), (1, 1))]
        )
        result = route(problem, PlainGreedyPolicy())
        assert result.completed
        assert result.total_steps == 4
        assert result.total_deflections == 0

    def test_conflict_produces_exactly_one_deflection(self, mesh8):
        # Two packets at the same node, both restricted to the same arc.
        problem = RoutingProblem.from_pairs(
            mesh8, [((3, 1), (3, 5)), ((3, 1), (3, 6))]
        )
        result = route(problem, PlainGreedyPolicy())
        assert result.completed
        metrics0 = result.step_metrics[0]
        assert metrics0.advancing == 1
        assert metrics0.deflected == 1

    def test_delivery_counts(self, small_problem):
        result = route(small_problem, RestrictedPriorityPolicy())
        assert result.delivered == small_problem.k
        assert all(o.delivered for o in result.outcomes)

    def test_hop_accounting(self, small_problem):
        result = route(small_problem, RestrictedPriorityPolicy())
        for outcome in result.outcomes:
            assert outcome.hops == outcome.advances + outcome.deflections
            # advances - deflections == shortest distance for delivered.
            assert (
                outcome.advances - outcome.deflections
                == outcome.shortest_distance
            )

    def test_stretch_at_least_one(self, small_problem):
        result = route(small_problem, RestrictedPriorityPolicy())
        for outcome in result.outcomes:
            if outcome.stretch is not None:
                assert outcome.stretch >= 1.0


class TestModelRules:
    def test_one_packet_per_arc(self, mesh8):
        """No two packets ever traverse the same directed arc in a step."""
        problem = random_many_to_many(mesh8, k=60, seed=4)
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), record_steps=True
        )
        result = engine.run()
        assert result.completed
        for record in result.records:
            arcs = [
                (info.node, info.next_node)
                for info in record.infos.values()
            ]
            assert len(arcs) == len(set(arcs))

    def test_hot_potato_everyone_moves(self, mesh8):
        """Every in-flight packet moves every step (no buffering)."""
        problem = random_many_to_many(mesh8, k=40, seed=5)
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), record_steps=True
        )
        result = engine.run()
        for record in result.records:
            for info in record.infos.values():
                assert info.node != info.next_node

    def test_load_never_exceeds_degree(self, mesh8):
        problem = random_many_to_many(mesh8, k=100, seed=6)
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), record_steps=True
        )
        result = engine.run()
        for record in result.records:
            loads = {}
            for info in record.infos.values():
                loads[info.node] = loads.get(info.node, 0) + 1
            for node, load in loads.items():
                assert load <= mesh8.degree(node)

    def test_distance_changes_by_one(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=7)
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), record_steps=True
        )
        result = engine.run()
        for record in result.records:
            for info in record.infos.values():
                assert abs(info.distance_after - info.distance_before) == 1


class _StayPutPolicy(RoutingPolicy):
    """Returns an empty assignment — violates completeness."""

    name = "stay-put"

    def assign(self, view):
        return {}


class _CollidePolicy(RoutingPolicy):
    """Assigns every packet the same direction — violates injectivity."""

    name = "collide"

    def assign(self, view):
        direction = view.out_directions[0]
        return {p.id: direction for p in view.packets}


class _OffMeshPolicy(RoutingPolicy):
    """Sends packets off the mesh edge."""

    name = "off-mesh"

    def assign(self, view):
        assignment = {}
        used = set()
        for p in view.packets:
            for direction in Direction(0, -1), Direction(1, -1), Direction(0, 1), Direction(1, 1):
                if direction not in used:
                    assignment[p.id] = direction
                    used.add(direction)
                    break
        return assignment


class TestPolicyValidation:
    def test_incomplete_assignment_rejected(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (3, 3))])
        with pytest.raises(ArcAssignmentError):
            route(problem, _StayPutPolicy())

    def test_duplicate_direction_rejected(self, mesh8):
        problem = RoutingProblem.from_pairs(
            mesh8, [((3, 3), (5, 5)), ((3, 3), (6, 6))]
        )
        with pytest.raises(ArcAssignmentError):
            route(problem, _CollidePolicy())

    def test_off_mesh_direction_rejected(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (3, 3))])
        with pytest.raises(ArcAssignmentError):
            route(problem, _OffMeshPolicy())

    def test_unknown_packet_in_assignment_rejected(self, mesh8):
        class ExtraPolicy(RoutingPolicy):
            name = "extra"

            def assign(self, view):
                result = {
                    p.id: d
                    for p, d in zip(view.packets, view.out_directions)
                }
                result[999] = view.out_directions[-1]
                return result

        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (3, 3))])
        with pytest.raises(ArcAssignmentError):
            route(problem, ExtraPolicy())


class TestStepBudget:
    def test_default_step_limit_scales(self, mesh8):
        small = random_many_to_many(mesh8, k=5, seed=0)
        large = random_many_to_many(mesh8, k=100, seed=0)
        assert default_step_limit(large) > default_step_limit(small)

    def test_timeout_returns_incomplete(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=9)
        engine = HotPotatoEngine(problem, PlainGreedyPolicy(), max_steps=1)
        result = engine.run()
        assert not result.completed
        assert result.total_steps == 1

    def test_timeout_raises_when_asked(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=9)
        engine = HotPotatoEngine(
            problem,
            PlainGreedyPolicy(),
            max_steps=1,
            raise_on_timeout=True,
        )
        with pytest.raises(LivelockSuspectedError):
            engine.run()


class TestIntrospection:
    def test_global_state_stable_shape(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=3)
        engine = HotPotatoEngine(problem, PlainGreedyPolicy())
        state_before = engine.global_state()
        assert len(state_before) == 5
        engine.step()
        assert engine.global_state() != state_before

    def test_current_positions(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (1, 3))])
        engine = HotPotatoEngine(problem, PlainGreedyPolicy())
        assert engine.current_positions == {0: (1, 1)}
        engine.step()
        assert engine.current_positions == {0: (1, 2)}

    def test_record_paths(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (1, 3))])
        engine = HotPotatoEngine(
            problem, PlainGreedyPolicy(), record_paths=True
        )
        engine.run()
        assert engine.packets[0].path == [(1, 1), (1, 2), (1, 3)]

    def test_result_metadata(self, small_problem):
        result = route(small_problem, RestrictedPriorityPolicy(), seed=42)
        assert result.policy_name == "restricted-priority"
        assert result.k == small_problem.k
        assert result.side == 8
        assert result.dimension == 2
        assert result.seed == 42
