"""SoA column round-trips, fallback selection, and rejected configs.

The differential suites prove whole runs bit-identical; these unit
tests pin the seams of the structure-of-arrays backend in isolation —
:class:`~repro.core.soa.columns.PacketColumns` pack/writeback against
mid-run object state, the numpy/pure-Python path auto-selection, and
the ValueErrors for every configuration ``backend="soa"`` refuses.
"""

import pytest

from repro.algorithms import (
    DimensionOrderPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.soa import SoaKernel, _compat, adapter_for
from repro.core.soa.columns import PacketColumns
from repro.core.validation import validators_for
from repro.dynamic import BernoulliTraffic, DynamicEngine
from repro.faults import FaultSchedule, PacketDrop, RunWatchdog
from repro.mesh.tables import arc_tables_for
from repro.mesh.topology import Mesh
from repro.workloads import random_permutation


def _problem(seed=3):
    return random_permutation(Mesh(2, 5), seed=seed)


def _engine(backend="object", *, policy=None, **kwargs):
    policy = policy if policy is not None else RestrictedPriorityPolicy()
    return HotPotatoEngine(
        _problem(),
        policy,
        seed=11,
        validators=validators_for(policy, strict=False),
        backend=backend,
        **kwargs,
    )


#: Every Packet attribute PacketColumns carries (id is the row key).
_CARRIED = (
    "location",
    "entry_direction",
    "restricted_last_step",
    "advanced_last_step",
    "hops",
    "advances",
    "deflections",
)


def _snapshot(packet):
    return {name: getattr(packet, name) for name in _CARRIED}


class TestPackUnpackRoundTrip:
    def _mid_run_packets(self):
        # A truncated run leaves packets with non-trivial state:
        # interior locations, entry directions, mixed flags, counters.
        engine = _engine(max_steps=4)
        engine.run()
        packets = list(engine.in_flight)
        assert packets, "workload must leave packets in flight"
        assert any(p.entry_direction is not None for p in packets)
        return packets

    def test_pack_does_not_mutate_packets(self):
        packets = self._mid_run_packets()
        before = [_snapshot(p) for p in packets]
        PacketColumns.pack(packets, arc_tables_for(Mesh(2, 5)))
        assert [_snapshot(p) for p in packets] == before

    def test_unpack_restores_every_carried_attribute(self):
        packets = self._mid_run_packets()
        expected = [_snapshot(p) for p in packets]
        columns = PacketColumns.pack(packets, arc_tables_for(Mesh(2, 5)))
        # Scramble the live objects; unpack must restore them from the
        # columns alone.
        for packet in packets:
            packet.location = (1, 1)
            packet.entry_direction = None
            packet.restricted_last_step = not packet.restricted_last_step
            packet.advanced_last_step = not packet.advanced_last_step
            packet.hops += 100
            packet.advances += 100
            packet.deflections += 100
        restored = columns.unpack()
        assert restored == packets  # same objects, row order = id order
        assert [_snapshot(p) for p in restored] == expected

    def test_rows_follow_in_flight_order(self):
        packets = self._mid_run_packets()
        columns = PacketColumns.pack(packets, arc_tables_for(Mesh(2, 5)))
        assert columns.ids == [p.id for p in packets]
        assert len(columns) == len(packets)
        tables = columns.tables
        assert [tables.index_node[i] for i in columns.pos] == [
            p.location for p in packets
        ]
        assert [tables.index_node[i] for i in columns.dest] == [
            p.destination for p in packets
        ]

    def test_compact_drops_unkept_rows(self):
        packets = self._mid_run_packets()
        columns = PacketColumns.pack(packets, arc_tables_for(Mesh(2, 5)))
        keep = [row % 2 == 0 for row in range(len(columns))]
        kept_ids = [pid for pid, flag in zip(columns.ids, keep) if flag]
        columns.compact(keep)
        assert columns.ids == kept_ids
        assert len(columns.pos) == len(kept_ids)
        assert all(
            len(axis_column) == len(kept_ids)
            for axis_column in columns.dest_coords
        )


class TestPathSelection:
    """``SoaKernel.vectorized`` — decided at construction time."""

    def _kernel_for(self, policy):
        engine = _engine(policy=policy)
        adapter = adapter_for(policy, buffered=False, has_injection=False)
        return engine._kernel, adapter

    def test_rng_free_policy_vectorizes_with_numpy(self):
        pytest.importorskip("numpy")
        kernel, adapter = self._kernel_for(RestrictedPriorityPolicy())
        assert SoaKernel(kernel, adapter).vectorized is True

    def test_rng_consuming_policy_forces_columnar(self):
        policy = RestrictedPriorityPolicy(tie_break="random")
        kernel, adapter = self._kernel_for(policy)
        assert SoaKernel(kernel, adapter).vectorized is False

    def test_force_python_skips_numpy(self):
        kernel, adapter = self._kernel_for(RestrictedPriorityPolicy())
        assert (
            SoaKernel(kernel, adapter, force_python=True).vectorized
            is False
        )

    def test_missing_numpy_auto_selects_pure_python(self):
        kernel, adapter = self._kernel_for(RestrictedPriorityPolicy())
        saved = _compat.np
        _compat.np = None
        try:
            assert SoaKernel(kernel, adapter).vectorized is False
        finally:
            _compat.np = saved

    def test_missing_numpy_engine_still_runs(self):
        expected = _engine().run()
        soa = _engine(backend="soa")
        saved = _compat.np
        _compat.np = None
        try:
            assert soa.run() == expected
        finally:
            _compat.np = saved


class TestRejectedConfigurations:
    def test_unknown_backend_string(self):
        with pytest.raises(ValueError, match="backend must be"):
            _engine(backend="simd")

    def test_record_paths_is_rejected(self):
        with pytest.raises(ValueError, match="record_paths"):
            _engine(backend="soa", record_paths=True)

    def test_watchdog_is_rejected(self):
        with pytest.raises(ValueError, match="watchdog"):
            _engine(backend="soa", watchdog=RunWatchdog())

    def test_nonempty_fault_schedule_is_rejected(self):
        schedule = FaultSchedule(
            events=(PacketDrop(node=(1, 1), step=2),)
        )
        with pytest.raises(ValueError, match="fault"):
            _engine(backend="soa", faults=schedule)

    def test_empty_fault_schedule_is_accepted(self):
        engine = _engine(backend="soa", faults=FaultSchedule.empty())
        assert engine.run().completed

    def test_policy_subclass_is_rejected(self):
        # Adapters match by exact class: a subclass may override the
        # priority logic, so it must fall back to backend="object".
        class Tweaked(RestrictedPriorityPolicy):
            pass

        with pytest.raises(ValueError, match="does not support policy"):
            _engine(backend="soa", policy=Tweaked())

    def test_buffered_policy_on_hot_potato_engine_is_rejected(self):
        with pytest.raises(ValueError, match="buffered"):
            adapter_for(
                DimensionOrderPolicy(), buffered=False, has_injection=False
            )

    def test_hot_potato_policy_on_buffered_engine_is_rejected(self):
        with pytest.raises(ValueError, match="buffered"):
            BufferedEngine(
                _problem(),
                RestrictedPriorityPolicy(),
                seed=0,
                backend="soa",
            )

    def test_strict_validators_fail_at_run_time(self):
        policy = RestrictedPriorityPolicy()
        engine = HotPotatoEngine(
            _problem(), policy, seed=11, backend="soa"
        )  # default validators are strict -> not lean-eligible
        with pytest.raises(ValueError, match="lean loop only"):
            engine.run()

    def test_record_steps_fails_at_run_time(self):
        engine = _engine(backend="soa", record_steps=True)
        with pytest.raises(ValueError, match="lean loop only"):
            engine.run()

    def test_dynamic_step_observers_fail_at_run_time(self):
        class StepConsumer:
            needs_steps = True

            def on_run_start(self, engine):
                pass

        engine = DynamicEngine(
            Mesh(2, 4),
            RestrictedPriorityPolicy(),
            BernoulliTraffic(rate=0.05),
            seed=5,
            backend="soa",
            observers=(StepConsumer(),),
        )
        with pytest.raises(ValueError, match="observers"):
            engine.run(10)
