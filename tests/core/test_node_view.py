"""Unit tests for NodeView (the per-node, per-step local picture)."""

from repro.core.node_view import NodeView
from repro.core.packet import Packet, RestrictedType
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh


def make_view(mesh, entries):
    """Build a view at the first entry's node from (source, dest) pairs."""
    node = entries[0][0]
    packets = [
        Packet(id=i, source=source, destination=dest)
        for i, (source, dest) in enumerate(entries)
    ]
    return NodeView(mesh, node, 0, packets), packets


class TestGoodDirections:
    def test_diagonal_packet_two_good(self):
        mesh = Mesh(2, 5)
        view, packets = make_view(mesh, [((2, 2), (4, 4))])
        assert set(view.good_directions(packets[0])) == {
            Direction(0, 1),
            Direction(1, 1),
        }
        assert view.num_good(packets[0]) == 2
        assert not view.is_restricted(packets[0])

    def test_restricted_packet(self):
        mesh = Mesh(2, 5)
        view, packets = make_view(mesh, [((2, 2), (2, 5))])
        assert view.is_restricted(packets[0])
        assert view.good_directions(packets[0]) == (Direction(1, 1),)

    def test_type_classification_uses_history(self):
        mesh = Mesh(2, 5)
        packet = Packet(id=0, source=(2, 2), destination=(2, 5))
        packet.advanced_last_step = True
        packet.restricted_last_step = True
        view = NodeView(mesh, (2, 2), 3, [packet])
        assert view.restricted_type(packet) is RestrictedType.TYPE_A
        assert view.is_type_a(packet)

    def test_fresh_restricted_is_type_b(self):
        mesh = Mesh(2, 5)
        view, packets = make_view(mesh, [((2, 2), (2, 5))])
        assert view.restricted_type(packets[0]) is RestrictedType.TYPE_B

    def test_unrestricted_type(self):
        mesh = Mesh(2, 5)
        view, packets = make_view(mesh, [((2, 2), (4, 4))])
        assert (
            view.restricted_type(packets[0]) is RestrictedType.UNRESTRICTED
        )


class TestAggregates:
    def test_packets_sorted_by_id(self):
        mesh = Mesh(2, 5)
        packets = [
            Packet(id=3, source=(2, 2), destination=(4, 4)),
            Packet(id=1, source=(2, 2), destination=(1, 1)),
        ]
        view = NodeView(mesh, (2, 2), 0, packets)
        assert [p.id for p in view.packets] == [1, 3]

    def test_load_and_bad_node(self):
        mesh = Mesh(2, 5)
        entries = [((3, 3), (1, 1)), ((3, 3), (5, 5)), ((3, 3), (3, 5))]
        view, _ = make_view(mesh, entries)
        assert view.load == 3
        assert view.is_bad_node()  # 3 > d = 2

    def test_good_node(self):
        mesh = Mesh(2, 5)
        view, _ = make_view(mesh, [((3, 3), (1, 1)), ((3, 3), (5, 5))])
        assert not view.is_bad_node()

    def test_advancing_capacity(self):
        mesh = Mesh(2, 5)
        # Two packets wanting only the same single direction.
        view, _ = make_view(mesh, [((2, 2), (2, 5)), ((2, 2), (2, 4))])
        assert view.advancing_capacity() == 1

    def test_out_directions_at_corner(self):
        mesh = Mesh(2, 5)
        packet = Packet(id=0, source=(1, 1), destination=(5, 5))
        view = NodeView(mesh, (1, 1), 0, [packet])
        assert set(view.out_directions) == {Direction(0, 1), Direction(1, 1)}

    def test_repr(self):
        mesh = Mesh(2, 5)
        view, _ = make_view(mesh, [((2, 2), (4, 4))])
        assert "load=1" in repr(view)
