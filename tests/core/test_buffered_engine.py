"""Unit tests for the store-and-forward engine and dimension-order routing."""

import pytest

from repro.algorithms import DimensionOrderPolicy
from repro.algorithms.dimension_order import dimension_order_direction
from repro.core.buffered_engine import BufferedEngine
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.problem import RoutingProblem
from repro.exceptions import ArcAssignmentError
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many, transpose


class TestDimensionOrderDirection:
    def test_axis_zero_first(self):
        mesh = Mesh(2, 5)
        packet = Packet(id=0, source=(1, 1), destination=(3, 4))
        view = NodeView(mesh, (1, 1), 0, [packet])
        assert dimension_order_direction(view, packet) == Direction(0, 1)

    def test_axis_one_after_zero_fixed(self):
        mesh = Mesh(2, 5)
        packet = Packet(id=0, source=(3, 1), destination=(3, 4))
        view = NodeView(mesh, (3, 1), 0, [packet])
        assert dimension_order_direction(view, packet) == Direction(1, 1)

    def test_none_at_destination(self):
        mesh = Mesh(2, 5)
        packet = Packet(id=0, source=(3, 3), destination=(3, 3))
        view = NodeView(mesh, (3, 3), 0, [packet])
        assert dimension_order_direction(view, packet) is None


class TestBufferedRuns:
    def test_single_packet_follows_xy_path(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((1, 1), (4, 5))])
        result = BufferedEngine(problem, DimensionOrderPolicy()).run()
        assert result.completed
        assert result.total_steps == 7
        assert result.outcomes[0].hops == 7

    def test_contention_waits_instead_of_deflecting(self, mesh8):
        # Two packets from the same node along the same row: one waits.
        problem = RoutingProblem.from_pairs(
            mesh8, [((3, 1), (3, 4)), ((3, 1), (3, 5))]
        )
        result = BufferedEngine(problem, DimensionOrderPolicy()).run()
        assert result.completed
        # The second packet is delayed exactly one step behind.
        times = sorted(o.delivered_at for o in result.outcomes)
        assert times == [3, 5] or times == [4, 4]
        # Store-and-forward never deflects.
        assert all(o.deflections == 0 for o in result.outcomes)

    def test_random_batch_completes(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=13)
        result = BufferedEngine(problem, DimensionOrderPolicy()).run()
        assert result.completed
        assert result.delivered == 60

    def test_transpose_completes_with_buffering(self, mesh8):
        result = BufferedEngine(transpose(mesh8), DimensionOrderPolicy()).run()
        assert result.completed

    def test_buffer_occupancy_tracked(self, mesh8):
        problem = random_many_to_many(mesh8, k=80, seed=14)
        engine = BufferedEngine(problem, DimensionOrderPolicy())
        engine.run()
        assert engine.max_buffer_seen >= 1

    def test_all_moves_shortest_path(self, mesh8):
        """Dimension-order routing never lengthens a path: hops equal
        the shortest distance for every packet."""
        problem = random_many_to_many(mesh8, k=50, seed=15)
        result = BufferedEngine(problem, DimensionOrderPolicy()).run()
        for outcome in result.outcomes:
            assert outcome.hops == outcome.shortest_distance

    def test_zero_distance_delivered_immediately(self, mesh8):
        problem = RoutingProblem.from_pairs(mesh8, [((2, 2), (2, 2))])
        result = BufferedEngine(problem, DimensionOrderPolicy()).run()
        assert result.total_steps == 0

    def test_timeout_flagged(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=16)
        engine = BufferedEngine(
            problem, DimensionOrderPolicy(), max_steps=1
        )
        result = engine.run()
        assert not result.completed


class TestBufferedValidation:
    def test_duplicate_direction_rejected(self, mesh8):
        class BadPolicy(DimensionOrderPolicy):
            name = "bad-buffered"

            def forward(self, view):
                direction = view.out_directions[0]
                return {p.id: direction for p in view.packets}

        problem = RoutingProblem.from_pairs(
            mesh8, [((3, 3), (5, 5)), ((3, 3), (6, 6))]
        )
        with pytest.raises(ArcAssignmentError):
            BufferedEngine(problem, BadPolicy()).run()

    def test_unknown_packet_rejected(self, mesh8):
        class GhostPolicy(DimensionOrderPolicy):
            name = "ghost"

            def forward(self, view):
                return {999: view.out_directions[0]}

        problem = RoutingProblem.from_pairs(mesh8, [((3, 3), (5, 5))])
        with pytest.raises(ArcAssignmentError):
            BufferedEngine(problem, GhostPolicy()).run()
