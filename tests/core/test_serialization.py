"""Tests for JSON serialization of problems, results, and traces."""

import json

import pytest

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import route
from repro.core.serialization import (
    load_result,
    load_trace,
    mesh_from_dict,
    mesh_to_dict,
    problem_from_dict,
    problem_to_dict,
    result_from_dict,
    result_to_dict,
    save_result,
    save_trace,
    trace_from_dict,
    trace_to_dict,
)
from repro.core.trace import record_run, traces_equal
from repro.exceptions import TraceError
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.workloads import random_many_to_many


class TestMeshRoundTrip:
    @pytest.mark.parametrize(
        "mesh", [Mesh(2, 8), Mesh(3, 4), Torus(2, 6), Hypercube(4)]
    )
    def test_round_trip(self, mesh):
        restored = mesh_from_dict(mesh_to_dict(mesh))
        assert restored == mesh
        assert restored.kind == mesh.kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(TraceError):
            mesh_from_dict({"kind": "klein-bottle", "dimension": 2, "side": 4})


class TestProblemRoundTrip:
    def test_round_trip(self, mesh8):
        problem = random_many_to_many(mesh8, k=15, seed=0, name="demo")
        restored = problem_from_dict(problem_to_dict(problem))
        assert restored.requests == problem.requests
        assert restored.name == "demo"
        assert restored.mesh == mesh8

    def test_json_compatible(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=1)
        json.dumps(problem_to_dict(problem))  # no exception


class TestResultRoundTrip:
    def test_round_trip(self, mesh8):
        problem = random_many_to_many(mesh8, k=20, seed=2)
        result = route(problem, RestrictedPriorityPolicy(), seed=2)
        restored = result_from_dict(
            json.loads(json.dumps(result_to_dict(result)))
        )
        assert restored.total_steps == result.total_steps
        assert restored.delivered == result.delivered
        assert len(restored.step_metrics) == len(result.step_metrics)
        assert restored.step_metrics[0] == result.step_metrics[0]
        assert restored.outcomes[3].hops == result.outcomes[3].hops
        assert restored.summary() == result.summary()
        assert restored.telemetry == result.telemetry
        assert restored.telemetry is not None

    def test_pre_telemetry_payload_loads_as_none(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=2)
        result = route(problem, RestrictedPriorityPolicy(), seed=2)
        data = result_to_dict(result)
        del data["telemetry"]  # payload written before telemetry existed
        assert result_from_dict(data).telemetry is None

    def test_file_round_trip(self, mesh8, tmp_path):
        problem = random_many_to_many(mesh8, k=10, seed=3)
        result = route(problem, RestrictedPriorityPolicy(), seed=3)
        path = str(tmp_path / "result.json")
        save_result(result, path)
        restored = load_result(path)
        assert restored.total_steps == result.total_steps


class TestTraceRoundTrip:
    def test_round_trip_preserves_movement(self, mesh8):
        problem = random_many_to_many(mesh8, k=25, seed=4)
        trace = record_run(problem, RestrictedPriorityPolicy(), seed=4)
        restored = trace_from_dict(
            json.loads(json.dumps(trace_to_dict(trace)))
        )
        assert traces_equal(trace, restored)
        restored.verify_consistency()

    def test_file_round_trip_and_validation(self, mesh8, tmp_path):
        problem = random_many_to_many(mesh8, k=15, seed=5)
        trace = record_run(problem, RestrictedPriorityPolicy(), seed=5)
        path = str(tmp_path / "trace.json")
        save_trace(trace, path)
        restored = load_trace(path)
        assert traces_equal(trace, restored)

    def test_load_rejects_corrupted_trace(self, mesh8, tmp_path):
        problem = random_many_to_many(mesh8, k=5, seed=6)
        trace = record_run(problem, RestrictedPriorityPolicy(), seed=6)
        data = trace_to_dict(trace)
        # Teleport a packet in step 1.
        data["records"][1]["infos"][0]["node"] = [8, 8]
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(data))
        with pytest.raises(TraceError):
            load_trace(str(path))

    def test_restricted_types_preserved(self, mesh8):
        from repro.workloads import single_target

        problem = single_target(mesh8, k=30, seed=7)
        trace = record_run(problem, RestrictedPriorityPolicy(), seed=7)
        restored = trace_from_dict(trace_to_dict(trace))
        for original, copy in zip(trace.records, restored.records):
            for packet_id, info in original.infos.items():
                assert (
                    copy.infos[packet_id].restricted_type
                    == info.restricted_type
                )
                assert (
                    copy.infos[packet_id].entry_direction
                    == info.entry_direction
                )
