"""The shared step kernel: knobs, shared helpers, engine parity.

Covers the machinery every engine now rides on: the constructor knob
validation, the one shared ``default_step_limit``/``describe_seed``
pair (previously duplicated per engine), the summary→metrics mapping,
and the lean-loop eligibility predicate.
"""

import random

import pytest

from repro.algorithms import DimensionOrderPolicy, PlainGreedyPolicy
from repro.core import engine as engine_mod
from repro.core import kernel as kernel_mod
from repro.core import rng as rng_mod
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.events import RunObserver
from repro.core.kernel import (
    InjectionSource,
    StepKernel,
    StepSummary,
    default_step_limit,
    lean_equivalent,
    step_metrics_from_summary,
)
from repro.core.rng import describe_seed
from repro.core.validation import CapacityValidator, GreedyValidator
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


@pytest.fixture
def mesh():
    return Mesh(2, 4)


@pytest.fixture
def problem(mesh):
    return random_many_to_many(mesh, k=8, seed=3)


class TestSharedHelpers:
    """Satellite: one implementation, every engine uses it."""

    def test_describe_seed_has_one_home(self):
        assert engine_mod.describe_seed is rng_mod.describe_seed

    def test_default_step_limit_has_one_home(self):
        assert engine_mod.default_step_limit is kernel_mod.default_step_limit

    def test_describe_seed_int_passthrough(self):
        assert describe_seed(42) == 42

    def test_describe_seed_none_is_default_stream(self):
        assert describe_seed(None) == 0

    def test_describe_seed_rng_is_state_digest(self):
        a = describe_seed(random.Random(5))
        b = describe_seed(random.Random(5))
        c = describe_seed(random.Random(6))
        assert a == b != c
        assert isinstance(a, str) and a.startswith("rng-state:")

    def test_all_batch_engines_default_to_shared_limit(self, problem):
        hot = HotPotatoEngine(problem, PlainGreedyPolicy())
        buf = BufferedEngine(problem, DimensionOrderPolicy())
        assert hot.max_steps == buf.max_steps == default_step_limit(problem)

    def test_all_batch_engines_describe_seed_uniformly(self, problem):
        source = random.Random(99)
        expected = describe_seed(random.Random(99))
        hot = HotPotatoEngine(problem, PlainGreedyPolicy(), seed=source)
        buf = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=random.Random(99)
        )
        assert hot.run().seed == expected
        assert buf.run().seed == expected


class TestKernelKnobs:
    def test_rejects_unknown_node_order(self, mesh):
        with pytest.raises(ValueError, match="node_order"):
            StepKernel(mesh, PlainGreedyPolicy(), node_order="hashed")

    def test_buffered_kernel_requires_forwarding_policy(self, mesh):
        with pytest.raises(TypeError, match="BufferedPolicy"):
            StepKernel(mesh, PlainGreedyPolicy(), buffered=True)

    def test_hot_potato_kernel_requires_assigning_policy(self, mesh):
        class ForwardOnly:
            name = "forward-only"

            def forward(self, view):
                return {}

        with pytest.raises(TypeError, match="RoutingPolicy"):
            StepKernel(mesh, ForwardOnly())

    def test_injection_source_default_backlog_is_zero(self):
        class NullSource(InjectionSource):
            def admit(self, time, in_flight):
                return 0, 0

        assert NullSource().backlog_size() == 0


class TestSummaryConversion:
    def test_metrics_mapping(self):
        summary = StepSummary(
            step=4,
            generated=3,
            injected=2,
            routed=10,
            moved=7,
            advancing=5,
            delivered=1,
            delivered_total=6,
            total_distance=40,
            max_node_load=3,
            bad_nodes=1,
            packets_in_bad_nodes=3,
            backlog=2,
        )
        metrics = step_metrics_from_summary(summary)
        assert metrics.step == 4
        assert metrics.in_flight == 10
        assert metrics.advancing == 5
        # Deflected counts only *moved* non-advancing packets: under
        # buffered semantics waiting packets neither advance nor deflect.
        assert metrics.deflected == 2
        assert metrics.packets_in_good_nodes == 7
        assert metrics.packets_in_bad_nodes == 3
        assert metrics.max_node_load == 3


class TestLeanEquivalence:
    def test_plain_capacity_stack_is_eligible(self):
        assert lean_equivalent([CapacityValidator()], [], False)

    def test_anything_observable_disqualifies(self):
        assert not lean_equivalent([], [RunObserver()], False)
        assert not lean_equivalent([], [], True)
        assert not lean_equivalent([GreedyValidator()], [], False)

    def test_capacity_subclass_disqualifies(self):
        class Tightened(CapacityValidator):
            pass

        assert not lean_equivalent([Tightened()], [], False)

    def test_step_free_observer_does_not_disqualify(self):
        class RunBoundaryObserver(RunObserver):
            needs_steps = False

        assert lean_equivalent(
            [CapacityValidator()], [RunBoundaryObserver()], False
        )
        # Mixing in one step consumer flips it back.
        assert not lean_equivalent(
            [], [RunBoundaryObserver(), RunObserver()], False
        )
