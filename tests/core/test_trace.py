"""Unit tests for trace capture, consistency checks, and replay."""

import pytest

from repro.algorithms import PlainGreedyPolicy, RestrictedPriorityPolicy
from repro.core.metrics import PacketStepInfo, StepRecord
from repro.core.trace import Trace, record_run, traces_equal
from repro.exceptions import TraceError
from repro.workloads import random_many_to_many


class TestRecordRun:
    def test_records_every_step(self, mesh8):
        problem = random_many_to_many(mesh8, k=15, seed=20)
        trace = record_run(problem, RestrictedPriorityPolicy(), seed=20)
        assert trace.num_steps == trace.result.total_steps
        assert trace.result.completed

    def test_consistency_passes(self, mesh8):
        problem = random_many_to_many(mesh8, k=25, seed=21)
        trace = record_run(problem, PlainGreedyPolicy(), seed=21)
        trace.verify_consistency()  # no exception

    def test_positions_at_start(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=22)
        trace = record_run(problem, PlainGreedyPolicy(), seed=22)
        positions = trace.positions_at(0)
        for packet_id, node in positions.items():
            assert node == problem.requests[packet_id].source

    def test_positions_at_end_empty(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=23)
        trace = record_run(problem, PlainGreedyPolicy(), seed=23)
        assert trace.positions_at(trace.num_steps) == {}

    def test_positions_time_out_of_range(self, mesh8):
        problem = random_many_to_many(mesh8, k=5, seed=24)
        trace = record_run(problem, PlainGreedyPolicy(), seed=24)
        with pytest.raises(TraceError):
            trace.positions_at(trace.num_steps + 1)
        with pytest.raises(TraceError):
            trace.positions_at(-1)


class TestDeterminism:
    def test_same_seed_same_trace(self, mesh8):
        problem = random_many_to_many(mesh8, k=30, seed=25)
        first = record_run(problem, RestrictedPriorityPolicy(), seed=7)
        second = record_run(problem, RestrictedPriorityPolicy(), seed=7)
        assert traces_equal(first, second)

    def test_randomized_policy_differs_across_seeds(self, mesh8):
        from repro.algorithms import RandomizedGreedyPolicy

        # Dense enough that random tie-breaking certainly fires.
        problem = random_many_to_many(mesh8, k=100, seed=26)
        first = record_run(problem, RandomizedGreedyPolicy(), seed=1)
        second = record_run(problem, RandomizedGreedyPolicy(), seed=2)
        assert not traces_equal(first, second)

    def test_randomized_policy_reproducible_with_same_seed(self, mesh8):
        from repro.algorithms import RandomizedGreedyPolicy

        problem = random_many_to_many(mesh8, k=100, seed=26)
        first = record_run(problem, RandomizedGreedyPolicy(), seed=5)
        second = record_run(problem, RandomizedGreedyPolicy(), seed=5)
        assert traces_equal(first, second)


class TestConsistencyDetection:
    def _tampered_trace(self, mesh8, mutate):
        problem = random_many_to_many(mesh8, k=8, seed=27)
        trace = record_run(problem, PlainGreedyPolicy(), seed=27)
        records = list(trace.records)
        mutate(records)
        return Trace(
            problem=problem,
            policy_name=trace.policy_name,
            seed=trace.seed,
            records=records,
        )

    def test_detects_teleport(self, mesh8):
        def mutate(records):
            record = records[1]
            infos = dict(record.infos)
            packet_id, info = next(iter(infos.items()))
            tampered = PacketStepInfo(
                packet_id=info.packet_id,
                node=(8, 8) if info.node != (8, 8) else (1, 1),
                destination=info.destination,
                entry_direction=info.entry_direction,
                assigned_direction=info.assigned_direction,
                next_node=info.next_node,
                distance_before=info.distance_before,
                distance_after=info.distance_after,
                num_good=info.num_good,
                restricted=info.restricted,
                restricted_type=info.restricted_type,
            )
            infos[packet_id] = tampered
            records[1] = StepRecord(
                step=record.step,
                infos=infos,
                delivered_after=record.delivered_after,
            )

        trace = self._tampered_trace(mesh8, mutate)
        with pytest.raises(TraceError):
            trace.verify_consistency()

    def test_detects_ghost_packet(self, mesh8):
        def mutate(records):
            record = records[0]
            infos = dict(record.infos)
            info = next(iter(infos.values()))
            ghost = PacketStepInfo(
                packet_id=999,
                node=info.node,
                destination=info.destination,
                entry_direction=None,
                assigned_direction=info.assigned_direction,
                next_node=info.next_node,
                distance_before=info.distance_before,
                distance_after=info.distance_after,
                num_good=info.num_good,
                restricted=info.restricted,
                restricted_type=info.restricted_type,
            )
            infos[999] = ghost
            records[0] = StepRecord(
                step=record.step,
                infos=infos,
                delivered_after=record.delivered_after,
            )

        trace = self._tampered_trace(mesh8, mutate)
        with pytest.raises(TraceError):
            trace.verify_consistency()

    def test_detects_false_delivery(self, mesh8):
        def mutate(records):
            record = records[0]
            # Claim a packet that did not reach its destination was
            # delivered.
            undelivered = [
                packet_id
                for packet_id, info in record.infos.items()
                if info.next_node != info.destination
            ]
            records[0] = StepRecord(
                step=record.step,
                infos=record.infos,
                delivered_after=tuple(undelivered[:1]),
            )

        trace = self._tampered_trace(mesh8, mutate)
        with pytest.raises(TraceError):
            trace.verify_consistency()


class TestTracesEqual:
    def test_equal_to_self(self, mesh8):
        problem = random_many_to_many(mesh8, k=10, seed=28)
        trace = record_run(problem, PlainGreedyPolicy(), seed=28)
        assert traces_equal(trace, trace)

    def test_different_policies_differ(self, mesh8):
        problem = random_many_to_many(mesh8, k=60, seed=29)
        greedy = record_run(problem, PlainGreedyPolicy(), seed=29)
        restricted = record_run(
            problem, RestrictedPriorityPolicy(), seed=29
        )
        # With 60 packets on an 8x8 mesh the two priority rules almost
        # surely make at least one different choice.
        assert not traces_equal(greedy, restricted)
