"""Unit tests for the seeded RNG helpers."""

import random

from repro.core.rng import fresh_seed, make_rng, spawn


class TestMakeRng:
    def test_none_is_deterministic(self):
        assert make_rng(None).random() == make_rng(None).random()

    def test_int_seed_reproducible(self):
        assert make_rng(42).random() == make_rng(42).random()

    def test_different_seeds_differ(self):
        assert make_rng(1).random() != make_rng(2).random()

    def test_passthrough_random_instance(self):
        rng = random.Random(7)
        assert make_rng(rng) is rng


class TestSpawn:
    def test_children_decorrelated_by_key(self):
        parent = random.Random(0)
        a = spawn(parent, "a")
        parent2 = random.Random(0)
        b = spawn(parent2, "b")
        assert a.random() != b.random()

    def test_child_reproducible(self):
        a = spawn(random.Random(5), "policy")
        b = spawn(random.Random(5), "policy")
        assert [a.random() for _ in range(5)] == [
            b.random() for _ in range(5)
        ]


class TestFreshSeed:
    def test_range(self):
        seed = fresh_seed(random.Random(0))
        assert 0 <= seed < 2**63

    def test_reproducible_from_rng(self):
        assert fresh_seed(random.Random(3)) == fresh_seed(random.Random(3))

    def test_default_entropy_varies(self):
        # Extremely unlikely to collide twice.
        assert fresh_seed() != fresh_seed() or fresh_seed() != fresh_seed()
