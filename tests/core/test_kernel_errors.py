"""ArcAssignmentError paths: malformed policy output must raise the
same structured error on every kernel path (lean, instrumented, and
the fault-guarded twin)."""

import pytest

from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.events import RunObserver
from repro.core.policy import BufferedPolicy, RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.exceptions import ArcAssignmentError
from repro.faults import FaultSchedule
from repro.mesh.topology import Mesh


def one_packet_problem():
    return RoutingProblem.from_pairs(
        Mesh(2, 3), [((1, 1), (3, 3))], name="one"
    )


class EmptyAssignmentPolicy(RoutingPolicy):
    """Violates "nobody stays": returns no direction for anyone."""

    name = "empty-assignment"

    def assign(self, view):
        return {}


class OffMeshPolicy(RoutingPolicy):
    """Assigns a direction whose arc leaves the mesh at the node."""

    name = "off-mesh"

    def assign(self, view):
        arcs = view.mesh.node_arcs(view.node)
        live = set(arcs.by_direction)
        dead = [d for d in view.mesh.directions if d not in live]
        direction = dead[0] if dead else arcs.out_directions[0]
        return {packet.id: direction for packet in view.packets}


class HoldThenCollidePolicy(BufferedPolicy):
    """Forwards packet 0 greedily while holding packet 1; once the two
    share a node both get the same arc — a capacity violation."""

    name = "hold-then-collide"

    def forward(self, view):
        if len(view.packets) >= 2:
            direction = view.good_directions(view.packets[0])[0]
            return {p.id: direction for p in view.packets}
        packet = view.packets[0]
        if packet.id == 1:
            return {}  # hold until the other packet arrives
        return {packet.id: view.good_directions(packet)[0]}


class UnknownPacketPolicy(BufferedPolicy):
    """Names a packet id that is not buffered at the node."""

    name = "unknown-packet"

    def forward(self, view):
        direction = view.mesh.node_arcs(view.node).out_directions[0]
        return {9999: direction}


class TestHotPotatoBadPolicies:
    def test_empty_assignment_raises_on_lean_path(self):
        engine = HotPotatoEngine(
            one_packet_problem(), EmptyAssignmentPolicy(), seed=0
        )
        with pytest.raises(ArcAssignmentError):
            engine.run()

    def test_empty_assignment_raises_on_instrumented_path(self):
        engine = HotPotatoEngine(
            one_packet_problem(),
            EmptyAssignmentPolicy(),
            seed=0,
            observers=[RunObserver()],
        )
        with pytest.raises(ArcAssignmentError):
            engine.run()

    def test_empty_assignment_raises_on_guarded_path(self):
        """The fault-guarded lean twin keeps the strict checks."""
        engine = HotPotatoEngine(
            one_packet_problem(),
            EmptyAssignmentPolicy(),
            seed=0,
            faults=FaultSchedule.empty(),
        )
        with pytest.raises(ArcAssignmentError):
            engine.run()

    def test_off_mesh_direction_raises_everywhere(self):
        for kwargs in (
            {},
            {"observers": [RunObserver()]},
            {"faults": FaultSchedule.empty()},
        ):
            engine = HotPotatoEngine(
                one_packet_problem(), OffMeshPolicy(), seed=0, **kwargs
            )
            with pytest.raises(ArcAssignmentError):
                engine.run()


class TestBufferedBadPolicies:
    def collision_problem(self):
        # Both head along +x; the policy merges them onto one node.
        return RoutingProblem.from_pairs(
            Mesh(2, 3),
            [((1, 1), (3, 1)), ((2, 1), (3, 1))],
            name="collide",
        )

    def test_duplicate_direction_raises_on_lean_path(self):
        engine = BufferedEngine(
            self.collision_problem(), HoldThenCollidePolicy(), seed=0
        )
        with pytest.raises(ArcAssignmentError):
            engine.run()

    def test_duplicate_direction_raises_on_instrumented_path(self):
        engine = BufferedEngine(
            self.collision_problem(),
            HoldThenCollidePolicy(),
            seed=0,
            observers=[RunObserver()],
        )
        with pytest.raises(ArcAssignmentError):
            engine.run()

    def test_unknown_packet_raises_on_every_path(self):
        for kwargs in (
            {},
            {"observers": [RunObserver()]},
            {"faults": FaultSchedule.empty()},
        ):
            engine = BufferedEngine(
                one_packet_problem(),
                UnknownPacketPolicy(),
                seed=0,
                **kwargs,
            )
            with pytest.raises(ArcAssignmentError):
                engine.run()
