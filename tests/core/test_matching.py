"""Unit and property tests for the matching machinery.

The analysis-critical facts: the priority matching is maximum, it
never unmatches an earlier-priority vertex, single-option vertices
keep their assignment, and maximality is exactly the node-level greedy
condition.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.matching import (
    assign_leftovers,
    greedy_maximal_matching,
    is_maximal_matching,
    maximum_matching_size,
    priority_maximum_matching,
)


def random_adjacency(draw):
    num_left = draw(st.integers(0, 6))
    num_right = draw(st.integers(1, 6))
    return {
        f"p{i}": draw(
            st.lists(
                st.sampled_from([f"d{j}" for j in range(num_right)]),
                unique=True,
                max_size=num_right,
            )
        )
        for i in range(num_left)
    }


adjacency_strategy = st.composite(random_adjacency)()


class TestPriorityMaximumMatching:
    def test_simple_conflict(self):
        adjacency = {"a": ["x"], "b": ["x"]}
        matching = priority_maximum_matching(adjacency, ["a", "b"])
        assert matching == {"a": "x"}

    def test_priority_decides_winner(self):
        adjacency = {"a": ["x"], "b": ["x"]}
        matching = priority_maximum_matching(adjacency, ["b", "a"])
        assert matching == {"b": "x"}

    def test_augmenting_path_reroutes_flexible_vertex(self):
        # b (flexible) grabbed x; a (restricted to x) still gets matched
        # because b can be rerouted to y.
        adjacency = {"b": ["x", "y"], "a": ["x"]}
        matching = priority_maximum_matching(adjacency, ["b", "a"])
        assert matching == {"b": "y", "a": "x"}

    def test_is_maximum(self):
        adjacency = {
            "a": ["x", "y"],
            "b": ["y"],
            "c": ["x"],
        }
        matching = priority_maximum_matching(adjacency, ["a", "b", "c"])
        assert len(matching) == 2  # x and y both used

    def test_restricted_arc_is_dead_end(self):
        # Both a1 and a2 are restricted to x.  Whoever wins, a later
        # flexible packet can never steal x through an augmenting path.
        adjacency = {"a1": ["x"], "a2": ["x"], "flex": ["x", "y"]}
        matching = priority_maximum_matching(
            adjacency, ["a1", "a2", "flex"]
        )
        assert matching["a1"] == "x"
        assert matching["flex"] == "y"
        assert "a2" not in matching

    def test_order_mismatch_rejected(self):
        with pytest.raises(ValueError):
            priority_maximum_matching({"a": ["x"]}, ["a", "b"])

    def test_empty(self):
        assert priority_maximum_matching({}, []) == {}

    @given(adjacency_strategy, st.integers(0, 999))
    @settings(max_examples=100, deadline=None)
    def test_always_maximum_regardless_of_order(self, adjacency, seed):
        order = list(adjacency)
        random.Random(seed).shuffle(order)
        matching = priority_maximum_matching(adjacency, order)
        # Compare against brute-force maximum.
        assert len(matching) == _brute_force_maximum(adjacency)

    @given(adjacency_strategy, st.integers(0, 999))
    @settings(max_examples=100, deadline=None)
    def test_matching_is_valid(self, adjacency, seed):
        order = list(adjacency)
        random.Random(seed).shuffle(order)
        matching = priority_maximum_matching(adjacency, order)
        values = list(matching.values())
        assert len(values) == len(set(values))  # injective
        for left, right in matching.items():
            assert right in adjacency[left]

    @given(adjacency_strategy)
    @settings(max_examples=100, deadline=None)
    def test_priority_prefix_is_served(self, adjacency):
        """The first-priority vertex is matched whenever it has any
        option — the property behind the fixed-priority (Hajek-style)
        algorithm's never-deflected leader."""
        order = sorted(adjacency)
        matching = priority_maximum_matching(adjacency, order)
        if order and adjacency[order[0]]:
            assert order[0] in matching


def _brute_force_maximum(adjacency):
    lefts = list(adjacency)

    def recurse(index, used):
        if index == len(lefts):
            return 0
        best = recurse(index + 1, used)
        for right in adjacency[lefts[index]]:
            if right not in used:
                used.add(right)
                best = max(best, 1 + recurse(index + 1, used))
                used.discard(right)
        return best

    return recurse(0, set())


class TestGreedyMaximalMatching:
    def test_first_fit(self):
        adjacency = {"a": ["x", "y"], "b": ["x"]}
        matching = greedy_maximal_matching(adjacency, ["a", "b"])
        assert matching == {"a": "x"}  # maximal but not maximum

    def test_order_mismatch(self):
        with pytest.raises(ValueError):
            greedy_maximal_matching({"a": ["x"]}, [])

    @given(adjacency_strategy)
    @settings(max_examples=100, deadline=None)
    def test_result_is_maximal(self, adjacency):
        matching = greedy_maximal_matching(adjacency, sorted(adjacency))
        assert is_maximal_matching(adjacency, matching)


class TestIsMaximal:
    def test_detects_non_maximal(self):
        adjacency = {"a": ["x"], "b": ["y"]}
        assert not is_maximal_matching(adjacency, {"a": "x"})
        assert is_maximal_matching(adjacency, {"a": "x", "b": "y"})

    def test_empty_matching_on_empty_options(self):
        assert is_maximal_matching({"a": []}, {})


class TestHelpers:
    def test_maximum_matching_size(self):
        assert maximum_matching_size({"a": ["x"], "b": ["x"]}) == 1

    def test_assign_leftovers(self):
        pairs = assign_leftovers(["p", "q"], ["d1", "d2", "d3"])
        assert pairs == [("p", "d1"), ("q", "d2")]

    def test_assign_leftovers_shortfall(self):
        with pytest.raises(ValueError):
            assign_leftovers(["p", "q"], ["d1"])
