"""Test package."""
