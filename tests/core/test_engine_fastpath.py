"""Equivalence tests for the engine's lean fast-path loop.

The fast path (`HotPotatoEngine._run_fast`) must be an invisible
optimization: for any problem, policy and seed, a run with the fast
path on yields a :class:`RunResult` bit-identical to the instrumented
loop — same delivered times, hops, deflections, step metrics, and the
same policy RNG stream (the two loops visit nodes in the same order).
"""

import random

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import make_policy
from repro.core.engine import HotPotatoEngine, describe_seed
from repro.core.events import RunObserver
from repro.core.validation import validators_for
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.workloads import (
    random_many_to_many,
    random_permutation,
    single_target,
    transpose,
)

POLICIES = (
    "restricted-priority",
    "fewest-good-directions",
    "plain-greedy",
    "randomized-greedy",
    "fixed-priority",
    "destination-order",
    "closest-first",
)


def _run(problem, policy_name, seed, fast_path, **kwargs):
    policy = make_policy(policy_name)
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=seed,
        validators=validators_for(policy, strict=False),
        fast_path=fast_path,
        **kwargs,
    )
    return engine.run()


class TestFastPathEquivalence:
    @pytest.mark.parametrize("policy_name", POLICIES)
    def test_policies_random_workload(self, policy_name):
        problem = random_many_to_many(Mesh(2, 8), k=48, seed=3)
        fast = _run(problem, policy_name, 3, True)
        slow = _run(problem, policy_name, 3, False)
        assert fast == slow

    @pytest.mark.parametrize("seed", [0, 1, 2, 17])
    def test_seeds(self, seed):
        problem = random_many_to_many(Mesh(2, 8), k=64, seed=seed)
        assert _run(problem, "restricted-priority", seed, True) == _run(
            problem, "restricted-priority", seed, False
        )

    def test_randomized_policy_consumes_rng_in_lockstep(self):
        """Both loops must visit nodes in the same order, or a policy's
        private RNG stream (shuffles, random deflections) diverges."""
        problem = random_many_to_many(Mesh(2, 8), k=64, seed=9)
        fast = _run(problem, "randomized-greedy", 9, True)
        slow = _run(problem, "randomized-greedy", 9, False)
        assert fast == slow

    def test_other_workloads(self):
        mesh = Mesh(2, 8)
        for problem in (
            random_permutation(mesh, seed=5),
            transpose(mesh),
            single_target(mesh, k=20, seed=5),
        ):
            assert _run(problem, "restricted-priority", 5, True) == _run(
                problem, "restricted-priority", 5, False
            )

    def test_torus_and_hypercube(self):
        for mesh in (Torus(2, 8), Hypercube(5)):
            problem = random_many_to_many(mesh, k=32, seed=4)
            assert _run(problem, "plain-greedy", 4, True) == _run(
                problem, "plain-greedy", 4, False
            )

    @pytest.mark.parametrize("policy_name", ["plain-greedy", "restricted-priority"])
    @pytest.mark.parametrize("side", [5, 7])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_odd_side_torus(self, policy_name, side, seed):
        """Odd-side tori break the ±1-per-hop distance invariant: a bad
        hop out of a maximal per-axis offset wraps to an equally short
        way around, leaving the distance unchanged.  The fast path must
        recompute distances after such deflections and absorb packets by
        destination comparison, or packets pass through their
        destination undelivered."""
        problem = random_many_to_many(Torus(2, side), k=24, seed=seed)
        fast = _run(problem, policy_name, seed, True)
        slow = _run(problem, policy_name, seed, False)
        assert fast == slow

    def test_odd_torus_delivers_through_preserved_distance(self):
        """Regression: with incremental ±1 tracking, this exact run
        livelocked to max_steps on the fast path (23/24 delivered after
        480 steps) while the instrumented loop finished in 5 steps."""
        problem = random_many_to_many(Torus(2, 5), k=24, seed=1)
        fast = _run(problem, "plain-greedy", 1, True)
        slow = _run(problem, "plain-greedy", 1, False)
        assert fast.completed
        assert fast.delivered == problem.k
        assert fast == slow

    def test_three_dimensional_mesh(self):
        problem = random_many_to_many(Mesh(3, 4), k=40, seed=6)
        assert _run(problem, "fewest-good-directions", 6, True) == _run(
            problem, "fewest-good-directions", 6, False
        )

    def test_matches_strict_validation_run(self):
        """Strict validators only check; outcomes must be unchanged."""
        problem = random_many_to_many(Mesh(2, 8), k=48, seed=11)
        policy = make_policy("restricted-priority")
        strict = HotPotatoEngine(
            problem,
            policy,
            seed=11,
            validators=validators_for(policy, strict=True),
        ).run()
        fast = _run(problem, "restricted-priority", 11, True)
        assert fast == strict

    def test_matches_recording_run_outcomes(self):
        """record_steps forces the instrumented loop; everything except
        the records themselves must agree with the fast path."""
        problem = random_many_to_many(Mesh(2, 8), k=48, seed=13)
        policy = make_policy("restricted-priority")
        recording = HotPotatoEngine(
            problem,
            policy,
            seed=13,
            validators=validators_for(policy, strict=False),
            record_steps=True,
        ).run()
        fast = _run(problem, "restricted-priority", 13, True)
        assert recording.records  # the recording run actually recorded
        assert fast.records is None
        assert fast.outcomes == recording.outcomes
        assert fast.step_metrics == recording.step_metrics
        assert fast.total_steps == recording.total_steps

    def test_record_paths(self):
        problem = random_many_to_many(Mesh(2, 8), k=32, seed=7)
        fast = HotPotatoEngine(
            problem,
            make_policy("restricted-priority"),
            seed=7,
            validators=[],
            record_paths=True,
            fast_path=True,
        )
        slow = HotPotatoEngine(
            problem,
            make_policy("restricted-priority"),
            seed=7,
            validators=[],
            record_paths=True,
            fast_path=False,
        )
        fast.run()
        slow.run()
        assert [p.path for p in fast.packets] == [p.path for p in slow.packets]

    def test_random_instance_seed(self):
        problem = random_many_to_many(Mesh(2, 8), k=32, seed=2)
        fast = _run(problem, "randomized-greedy", random.Random(42), True)
        slow = _run(problem, "randomized-greedy", random.Random(42), False)
        assert fast == slow

    def test_timeout_runs_agree(self):
        problem = random_many_to_many(Mesh(2, 8), k=64, seed=1)
        fast = HotPotatoEngine(
            problem,
            make_policy("restricted-priority"),
            seed=1,
            validators=[],
            max_steps=3,
            fast_path=True,
        ).run()
        slow = HotPotatoEngine(
            problem,
            make_policy("restricted-priority"),
            seed=1,
            validators=[],
            max_steps=3,
            fast_path=False,
        ).run()
        assert not fast.completed
        assert fast == slow


def _small_networks(draw):
    kind = draw(st.sampled_from(["mesh", "torus", "hypercube"]))
    if kind == "hypercube":
        return Hypercube(draw(st.integers(min_value=2, max_value=4)))
    dimension = draw(st.integers(min_value=2, max_value=3))
    # Odd sides included on purpose: odd tori exercise the fast path's
    # distance-recompute branch (see test_odd_side_torus).
    side = draw(st.integers(min_value=3, max_value=6))
    cls = Torus if kind == "torus" else Mesh
    return cls(dimension, side)


@st.composite
def _random_instances(draw):
    mesh = _small_networks(draw)
    workload = draw(st.sampled_from(["many-to-many", "permutation", "hotspot"]))
    wl_seed = draw(st.integers(min_value=0, max_value=2**16))
    if workload == "permutation":
        problem = random_permutation(mesh, seed=wl_seed)
    else:
        k = draw(st.integers(min_value=1, max_value=mesh.num_nodes))
        if workload == "hotspot":
            problem = single_target(mesh, k=k, seed=wl_seed)
        else:
            problem = random_many_to_many(mesh, k=k, seed=wl_seed)
    policy_name = draw(st.sampled_from(POLICIES))
    engine_seed = draw(st.integers(min_value=0, max_value=2**16))
    return problem, policy_name, engine_seed


class TestFastPathDifferential:
    """Hypothesis sweep of the fast-path/instrumented-loop equivalence.

    The determinism invariant the lint rules defend (a run is a pure
    function of problem, policy and seed) is what makes this test
    meaningful: any hidden source of nondeterminism in either loop
    shows up here as a flaky differential failure.
    """

    @settings(
        max_examples=40,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_random_instances())
    def test_fast_equals_instrumented(self, instance):
        problem, policy_name, seed = instance
        fast = _run(problem, policy_name, seed, True)
        slow = _run(problem, policy_name, seed, False)
        assert fast == slow

    @settings(
        max_examples=15,
        deadline=None,
        suppress_health_check=[HealthCheck.too_slow],
    )
    @given(instance=_random_instances())
    def test_runs_are_reproducible(self, instance):
        """Same (problem, policy, seed) twice ⇒ identical RunResult,
        on both loops."""
        problem, policy_name, seed = instance
        for fast_path in (True, False):
            first = _run(problem, policy_name, seed, fast_path)
            second = _run(problem, policy_name, seed, fast_path)
            assert first == second


class TestFastPathEligibility:
    def test_auto_uses_fast_path_when_capacity_only(self):
        problem = random_many_to_many(Mesh(2, 8), k=16, seed=0)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=0,
            validators=validators_for(policy, strict=False),
        )
        assert engine._fast_path_eligible()

    def test_strict_validators_force_instrumented(self):
        problem = random_many_to_many(Mesh(2, 8), k=16, seed=0)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(problem, policy, seed=0)
        assert not engine._fast_path_eligible()

    def test_record_steps_forces_instrumented(self):
        problem = random_many_to_many(Mesh(2, 8), k=16, seed=0)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(
            problem, policy, seed=0, validators=[], record_steps=True
        )
        assert not engine._fast_path_eligible()

    def test_observers_force_instrumented(self):
        problem = random_many_to_many(Mesh(2, 8), k=16, seed=0)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(
            problem, policy, seed=0, validators=[], observers=[RunObserver()]
        )
        assert not engine._fast_path_eligible()

    def test_fast_path_true_raises_when_ineligible(self):
        problem = random_many_to_many(Mesh(2, 8), k=16, seed=0)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(
            problem, policy, seed=0, record_steps=True, fast_path=True
        )
        with pytest.raises(ValueError):
            engine.run()

    def test_fast_path_false_disables(self):
        problem = random_many_to_many(Mesh(2, 8), k=16, seed=0)
        policy = make_policy("restricted-priority")
        engine = HotPotatoEngine(
            problem, policy, seed=0, validators=[], fast_path=False
        )
        assert not engine._fast_path_eligible()


class TestSeedDescription:
    def test_int_seed_passes_through(self):
        assert describe_seed(7) == 7

    def test_none_is_the_default_stream(self):
        assert describe_seed(None) == 0

    def test_random_instance_is_described_not_dropped(self):
        desc = describe_seed(random.Random(123))
        assert isinstance(desc, str) and desc.startswith("rng-state:")

    def test_equal_state_generators_describe_equal(self):
        assert describe_seed(random.Random(5)) == describe_seed(
            random.Random(5)
        )
        assert describe_seed(random.Random(5)) != describe_seed(
            random.Random(6)
        )

    def test_run_result_carries_description(self):
        problem = random_many_to_many(Mesh(2, 8), k=8, seed=0)
        result = HotPotatoEngine(
            problem, make_policy("restricted-priority"),
            seed=random.Random(99),
        ).run()
        assert result.seed == describe_seed(random.Random(99))
