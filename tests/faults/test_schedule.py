"""FaultSchedule: validation, serialization, seeded generation."""

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import (
    FaultSchedule,
    LinkFault,
    NodeFault,
    PacketDrop,
    random_schedule,
)
from repro.faults.schedule import SCHEDULE_SCHEMA_VERSION
from repro.mesh.topology import Mesh


def small_schedule():
    return FaultSchedule(
        events=(
            LinkFault(a=(1, 1), b=(1, 2), start=2, end=10),
            LinkFault(a=(2, 2), b=(3, 2), start=0, end=None),
            NodeFault(node=(4, 4), start=5),
            PacketDrop(node=(2, 3), step=7, count=2),
        ),
        description="unit fixture",
    )


class TestEventWindows:
    def test_link_fault_window_is_half_open(self):
        fault = LinkFault(a=(1, 1), b=(1, 2), start=2, end=5)
        assert not fault.active_at(1)
        assert fault.active_at(2)
        assert fault.active_at(4)
        assert not fault.active_at(5)

    def test_open_ended_link_fault_never_recovers(self):
        fault = LinkFault(a=(1, 1), b=(1, 2), start=3, end=None)
        assert fault.active_at(3) and fault.active_at(10**6)

    def test_node_fault_is_permanent(self):
        fault = NodeFault(node=(2, 2), start=4)
        assert not fault.active_at(3)
        assert fault.active_at(4) and fault.active_at(1000)


class TestValidation:
    def test_valid_schedule_has_no_problems(self):
        assert small_schedule().validate(Mesh(2, 4)) == []

    def test_off_mesh_endpoint_is_reported(self):
        schedule = FaultSchedule(
            events=(LinkFault(a=(0, 1), b=(1, 1), start=0),)
        )
        problems = schedule.validate(Mesh(2, 4))
        assert len(problems) == 1
        assert "not a mesh node" in problems[0]

    def test_non_adjacent_link_is_reported(self):
        schedule = FaultSchedule(
            events=(LinkFault(a=(1, 1), b=(3, 3), start=0),)
        )
        problems = schedule.validate(Mesh(2, 4))
        assert problems and "not adjacent" in problems[0]

    def test_empty_window_is_reported(self):
        schedule = FaultSchedule(
            events=(LinkFault(a=(1, 1), b=(1, 2), start=5, end=5),)
        )
        problems = schedule.validate(Mesh(2, 4))
        assert problems and "is empty" in problems[0]

    def test_nonpositive_drop_count_is_reported(self):
        schedule = FaultSchedule(
            events=(PacketDrop(node=(1, 1), step=0, count=0),)
        )
        problems = schedule.validate(Mesh(2, 4))
        assert problems and "count must be >= 1" in problems[0]

    def test_check_raises_configuration_error(self):
        schedule = FaultSchedule(
            events=(NodeFault(node=(9, 9), start=0),)
        )
        with pytest.raises(ConfigurationError, match="does not fit"):
            schedule.check(Mesh(2, 4))


class TestSerialization:
    def test_dict_round_trip_is_identity(self):
        schedule = small_schedule()
        assert FaultSchedule.from_dict(schedule.to_dict()) == schedule

    def test_file_round_trip_is_identity(self, tmp_path):
        schedule = small_schedule()
        path = str(tmp_path / "sched.json")
        schedule.save(path)
        assert FaultSchedule.load(path) == schedule

    def test_schema_version_is_stamped(self):
        assert (
            small_schedule().to_dict()["schema_version"]
            == SCHEDULE_SCHEMA_VERSION
        )

    def test_unknown_schema_version_raises(self):
        data = small_schedule().to_dict()
        data["schema_version"] = SCHEDULE_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema_version"):
            FaultSchedule.from_dict(data)

    def test_unknown_event_kind_raises(self):
        with pytest.raises(ValueError, match="unknown fault event kind"):
            FaultSchedule.from_dict(
                {"schema_version": 1, "events": [{"kind": "meteor"}]}
            )

    def test_empty_schedule(self):
        empty = FaultSchedule.empty()
        assert empty.is_empty
        assert FaultSchedule.from_dict(empty.to_dict()) == empty


class TestRandomSchedule:
    def test_same_seed_same_schedule(self):
        mesh = Mesh(2, 5)
        kwargs = dict(link_faults=3, node_faults=1, packet_drops=2)
        first = random_schedule(mesh, seed=11, **kwargs)
        second = random_schedule(mesh, seed=11, **kwargs)
        assert first == second

    def test_different_seed_different_schedule(self):
        mesh = Mesh(2, 5)
        assert random_schedule(mesh, seed=1) != random_schedule(mesh, seed=2)

    def test_generated_schedule_fits_its_mesh(self):
        mesh = Mesh(2, 5)
        schedule = random_schedule(
            mesh, seed=3, link_faults=4, node_faults=2, packet_drops=3
        )
        assert schedule.validate(mesh) == []
        assert len(schedule.link_faults()) == 4
        assert len(schedule.node_faults()) == 2
        assert len(schedule.packet_drops()) == 3
