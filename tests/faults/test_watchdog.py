"""RunWatchdog verdicts and the RunAborted record."""

from types import SimpleNamespace

import pytest

from repro.faults import ActiveFaults, FaultSchedule, RunAborted, RunWatchdog
from repro.faults.report import ABORT_REASONS
from repro.faults.schedule import NodeFault
from repro.faults.watchdog import step_limit_abort
from repro.mesh.topology import Mesh


def packet(pid, location=(1, 1), destination=(3, 3)):
    return SimpleNamespace(id=pid, location=location, destination=destination)


class StubKernel:
    """The four attributes the watchdog reads, nothing else."""

    def __init__(self, *, in_flight=(), faults=None):
        self.time = 0
        self.delivered_total = 0
        self.in_flight = list(in_flight)
        self.faults = faults


class TestConstruction:
    def test_limits_must_be_positive_or_none(self):
        with pytest.raises(ValueError):
            RunWatchdog(no_progress_limit=0)
        with pytest.raises(ValueError):
            RunWatchdog(partition_interval=0)
        RunWatchdog(no_progress_limit=None, partition_interval=None)


class TestNoProgress:
    def test_verdict_after_the_limit(self):
        kernel = StubKernel(in_flight=[packet(0), packet(1)])
        watchdog = RunWatchdog(
            no_progress_limit=5, partition_interval=None
        )
        watchdog.reset(kernel)
        for step in range(5):
            kernel.time = step
            assert watchdog.check(kernel) is None
        kernel.time = 5
        abort = watchdog.check(kernel)
        assert isinstance(abort, RunAborted)
        assert abort.reason == "no-progress"
        assert abort.step == 5
        assert abort.undelivered == (0, 1)
        assert abort.stranded == ()

    def test_a_delivery_resets_the_clock(self):
        kernel = StubKernel(in_flight=[packet(0)])
        watchdog = RunWatchdog(
            no_progress_limit=5, partition_interval=None
        )
        watchdog.reset(kernel)
        kernel.time = 4
        kernel.delivered_total = 1
        assert watchdog.check(kernel) is None
        kernel.time = 8
        assert watchdog.check(kernel) is None
        kernel.time = 9
        abort = watchdog.check(kernel)
        assert abort is not None and abort.reason == "no-progress"

    def test_empty_flight_never_aborts(self):
        kernel = StubKernel(in_flight=[])
        watchdog = RunWatchdog(no_progress_limit=1)
        watchdog.reset(kernel)
        kernel.time = 100
        assert watchdog.check(kernel) is None

    def test_disabled_check_never_fires(self):
        kernel = StubKernel(in_flight=[packet(0)])
        watchdog = RunWatchdog(
            no_progress_limit=None, partition_interval=None
        )
        watchdog.reset(kernel)
        kernel.time = 10_000
        assert watchdog.check(kernel) is None


def corner_cut_faults():
    """Killing (1, 2) and (2, 1) isolates corner (1, 1) on a 3x3."""
    faults = ActiveFaults(
        Mesh(2, 3),
        FaultSchedule(
            events=(
                NodeFault(node=(1, 2), start=0),
                NodeFault(node=(2, 1), start=0),
            )
        ),
    )
    faults.advance(0)
    return faults


class TestPartition:
    def test_all_stranded_aborts(self):
        faults = corner_cut_faults()
        kernel = StubKernel(
            in_flight=[packet(0, location=(1, 1), destination=(3, 3))],
            faults=faults,
        )
        watchdog = RunWatchdog(
            no_progress_limit=None, partition_interval=1
        )
        watchdog.reset(kernel)
        kernel.time = 1
        abort = watchdog.check(kernel)
        assert abort is not None
        assert abort.reason == "partition"
        assert abort.stranded == (0,)
        assert abort.undelivered == (0,)
        assert len(abort.fault_events) == 2

    def test_some_deliverable_keeps_running(self):
        faults = corner_cut_faults()
        kernel = StubKernel(
            in_flight=[
                packet(0, location=(1, 1), destination=(3, 3)),
                packet(1, location=(2, 2), destination=(3, 3)),
            ],
            faults=faults,
        )
        watchdog = RunWatchdog(
            no_progress_limit=None, partition_interval=1
        )
        watchdog.reset(kernel)
        kernel.time = 1
        assert watchdog.check(kernel) is None

    def test_check_respects_the_interval(self):
        faults = corner_cut_faults()
        kernel = StubKernel(
            in_flight=[packet(0, location=(1, 1), destination=(3, 3))],
            faults=faults,
        )
        watchdog = RunWatchdog(
            no_progress_limit=None, partition_interval=10
        )
        watchdog.reset(kernel)
        kernel.time = 5
        assert watchdog.check(kernel) is None  # before the first sweep
        kernel.time = 10
        assert watchdog.check(kernel) is not None

    def test_faultless_kernel_never_partition_aborts(self):
        kernel = StubKernel(in_flight=[packet(0)], faults=None)
        watchdog = RunWatchdog(
            no_progress_limit=None, partition_interval=1
        )
        watchdog.reset(kernel)
        kernel.time = 50
        assert watchdog.check(kernel) is None


class TestStepLimitAbort:
    def test_shared_vocabulary(self):
        kernel = StubKernel(in_flight=[packet(3), packet(1)])
        kernel.time = 42
        abort = step_limit_abort(kernel, 42)
        assert abort.reason == "step-limit"
        assert abort.step == 42
        assert abort.undelivered == (1, 3)
        assert abort.stranded == () and abort.dropped == 0

    def test_census_reads_fault_state(self):
        faults = corner_cut_faults()
        faults.dropped_ids.extend([4, 5])
        kernel = StubKernel(
            in_flight=[packet(0, location=(1, 1), destination=(3, 3))],
            faults=faults,
        )
        kernel.time = 7
        abort = step_limit_abort(kernel, 7)
        assert abort.stranded == (0,)
        assert abort.dropped == 2
        assert len(abort.fault_events) == 2


class TestRunAbortedRecord:
    def test_reason_vocabulary_is_closed(self):
        with pytest.raises(ValueError, match="abort reason"):
            RunAborted(reason="gremlins", step=0, message="")
        for reason in ABORT_REASONS:
            RunAborted(reason=reason, step=0, message="")

    def test_dict_round_trip(self):
        abort = RunAborted(
            reason="partition",
            step=9,
            message="cut off",
            undelivered=(1, 2),
            stranded=(2,),
            dropped=1,
            fault_events=({"kind": "node", "node": [2, 2], "start": 0},),
        )
        assert RunAborted.from_dict(abort.to_dict()) == abort

    def test_summary_mentions_reason_and_counts(self):
        abort = RunAborted(
            reason="no-progress",
            step=512,
            message="stalled",
            undelivered=(1, 2, 3),
            stranded=(3,),
            dropped=2,
        )
        line = abort.summary()
        assert "no-progress" in line
        assert "step 512" in line
        assert "undelivered=3" in line
        assert "stranded=1" in line
        assert "dropped=2" in line
