"""Fault injection through the batch engines: equivalence, accounting,
graceful degradation, structured aborts, and livelock detection on
masked topologies."""

import pytest

from repro.algorithms import DimensionOrderPolicy, RandomRankPolicy
from repro.analysis.livelock import DetectedCycle, detect_cycle
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.events import RunObserver
from repro.core.problem import RoutingProblem
from repro.core.serialization import result_from_dict, result_to_dict
from repro.faults import FaultSchedule, RunWatchdog
from repro.faults.schedule import LinkFault, NodeFault, PacketDrop
from repro.mesh.topology import Mesh
from repro.workloads import random_permutation


def corner_cut_schedule():
    """Killing (1, 2) and (2, 1) isolates corner (1, 1) on a 3x3."""
    return FaultSchedule(
        events=(
            NodeFault(node=(1, 2), start=0),
            NodeFault(node=(2, 1), start=0),
        )
    )


class TestEmptyScheduleEquivalence:
    """An empty schedule must be bit-identical to no faults at all —
    the guard that the fault phase costs nothing when unused."""

    def test_hot_potato(self):
        problem = random_permutation(Mesh(2, 4), seed=3)
        plain = HotPotatoEngine(problem, RandomRankPolicy(), seed=7).run()
        empty = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=7,
            faults=FaultSchedule.empty(),
        ).run()
        assert plain == empty

    def test_buffered(self):
        problem = random_permutation(Mesh(2, 4), seed=3)
        plain = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=7
        ).run()
        empty = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=7,
            faults=FaultSchedule.empty(),
        ).run()
        assert plain == empty


class TestLeanInstrumentedParity:
    """Both kernel paths must produce the same faulted result."""

    def faulted_schedule(self):
        return FaultSchedule(
            events=(
                LinkFault(a=(2, 2), b=(2, 3), start=1, end=6),
                PacketDrop(node=(3, 3), step=2, count=1),
            )
        )

    def test_hot_potato(self):
        problem = random_permutation(Mesh(2, 4), seed=5)
        lean = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=11,
            faults=self.faulted_schedule(),
        ).run()
        instrumented = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=11,
            faults=self.faulted_schedule(),
            observers=[RunObserver()],
        ).run()
        assert lean == instrumented

    def test_buffered(self):
        problem = random_permutation(Mesh(2, 4), seed=5)
        lean = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=11,
            faults=self.faulted_schedule(),
        ).run()
        instrumented = BufferedEngine(
            problem,
            DimensionOrderPolicy(),
            seed=11,
            faults=self.faulted_schedule(),
            observers=[RunObserver()],
        ).run()
        assert lean == instrumented


class TestDropAccounting:
    def drop_result(self):
        problem = RoutingProblem.from_pairs(
            Mesh(2, 3),
            [((1, 1), (3, 3)), ((3, 1), (1, 3))],
            name="two-packets",
        )
        schedule = FaultSchedule(
            events=(PacketDrop(node=(1, 1), step=0, count=1),)
        )
        return HotPotatoEngine(
            problem, RandomRankPolicy(), seed=1, faults=schedule
        ).run()

    def test_dropped_packet_is_stamped_and_counted(self):
        result = self.drop_result()
        assert result.total_dropped == 1
        assert result.outcomes[0].dropped_at == 0
        assert result.outcomes[0].dropped
        assert not result.outcomes[0].delivered

    def test_telemetry_agrees_with_outcomes(self):
        result = self.drop_result()
        assert result.telemetry is not None
        assert result.telemetry.dropped == result.total_dropped

    def test_survivors_still_deliver(self):
        result = self.drop_result()
        assert result.completed
        assert result.delivered == 1
        assert result.undelivered_ids == []


class TestPartitionAbort:
    def partitioned_result(self, engine_cls, policy):
        problem = RoutingProblem.from_pairs(
            Mesh(2, 3), [((1, 1), (3, 3))], name="stranded"
        )
        return engine_cls(
            problem,
            policy,
            seed=0,
            faults=corner_cut_schedule(),
            watchdog=RunWatchdog(
                no_progress_limit=None, partition_interval=1
            ),
        ).run()

    def test_hot_potato_aborts_with_structure(self):
        result = self.partitioned_result(HotPotatoEngine, RandomRankPolicy())
        assert not result.completed
        assert result.abort is not None
        assert result.abort.reason == "partition"
        assert result.abort.undelivered == (0,)
        assert result.abort.stranded == (0,)
        assert result.summary().startswith("random-rank")
        assert "PARTITION" in result.summary()

    def test_buffered_aborts_with_structure(self):
        result = self.partitioned_result(
            BufferedEngine, DimensionOrderPolicy()
        )
        assert not result.completed
        assert result.abort is not None
        assert result.abort.reason == "partition"
        assert result.abort.stranded == (0,)


class TestBufferedGracefulDegradation:
    def test_packet_waits_out_a_dead_arc(self):
        """Store-and-forward: a down first-hop link means the packet
        sits in its buffer until the window closes, then proceeds."""
        problem = RoutingProblem.from_pairs(
            Mesh(2, 4), [((1, 1), (1, 4))], name="one-line"
        )
        baseline = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=0
        ).run()
        schedule = FaultSchedule(
            events=(LinkFault(a=(1, 1), b=(1, 2), start=0, end=3),)
        )
        faulted = BufferedEngine(
            problem, DimensionOrderPolicy(), seed=0, faults=schedule
        ).run()
        assert baseline.completed and faulted.completed
        assert faulted.delivered == 1
        # Three steps waiting for the link, then the baseline route.
        assert faulted.total_steps == baseline.total_steps + 3


class TestHotPotatoGracefulDegradation:
    def test_transient_outage_degrades_but_completes(self):
        """While the link is down the reduced degree forces waits and
        detours; after the window closes every packet still arrives."""
        problem = random_permutation(Mesh(2, 4), seed=9)
        baseline = HotPotatoEngine(
            problem, RandomRankPolicy(), seed=2
        ).run()
        schedule = FaultSchedule(
            events=(LinkFault(a=(2, 2), b=(3, 2), start=0, end=60),)
        )
        result = HotPotatoEngine(
            problem, RandomRankPolicy(), seed=2, faults=schedule
        ).run()
        assert result.completed
        assert result.delivered == problem.k
        assert result.total_dropped == 0
        # The outage genuinely perturbed the run.
        assert result != baseline

    def test_permanent_dead_arc_ends_in_structured_abort(self):
        """Unmasked distances can pull a packet against a permanently
        dead arc forever (the documented degradation limit); the run
        must end in a step-limit/no-progress record, not an exception."""
        problem = random_permutation(Mesh(2, 4), seed=9)
        schedule = FaultSchedule(
            events=(LinkFault(a=(2, 2), b=(3, 2), start=0, end=None),)
        )
        result = HotPotatoEngine(
            problem, RandomRankPolicy(), seed=2, faults=schedule
        ).run()
        assert not result.completed
        assert result.abort is not None
        assert result.abort.reason in ("step-limit", "no-progress")
        assert result.abort.undelivered == (13,)
        assert result.delivered == problem.k - 1


class TestSerializationWithFaultData:
    def test_abort_and_drop_stamps_round_trip(self):
        problem = RoutingProblem.from_pairs(
            Mesh(2, 3),
            [((1, 1), (3, 3)), ((3, 1), (1, 3))],
            name="round-trip",
        )
        schedule = FaultSchedule(
            events=(
                NodeFault(node=(1, 2), start=0),
                NodeFault(node=(2, 1), start=0),
                PacketDrop(node=(3, 1), step=0, count=1),
            )
        )
        result = HotPotatoEngine(
            problem,
            RandomRankPolicy(),
            seed=0,
            faults=schedule,
            watchdog=RunWatchdog(
                no_progress_limit=None, partition_interval=1
            ),
        ).run()
        assert result.abort is not None
        assert result.total_dropped == 1
        restored = result_from_dict(result_to_dict(result))
        assert restored.abort == result.abort
        assert restored.completed == result.completed
        assert restored.total_steps == result.total_steps
        assert [o.dropped_at for o in restored.outcomes] == [
            o.dropped_at for o in result.outcomes
        ]
        assert restored.telemetry == result.telemetry

    def test_faultless_payload_has_no_fault_keys(self):
        problem = random_permutation(Mesh(2, 3), seed=1)
        result = HotPotatoEngine(problem, RandomRankPolicy(), seed=1).run()
        payload = result_to_dict(result)
        assert "abort" not in payload
        assert all("dropped_at" not in o for o in payload["outcomes"])


class TestDetectCycleOnFaultedMesh:
    def test_stranded_packet_is_a_period_one_livelock(self):
        """A packet whose node lost every live arc waits forever: the
        masked topology turns greedy routing into a one-step cycle."""
        problem = RoutingProblem.from_pairs(
            Mesh(2, 3), [((1, 1), (3, 3))], name="stranded"
        )
        cycle = detect_cycle(
            problem,
            RandomRankPolicy(),
            seed=0,
            max_steps=50,
            faults=corner_cut_schedule(),
        )
        assert isinstance(cycle, DetectedCycle)
        assert cycle.period == 1

    def test_recovering_fault_reports_no_cycle(self):
        """A transient outage delays delivery but the run terminates,
        so the detector must not call the pre-recovery churn a loop."""
        problem = RoutingProblem.from_pairs(
            Mesh(2, 3), [((1, 1), (3, 3))], name="delayed"
        )
        schedule = FaultSchedule(
            events=(
                NodeFault(node=(1, 2), start=0),
                LinkFault(a=(1, 1), b=(2, 1), start=0, end=8),
            )
        )
        cycle = detect_cycle(
            problem,
            RandomRankPolicy(),
            seed=0,
            max_steps=200,
            faults=schedule,
        )
        assert cycle is None
