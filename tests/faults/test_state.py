"""ActiveFaults masking, drop selection, and reachability."""

from types import SimpleNamespace

import pytest

from repro.exceptions import ConfigurationError
from repro.faults import ActiveFaults, FaultSchedule
from repro.faults.schedule import LinkFault, NodeFault, PacketDrop
from repro.mesh.topology import Mesh


def active(mesh, *events):
    return ActiveFaults(mesh, FaultSchedule(events=tuple(events)))


def packet(pid, location, destination=(1, 1)):
    return SimpleNamespace(id=pid, location=location, destination=destination)


class TestConstruction:
    def test_schedule_is_checked_against_the_mesh(self):
        with pytest.raises(ConfigurationError):
            active(Mesh(2, 3), NodeFault(node=(9, 9), start=0))

    def test_empty_schedule_masks_nothing(self):
        faults = active(Mesh(2, 3))
        faults.advance(0)
        assert not faults.anything_down
        mesh = Mesh(2, 3)
        node = (2, 2)
        assert faults.node_arcs(node) is mesh.node_arcs(node) or (
            faults.node_arcs(node).by_direction
            == mesh.node_arcs(node).by_direction
        )


class TestLinkMask:
    def test_down_link_vanishes_in_both_directions(self):
        mesh = Mesh(2, 3)
        faults = active(mesh, LinkFault(a=(1, 1), b=(1, 2), start=0, end=5))
        faults.advance(0)
        assert not faults.arc_is_live((1, 1), (1, 2))
        assert not faults.arc_is_live((1, 2), (1, 1))
        assert (1, 2) not in faults.node_arcs((1, 1)).by_direction.values()
        assert (1, 1) not in faults.node_arcs((1, 2)).by_direction.values()

    def test_window_expiry_restores_the_link(self):
        mesh = Mesh(2, 3)
        faults = active(mesh, LinkFault(a=(1, 1), b=(1, 2), start=0, end=5))
        faults.advance(0)
        assert faults.anything_down
        faults.advance(5)
        assert not faults.anything_down
        assert faults.arc_is_live((1, 1), (1, 2))
        assert faults.node_arcs((1, 1)).by_direction == Mesh(
            2, 3
        ).node_arcs((1, 1)).by_direction

    def test_window_not_yet_open_masks_nothing(self):
        faults = active(
            Mesh(2, 3), LinkFault(a=(1, 1), b=(1, 2), start=3, end=5)
        )
        faults.advance(0)
        assert not faults.anything_down
        faults.advance(3)
        assert faults.anything_down

    def test_good_directions_omit_the_down_arc(self):
        mesh = Mesh(2, 3)
        faults = active(mesh, LinkFault(a=(1, 1), b=(2, 1), start=0))
        faults.advance(0)
        base = mesh.good_directions_tuple((1, 1), (3, 3))
        masked = faults.good_directions_tuple((1, 1), (3, 3))
        assert set(masked) < set(base)
        live = faults.node_arcs((1, 1)).by_direction
        assert all(d in live for d in masked)


class TestNodeMask:
    def test_failed_node_has_degree_zero(self):
        faults = active(Mesh(2, 3), NodeFault(node=(2, 2), start=0))
        faults.advance(0)
        assert faults.is_node_down((2, 2))
        arcs = faults.node_arcs((2, 2))
        assert arcs.out_directions == ()
        assert arcs.by_direction == {}

    def test_neighbors_lose_the_arc_toward_the_failed_node(self):
        faults = active(Mesh(2, 3), NodeFault(node=(2, 2), start=0))
        faults.advance(0)
        for neighbor in Mesh(2, 3).neighbors((2, 2)):
            assert (2, 2) not in faults.node_arcs(
                neighbor
            ).by_direction.values()

    def test_failure_time_is_honoured(self):
        faults = active(Mesh(2, 3), NodeFault(node=(2, 2), start=7))
        faults.advance(6)
        assert not faults.is_node_down((2, 2))
        faults.advance(7)
        assert faults.is_node_down((2, 2))


class TestSelectDrops:
    def test_drop_event_takes_lowest_ids_first(self):
        faults = active(
            Mesh(2, 3), PacketDrop(node=(2, 2), step=4, count=2)
        )
        faults.advance(4)
        in_flight = [
            packet(1, (2, 2)),
            packet(3, (2, 2)),
            packet(5, (2, 2)),
            packet(7, (1, 1)),
        ]
        victims = faults.select_drops(4, in_flight)
        assert [p.id for p in victims] == [1, 3]
        # Non-mutating: the kernel applies the removal.
        assert len(in_flight) == 4

    def test_drop_event_only_fires_on_its_step(self):
        faults = active(
            Mesh(2, 3), PacketDrop(node=(2, 2), step=4, count=2)
        )
        faults.advance(3)
        assert faults.select_drops(3, [packet(1, (2, 2))]) == []

    def test_packets_at_a_failed_node_are_dropped(self):
        faults = active(Mesh(2, 3), NodeFault(node=(3, 3), start=2))
        faults.advance(2)
        in_flight = [packet(0, (3, 3)), packet(1, (1, 2))]
        victims = faults.select_drops(2, in_flight)
        assert [p.id for p in victims] == [0]

    def test_budgets_accumulate_across_events_at_one_node(self):
        faults = active(
            Mesh(2, 3),
            PacketDrop(node=(2, 2), step=1, count=1),
            PacketDrop(node=(2, 2), step=1, count=1),
        )
        faults.advance(1)
        in_flight = [packet(i, (2, 2)) for i in range(3)]
        victims = faults.select_drops(1, in_flight)
        assert [p.id for p in victims] == [0, 1]


class TestReachability:
    def test_intact_mesh_is_one_component(self):
        faults = active(Mesh(2, 3))
        faults.advance(0)
        labels = faults.components()
        assert len(labels) == 9
        assert set(labels.values()) == {0}

    def test_failed_corner_cut_strands_the_corner(self):
        # Killing (1, 2) and (2, 1) isolates corner (1, 1) on a 3x3.
        faults = active(
            Mesh(2, 3),
            NodeFault(node=(1, 2), start=0),
            NodeFault(node=(2, 1), start=0),
        )
        faults.advance(0)
        labels = faults.components()
        assert (1, 2) not in labels and (2, 1) not in labels
        assert labels[(1, 1)] != labels[(3, 3)]
        assert faults.is_stranded((1, 1), (3, 3))
        assert faults.is_stranded((3, 3), (1, 1))
        assert not faults.is_stranded((2, 2), (3, 3))

    def test_down_endpoint_strands(self):
        faults = active(Mesh(2, 3), NodeFault(node=(3, 3), start=0))
        faults.advance(0)
        assert faults.is_stranded((1, 1), (3, 3))

    def test_stranded_ids_are_ascending(self):
        faults = active(
            Mesh(2, 3),
            NodeFault(node=(1, 2), start=0),
            NodeFault(node=(2, 1), start=0),
        )
        faults.advance(0)
        in_flight = [
            packet(9, (1, 1), destination=(3, 3)),
            packet(2, (1, 1), destination=(3, 3)),
            packet(5, (2, 2), destination=(3, 3)),
        ]
        assert faults.stranded_ids(in_flight) == [2, 9]

    def test_components_refresh_after_recovery(self):
        faults = active(
            Mesh(2, 3), LinkFault(a=(1, 1), b=(1, 2), start=0, end=2)
        )
        faults.advance(0)
        faults.components()
        faults.advance(2)
        labels = faults.components()
        assert set(labels.values()) == {0}
