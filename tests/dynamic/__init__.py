"""Test package."""
