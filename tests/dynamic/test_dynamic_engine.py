"""Tests for the continuous-injection engine and its statistics."""

import pytest

from repro.algorithms import (
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.dynamic import (
    BernoulliTraffic,
    DynamicEngine,
    DynamicStats,
    ScriptedTraffic,
)


class TestBasicOperation:
    def test_single_scripted_packet_latency(self, mesh8):
        traffic = ScriptedTraffic([((1, 1), 0, (1, 4))])
        engine = DynamicEngine(
            mesh8, PlainGreedyPolicy(), traffic, seed=0
        )
        stats = engine.run(10)
        assert stats.delivered_count == 1
        record = stats.deliveries[0]
        # Generated at the start of step 0, injected immediately, so it
        # moves during steps 0..2 and arrives at time 3: latency == dist.
        assert record.latency == 3
        assert record.hops == 3
        assert record.shortest == 3

    def test_no_traffic_is_a_noop(self, mesh8):
        engine = DynamicEngine(
            mesh8, PlainGreedyPolicy(), BernoulliTraffic(0.0), seed=0
        )
        stats = engine.run(50)
        assert stats.delivered_count == 0
        assert stats.mean_in_flight == 0.0
        assert stats.throughput == 0.0

    def test_low_load_latency_close_to_distance(self, mesh8):
        engine = DynamicEngine(
            mesh8,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.05),
            seed=1,
            warmup=100,
        )
        stats = engine.run(600)
        assert stats.delivered_count > 50
        assert stats.mean_stretch < 1.2
        assert stats.deflection_rate < 0.1
        assert stats.is_stable()

    def test_capacity_never_exceeded(self, mesh8):
        """The injection discipline keeps node load within degree at
        all times, preserving the hot-potato invariant."""
        engine = DynamicEngine(
            mesh8,
            PlainGreedyPolicy(),
            BernoulliTraffic(0.8),
            seed=2,
        )
        engine._start()
        for _ in range(100):
            engine.step()
            loads = {}
            for packet in engine.in_flight:
                loads[packet.location] = loads.get(packet.location, 0) + 1
            for node, load in loads.items():
                assert load <= mesh8.degree(node)

    def test_overload_builds_backlog(self, mesh8):
        engine = DynamicEngine(
            mesh8,
            PlainGreedyPolicy(),
            BernoulliTraffic(0.9),
            seed=3,
        )
        stats = engine.run(300)
        assert stats.final_backlog > 100
        assert not stats.is_stable()

    def test_moderate_load_is_stable(self, mesh8):
        engine = DynamicEngine(
            mesh8,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.15),
            seed=4,
            warmup=100,
        )
        stats = engine.run(800)
        assert stats.is_stable()
        # Throughput matches offered load in steady state (within noise).
        offered = 0.15 * mesh8.num_nodes
        assert stats.throughput == pytest.approx(offered, rel=0.25)


class TestObserverLifecycle:
    def test_on_run_end_fires_with_finalized_stats(self, mesh8):
        from repro.core.events import RunObserver

        class EndCatcher(RunObserver):
            needs_steps = False

            def __init__(self):
                self.results = []

            def on_run_end(self, result):
                self.results.append(result)

        catcher = EndCatcher()
        stats = DynamicEngine(
            mesh8,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.1),
            seed=9,
            observers=[catcher],
        ).run(60)
        assert catcher.results == [stats]
        assert isinstance(catcher.results[0], DynamicStats)
        assert catcher.results[0].horizon == 60

    def test_on_run_end_fires_on_the_instrumented_loop_too(self, mesh8):
        from repro.core.events import RunObserver

        class Full(RunObserver):
            def __init__(self):
                self.steps = 0
                self.ends = 0

            def on_step(self, record, metrics):
                self.steps += 1

            def on_run_end(self, result):
                self.ends += 1

        full = Full()
        DynamicEngine(
            mesh8,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(0.1),
            seed=9,
            observers=[full],
        ).run(30)
        assert full.steps == 30
        assert full.ends == 1

    def test_buffered_dynamic_fires_on_run_end(self, mesh8):
        from repro.algorithms import DimensionOrderPolicy
        from repro.core.events import CallbackObserver
        from repro.dynamic import BufferedDynamicEngine

        seen = []
        stats = BufferedDynamicEngine(
            mesh8,
            DimensionOrderPolicy(),
            BernoulliTraffic(0.1),
            seed=9,
            observers=[CallbackObserver(on_run_end=seen.append)],
        ).run(60)
        assert seen == [stats]


class TestWarmup:
    def test_warmup_excludes_early_packets(self, mesh8):
        traffic = ScriptedTraffic(
            [((1, 1), 0, (4, 4)), ((1, 1), 50, (4, 4))]
        )
        engine = DynamicEngine(
            mesh8, PlainGreedyPolicy(), traffic, seed=0, warmup=10
        )
        stats = engine.run(80)
        assert stats.delivered_count == 1
        assert stats.deliveries[0].generated_at == 50


class TestStats:
    def test_percentile_validation(self):
        stats = DynamicStats()
        with pytest.raises(ValueError):
            stats.latency_percentile(120)

    def test_empty_stats_defaults(self):
        stats = DynamicStats()
        assert stats.mean_latency == 0.0
        assert stats.latency_percentile(99) == 0.0
        assert stats.mean_stretch == 1.0
        assert stats.deflection_rate == 0.0
        assert stats.max_backlog == 0

    def test_percentiles_ordered(self, mesh8):
        engine = DynamicEngine(
            mesh8,
            RandomizedGreedyPolicy(),
            BernoulliTraffic(0.2),
            seed=5,
            warmup=50,
        )
        stats = engine.run(400)
        p50 = stats.latency_percentile(50)
        p90 = stats.latency_percentile(90)
        p99 = stats.latency_percentile(99)
        assert p50 <= p90 <= p99
        assert "latency" in stats.summary()

    def test_deterministic_given_seed(self, mesh8):
        def run():
            engine = DynamicEngine(
                mesh8,
                RandomizedGreedyPolicy(),
                BernoulliTraffic(0.2),
                seed=6,
                warmup=20,
            )
            return engine.run(200)

        first, second = run(), run()
        assert first.delivered_count == second.delivered_count
        assert first.mean_latency == second.mean_latency
