"""Tests for the continuous-traffic store-and-forward engine."""

import pytest

from repro.algorithms import DimensionOrderPolicy, RestrictedPriorityPolicy
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
    ScriptedTraffic,
)
from repro.exceptions import ArcAssignmentError
from repro.mesh.topology import Mesh


class TestBasics:
    def test_single_packet_xy_path(self, mesh8):
        traffic = ScriptedTraffic([((1, 1), 0, (3, 4))])
        engine = BufferedDynamicEngine(
            mesh8, DimensionOrderPolicy(), traffic, seed=0
        )
        stats = engine.run(20)
        assert stats.delivered_count == 1
        record = stats.deliveries[0]
        assert record.hops == record.shortest == 5
        assert record.deflections == 0

    def test_no_deflections_ever(self, mesh8):
        engine = BufferedDynamicEngine(
            mesh8, DimensionOrderPolicy(), BernoulliTraffic(0.3), seed=1
        )
        stats = engine.run(300)
        assert stats.deflection_rate == 0.0
        assert stats.mean_stretch == 1.0

    def test_queues_build_under_load(self, mesh8):
        engine = BufferedDynamicEngine(
            mesh8, DimensionOrderPolicy(), BernoulliTraffic(0.5), seed=2
        )
        engine.run(300)
        assert engine.max_queue_seen > 2 * mesh8.dimension

    def test_low_load_latency_is_distance(self, mesh8):
        engine = BufferedDynamicEngine(
            mesh8,
            DimensionOrderPolicy(),
            BernoulliTraffic(0.05),
            seed=3,
            warmup=100,
        )
        stats = engine.run(600)
        assert stats.delivered_count > 30
        assert stats.mean_latency < 10

    def test_bad_policy_rejected(self, mesh8):
        class Broken(DimensionOrderPolicy):
            name = "broken"

            def forward(self, view):
                return {999: view.out_directions[0]}

        traffic = ScriptedTraffic([((1, 1), 0, (3, 3))])
        engine = BufferedDynamicEngine(mesh8, Broken(), traffic, seed=0)
        with pytest.raises(ArcAssignmentError):
            engine.run(2)


class TestMaComparison:
    """The qualitative [Ma] comparison on shared traffic."""

    def test_equal_performance_below_saturation(self):
        mesh = Mesh(2, 10)
        rate = 0.1
        hot = DynamicEngine(
            mesh,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(rate),
            seed=4,
            warmup=100,
        ).run(500)
        buffered = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            BernoulliTraffic(rate),
            seed=4,
            warmup=100,
        ).run(500)
        assert hot.mean_latency == pytest.approx(
            buffered.mean_latency, rel=0.15
        )
        assert hot.throughput == pytest.approx(
            buffered.throughput, rel=0.1
        )

    def test_buffering_buys_throughput_past_saturation(self):
        mesh = Mesh(2, 10)
        rate = 0.45
        hot = DynamicEngine(
            mesh,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(rate),
            seed=5,
            warmup=100,
        ).run(500)
        buffered_engine = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            BernoulliTraffic(rate),
            seed=5,
            warmup=100,
        )
        buffered = buffered_engine.run(500)
        assert buffered.throughput > hot.throughput
        # ...and pays for it with deep in-fabric queues, which the
        # hot-potato fabric structurally cannot have.
        assert buffered_engine.max_queue_seen > 2 * mesh.dimension
