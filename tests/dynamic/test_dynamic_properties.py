"""Property-based tests for the dynamic engines."""

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algorithms import (
    DimensionOrderPolicy,
    PlainGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
)
from repro.mesh.topology import Mesh

SLOW = settings(
    max_examples=15,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)

params = st.tuples(
    st.sampled_from([4, 6, 8]),              # side
    st.floats(0.01, 0.6),                    # rate
    st.integers(0, 10_000),                  # seed
)


class TestHotPotatoDynamicProperties:
    @given(params)
    @SLOW
    def test_conservation(self, p):
        """Every generated packet is injected, queued, in flight, or
        delivered — nothing leaks."""
        side, rate, seed = p
        engine = DynamicEngine(
            Mesh(2, side),
            PlainGreedyPolicy(),
            BernoulliTraffic(rate),
            seed=seed,
        )
        stats = engine.run(120)
        generated = sum(s.generated for s in stats.samples)
        injected = engine._next_id  # ids are issued at injection
        backlog = sum(len(q) for q in engine.backlog.values())
        assert generated == injected + backlog
        # Injected packets are exactly the in-flight plus delivered
        # ones; _generated_at keeps entries only for undelivered.
        assert len(engine._generated_at) == len(engine.in_flight)
        delivered = injected - len(engine.in_flight)
        assert delivered >= stats.delivered_count  # warm-up excluded

    @given(params)
    @SLOW
    def test_latency_at_least_distance(self, p):
        side, rate, seed = p
        engine = DynamicEngine(
            Mesh(2, side),
            RestrictedPriorityPolicy(),
            BernoulliTraffic(rate),
            seed=seed,
        )
        stats = engine.run(150)
        for record in stats.deliveries:
            assert record.latency >= record.shortest
            assert record.hops >= record.shortest
            assert (record.hops - record.shortest) % 2 == 0

    @given(params)
    @SLOW
    def test_per_step_counters_consistent(self, p):
        side, rate, seed = p
        engine = DynamicEngine(
            Mesh(2, side),
            PlainGreedyPolicy(),
            BernoulliTraffic(rate),
            seed=seed,
        )
        stats = engine.run(100)
        for sample in stats.samples:
            assert sample.injected <= sample.generated + sample.backlog + 10**9
            assert 0 <= sample.advancing <= sample.in_flight
            assert sample.delivered <= sample.in_flight


class TestBufferedDynamicProperties:
    @given(params)
    @SLOW
    def test_hops_equal_distance(self, p):
        """Dimension-order never detours: hops == shortest for every
        delivery, at any load."""
        side, rate, seed = p
        engine = BufferedDynamicEngine(
            Mesh(2, side),
            DimensionOrderPolicy(),
            BernoulliTraffic(rate),
            seed=seed,
        )
        stats = engine.run(120)
        for record in stats.deliveries:
            assert record.hops == record.shortest
            assert record.latency >= record.shortest
