"""Tests for the dynamic traffic models."""

import random

import pytest

from repro.dynamic.injection import (
    BernoulliTraffic,
    HotSpotTraffic,
    ScriptedTraffic,
)


class TestBernoulli:
    def test_rate_validation(self):
        with pytest.raises(ValueError):
            BernoulliTraffic(-0.1)
        with pytest.raises(ValueError):
            BernoulliTraffic(1.1)

    def test_zero_rate_generates_nothing(self, mesh8):
        traffic = BernoulliTraffic(0.0)
        traffic.prepare(mesh8, random.Random(0))
        assert all(
            traffic.arrivals(node, 0) == [] for node in mesh8.nodes()
        )

    def test_rate_one_generates_everywhere(self, mesh8):
        traffic = BernoulliTraffic(1.0)
        traffic.prepare(mesh8, random.Random(0))
        for node in mesh8.nodes():
            arrivals = traffic.arrivals(node, 0)
            assert len(arrivals) == 1
            assert arrivals[0] != node

    def test_empirical_rate(self, mesh8):
        traffic = BernoulliTraffic(0.3)
        traffic.prepare(mesh8, random.Random(1))
        total = sum(
            len(traffic.arrivals(node, step))
            for step in range(100)
            for node in mesh8.nodes()
        )
        expected = 0.3 * 100 * mesh8.num_nodes
        assert 0.8 * expected <= total <= 1.2 * expected

    def test_destinations_in_mesh(self, mesh8):
        traffic = BernoulliTraffic(1.0)
        traffic.prepare(mesh8, random.Random(2))
        for node in mesh8.nodes():
            for destination in traffic.arrivals(node, 0):
                assert mesh8.contains(destination)


class TestHotSpot:
    def test_validation(self):
        with pytest.raises(ValueError):
            HotSpotTraffic(rate=2.0)
        with pytest.raises(ValueError):
            HotSpotTraffic(rate=0.5, hot_fraction=-1)

    def test_bad_hot_spot_rejected(self, mesh8):
        traffic = HotSpotTraffic(rate=0.5, hot_spot=(99, 99))
        with pytest.raises(ValueError):
            traffic.prepare(mesh8, random.Random(0))

    def test_default_hot_spot_is_center(self, mesh8):
        traffic = HotSpotTraffic(rate=1.0, hot_fraction=1.0)
        traffic.prepare(mesh8, random.Random(0))
        assert traffic.hot_spot == mesh8.center()
        for node in mesh8.nodes():
            if node == traffic.hot_spot:
                continue
            assert traffic.arrivals(node, 0) == [mesh8.center()]

    def test_hot_fraction_skews_destinations(self, mesh8):
        traffic = HotSpotTraffic(rate=1.0, hot_fraction=0.5)
        traffic.prepare(mesh8, random.Random(3))
        hits = 0
        total = 0
        for step in range(50):
            for node in mesh8.nodes():
                for destination in traffic.arrivals(node, step):
                    total += 1
                    if destination == traffic.hot_spot:
                        hits += 1
        assert hits / total > 0.3  # well above the uniform 1/64


class TestScripted:
    def test_exact_replay(self, mesh8):
        traffic = ScriptedTraffic(
            [((1, 1), 0, (3, 3)), ((1, 1), 0, (2, 2)), ((4, 4), 2, (1, 1))]
        )
        traffic.prepare(mesh8, random.Random(0))
        assert traffic.arrivals((1, 1), 0) == [(3, 3), (2, 2)]
        assert traffic.arrivals((1, 1), 1) == []
        assert traffic.arrivals((4, 4), 2) == [(1, 1)]

    def test_validates_endpoints(self, mesh8):
        bad = ScriptedTraffic([((0, 0), 0, (1, 1))])
        with pytest.raises(ValueError):
            bad.prepare(mesh8, random.Random(0))
        bad = ScriptedTraffic([((1, 1), 0, (9, 9))])
        with pytest.raises(ValueError):
            bad.prepare(mesh8, random.Random(0))
