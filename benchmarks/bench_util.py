"""Shared helpers for the benchmark/experiment suite.

Every experiment (E1-E13 in DESIGN.md) both *prints* its result table
and *writes* it to ``benchmarks/results/<experiment>.txt`` so the
numbers survive pytest's output capture and can be pasted into
EXPERIMENTS.md.
"""

from __future__ import annotations

import os
from typing import Iterable, Sequence

from repro.analysis.tables import format_table

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def emit(experiment: str, title: str, text: str) -> None:
    """Print a report block and persist it under results/."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    block = f"== {experiment}: {title} ==\n{text}\n"
    print("\n" + block)
    path = os.path.join(RESULTS_DIR, f"{experiment}.txt")
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(block)


def emit_table(
    experiment: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    notes: str = "",
) -> None:
    """Format, print, and persist one experiment table."""
    text = format_table(headers, rows)
    if notes:
        text += f"\n{notes}"
    emit(experiment, title, text)


def once(benchmark, fn):
    """Run an experiment exactly once under pytest-benchmark timing.

    The experiments are full simulations; statistical re-running is
    neither needed nor affordable, so every bench uses a single round.
    """
    return benchmark.pedantic(fn, rounds=1, iterations=1)


def bench_workers() -> int:
    """Worker-process count for the sweep-style drivers.

    Controlled by the ``REPRO_BENCH_WORKERS`` environment variable so
    CI and local runs can fan seed replicates across cores without
    editing the benchmarks; defaults to serial (1), which produces
    identical results (see repro.analysis.runner.ParallelExecutor).
    """
    try:
        return max(1, int(os.environ.get("REPRO_BENCH_WORKERS", "1")))
    except ValueError:
        return 1
