"""E8 — the Remark after Theorem 20: full loads and parity splitting.

Routes full permutations (k = n^2) and four-per-node loads across mesh
sizes, reporting measured time against the parity-sharpened bounds
8n^2 and 16n^2, plus the parity-split decomposition (joint time =
max of the two independent halves).
"""

from bench_util import emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import (
    four_per_node_remark_bound,
    permutation_remark_bound,
)
from repro.workloads import (
    random_permutation,
    reversal,
    saturated_load,
    split_by_origin_parity,
    transpose,
)


def _route(problem, seed=0):
    result = HotPotatoEngine(
        problem, RestrictedPriorityPolicy(), seed=seed
    ).run()
    assert result.completed
    return result.total_steps


def _full_loads():
    rows = []
    for side in (8, 16, 24):
        mesh = Mesh(2, side)
        for label, problem, bound in (
            ("random-perm", random_permutation(mesh, seed=1), permutation_remark_bound(side)),
            ("transpose", transpose(mesh), permutation_remark_bound(side)),
            ("reversal", reversal(mesh), permutation_remark_bound(side)),
            ("saturated-4x", saturated_load(mesh, per_node=4, seed=2), four_per_node_remark_bound(side)),
        ):
            t = _route(problem)
            rows.append([side, label, problem.k, t, bound, t / bound])
    return rows


def _parity_split():
    rows = []
    for side in (8, 16):
        mesh = Mesh(2, side)
        problem = saturated_load(mesh, per_node=1, seed=3)
        even, odd = split_by_origin_parity(problem)
        t_joint = _route(problem)
        t_even = _route(even)
        t_odd = _route(odd)
        rows.append(
            [
                side,
                problem.k,
                t_joint,
                t_even,
                t_odd,
                t_joint == max(t_even, t_odd),
            ]
        )
    return rows


def test_e8_full_load_bounds(benchmark):
    rows = once(benchmark, _full_loads)
    emit_table(
        "E8a",
        "Remark — full loads vs the parity-sharpened bounds",
        ["n", "workload", "k", "T", "bound", "T/bound"],
        rows,
        notes="bound = 8n^2 for one-per-node loads, 16n^2 for 4x loads.",
    )
    assert all(row[5] <= 1.0 for row in rows)


def test_e8_parity_independence(benchmark):
    rows = once(benchmark, _parity_split)
    emit_table(
        "E8b",
        "Remark — parity classes route independently",
        ["n", "k", "T joint", "T even", "T odd", "joint == max(halves)"],
        rows,
        notes="Origin-parity classes never share a node; routing them "
        "together costs exactly the max of routing them apart.",
    )
    assert all(row[5] for row in rows)
