"""E3 — Property 8 / Lemma 19: per-node potential loss, measured.

Audits every node of every step of congested runs under the
Section 4.2 potential: zero violations and a non-negative minimum
margin reproduce Lemma 19.  As an ablation, the same audit under the
naive distance-only potential *fails* — demonstrating why the paper
needs the carried potential ``C_p``.
"""

from bench_util import emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.distance import DistancePotential
from repro.potential.property8 import check_property8, minimum_margin
from repro.potential.restricted import RestrictedPotential
from repro.workloads import (
    quadrant_flood,
    random_many_to_many,
    saturated_load,
    single_target,
)


def _cases():
    mesh = Mesh(2, 16)
    return [
        ("random-256", random_many_to_many(mesh, k=256, seed=0)),
        ("hotspot-120", single_target(mesh, k=120, seed=1)),
        ("flood", quadrant_flood(mesh, seed=2)),
        ("saturated-2x", saturated_load(mesh, per_node=2, seed=3)),
    ]


def _audit(tracker_cls, prefer_type_a=True):
    rows = []
    for label, problem in _cases():
        tracker = tracker_cls() if tracker_cls is DistancePotential else (
            tracker_cls(strict=False)
        )
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(prefer_type_a=prefer_type_a),
            seed=11,
            observers=[tracker],
        )
        result = engine.run()
        assert result.completed
        node_steps = sum(len(drops) for drops in tracker.node_drops)
        violations = check_property8(tracker.node_drops, 2)
        rows.append(
            [
                label,
                node_steps,
                len(violations),
                minimum_margin(tracker.node_drops, 2),
            ]
        )
    return rows


def test_e3_property8_holds_for_paper_potential(benchmark):
    rows = once(benchmark, lambda: _audit(RestrictedPotential))
    emit_table(
        "E3a",
        "Property 8 under the Section 4.2 potential (dist + C)",
        ["workload", "node-steps audited", "violations", "min margin"],
        rows,
        notes="Zero violations everywhere = Lemma 19, measured.",
    )
    assert all(row[2] == 0 for row in rows)
    assert all(row[3] >= 0 for row in rows)


def test_e3_ablation_distance_only_fails(benchmark):
    rows = once(benchmark, lambda: _audit(DistancePotential))
    emit_table(
        "E3b",
        "Ablation — Property 8 under the naive distance potential",
        ["workload", "node-steps audited", "violations", "min margin"],
        rows,
        notes=(
            "The distance-only potential violates Property 8 under "
            "congestion: deflections raise it.  This is exactly the gap "
            "the paper's carried potential C_p closes."
        ),
    )
    assert any(row[2] > 0 for row in rows)
