"""E22 (extension) — adversarial search for slow permutations ([BCS]).

Section 6.1: [BCS] constructed permutations forcing ``Ω(n^2)`` steps
for a restricted-priority algorithm — Theorem 20's analysis is tight
for the class.  Their construction is intricate; this experiment asks
the complementary empirical question: *how far does generic local
search get?*  Hill-climbing over destination swaps (best of several
restarts, including a reversal-seeded start) barely degrades the
greedy algorithms — a robustness result consistent with three decades
of "greedy is hard to break by accident" folklore, and a measurement
of how special the [BCS] construction must be.
"""

from bench_util import emit_table, once

from repro.algorithms import (
    FixedPriorityPolicy,
    PlainGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.analysis.worst_case import search_with_restarts
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import permutation_remark_bound
from repro.workloads import random_permutation, reversal

SIDE = 8


def _run():
    mesh = Mesh(2, SIDE)
    rows = []
    for label, factory in (
        ("restricted-priority", RestrictedPriorityPolicy),
        ("plain-greedy", PlainGreedyPolicy),
        ("fixed-priority", FixedPriorityPolicy),
    ):
        typical = HotPotatoEngine(
            random_permutation(mesh, seed=0), factory(), seed=0
        ).run().total_steps
        structured = HotPotatoEngine(
            reversal(mesh), factory(), seed=0
        ).run().total_steps
        found = search_with_restarts(
            mesh, factory, restarts=2, iterations=120, seed=7
        )
        rows.append(
            [
                label,
                typical,
                structured,
                found.steps,
                found.steps / typical,
                permutation_remark_bound(SIDE),
            ]
        )
    return rows


def test_e22_adversarial_search(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E22",
        f"Adversarial permutation search on the {SIDE}x{SIDE} mesh "
        f"(hill climbing, 2 restarts x 120 swaps)",
        [
            "algorithm",
            "T random perm",
            "T reversal",
            "T worst found",
            "found/typical",
            "8n^2 bound",
        ],
        rows,
        notes=(
            "Generic search degrades greedy routing by only a small "
            "factor and stays far under 8n^2: the Omega(n^2) "
            "worst cases of [BCS] require deliberate construction, "
            "not perturbation — greedy hot-potato routing is robust "
            "to accidental adversity."
        ),
    )
    for row in rows:
        assert row[3] <= row[5]          # still within the bound
        assert row[4] < 3.0              # search gains are modest
