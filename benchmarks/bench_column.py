"""E18 (extension) — the [BRST] column-load parameter (Section 1.1).

Bar-Noy, Raghavan, Schieber and Tamaki bound deflection routing by
``O(n * sqrt(m))`` where ``m`` is the maximum number of packets
destined to a single column.  This experiment controls ``m`` directly
— ``m`` rows each send their full row into one target column — and
fits the growth of the measured routing time in ``m``, checking it
stays below the ``n*sqrt(m)`` shape (and far below Theorem 20, which
only sees ``k = m * n``).
"""

import random

from bench_util import emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.analysis.regression import fit_power_law
from repro.core.engine import HotPotatoEngine
from repro.core.problem import RoutingProblem
from repro.mesh.topology import Mesh
from repro.potential.bounds import theorem20_bound

SIDE = 16
MS = (2, 4, 8, 16)


def _column_load(mesh, m, target_column):
    """``m`` full rows of sources, each into a *random row* of the
    target column — so all ``m * n`` packets genuinely converge on one
    column and the [BRST] parameter controls real congestion."""
    rng = random.Random(m)
    pairs = []
    for row in range(1, m + 1):
        for col in range(1, mesh.side + 1):
            destination = (rng.randint(1, mesh.side), target_column)
            if (row, col) != destination:
                pairs.append(((row, col), destination))
    return RoutingProblem.from_pairs(
        mesh, pairs, name=f"column-m{m}"
    )


def _run():
    mesh = Mesh(2, SIDE)
    rows = []
    ms, ts = [], []
    for m in MS:
        problem = _column_load(mesh, m, target_column=SIDE // 2)
        result = HotPotatoEngine(
            problem, RestrictedPriorityPolicy(), seed=0
        ).run()
        assert result.completed
        brst_shape = SIDE * (m**0.5)
        rows.append(
            [
                m,
                problem.k,
                result.total_steps,
                brst_shape,
                theorem20_bound(SIDE, problem.k),
            ]
        )
        ms.append(m)
        ts.append(result.total_steps)
    fit = fit_power_law(ms, ts)
    return rows, fit


def test_e18_column_load(benchmark):
    rows, fit = once(benchmark, _run)
    emit_table(
        "E18",
        "Column loads — T vs the [BRST] n*sqrt(m) shape (n=16)",
        ["m (rows)", "k", "T", "n*sqrt(m)", "Thm20 bound"],
        rows,
        notes=(
            f"growth fit in m: {fit} — at or below the [BRST] "
            "sqrt-shape exponent 0.5, and every T is under n*sqrt(m) "
            "itself, with Theorem 20 looser by an order of magnitude."
        ),
    )
    assert fit.exponent <= 0.6
    for m, k, t, brst_shape, theorem20 in rows:
        assert t <= brst_shape
        assert t <= theorem20
