"""E11 — Section 1.2: greediness alone permits livelock.

Demonstrates, measures, and certifies the 8-packet greedy livelock:

* the uniform deterministic blocking-greedy policy enters a period-2
  state cycle and delivers nothing in 1000 steps (every step validated
  greedy by Definition 6);
* the exhaustive searcher finds a cycle in the nondeterministic greedy
  transition graph of the same configuration;
* restricted-priority (Definition 18) and randomized greedy route the
  identical instance in a handful of steps — the paper's cure.
"""

from bench_util import emit_table, once

from repro.algorithms import (
    BlockingGreedyPolicy,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
    livelock_instance,
)
from repro.analysis.livelock import detect_cycle, find_greedy_cycle
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh


def _run():
    problem = livelock_instance(Mesh(2, 4))
    rows = []

    engine = HotPotatoEngine(
        problem, BlockingGreedyPolicy(), max_steps=1000
    )
    result = engine.run()
    cycle = detect_cycle(problem, BlockingGreedyPolicy(), max_steps=100)
    rows.append(
        [
            "blocking-greedy (deterministic)",
            1000,
            result.delivered,
            "LIVELOCK",
            f"period {cycle.period} from step {cycle.loop_start}",
        ]
    )

    found = find_greedy_cycle(problem, max_states=20_000)
    schedule_engine = HotPotatoEngine(
        problem, found.make_policy(), max_steps=200
    )
    schedule_result = schedule_engine.run()
    rows.append(
        [
            "searched greedy schedule",
            200,
            schedule_result.delivered,
            "LIVELOCK",
            f"period {found.period} cycle found by search",
        ]
    )

    for label, policy in (
        ("restricted-priority", RestrictedPriorityPolicy()),
        ("randomized-greedy", RandomizedGreedyPolicy()),
    ):
        result = HotPotatoEngine(problem, policy, seed=1).run()
        rows.append(
            [
                label,
                result.total_steps,
                result.delivered,
                "delivered",
                f"T = {result.total_steps}",
            ]
        )
    return rows


def test_e11_livelock(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E11",
        "Livelock — the same 8-packet instance under four disciplines",
        ["algorithm", "steps run", "delivered", "outcome", "detail"],
        rows,
        notes=(
            "Every blocking-greedy step passes the Definition 6 "
            "validator: the infinite run is certified greedy.  "
            "Definition 18 (or randomization) breaks the cycle."
        ),
    )
    assert rows[0][2] == 0 and rows[1][2] == 0
    assert rows[2][2] == 8 and rows[3][2] == 8
