"""E1 — Theorem 20: routing time vs the 8*sqrt(2)*n*sqrt(k) bound.

Sweeps mesh side and batch size for the restricted-priority greedy
algorithm and reports the measured routing time against the Theorem 20
bound.  The reproduction criterion: every run completes within the
bound (the theorem is worst-case, so measured/bound << 1 is expected
and itself reproduces the paper's "greedy is much faster in practice"
observation).
"""

from functools import partial

from bench_util import bench_workers, emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.analysis.runner import run_case
from repro.analysis.stats import summarize
from repro.mesh.topology import Mesh
from repro.potential.bounds import theorem20_bound
from repro.workloads import random_many_to_many

SIDES = (8, 16, 32)
LOADS = (0.125, 0.5, 1.0, 2.0)  # k as a multiple of n^2 (capped)
SEEDS = (0, 1, 2)


def _problem(mesh, k, seed):
    return random_many_to_many(mesh, k=k, seed=seed)


def _sweep():
    rows = []
    for side in SIDES:
        mesh = Mesh(2, side)
        for load in LOADS:
            k = int(load * mesh.num_nodes)
            if k < 1 or k > 2 * mesh.num_nodes:
                continue
            points = run_case(
                partial(_problem, mesh, k),
                RestrictedPriorityPolicy,
                SEEDS,
                max_steps=int(theorem20_bound(side, k)) + 1,
                workers=bench_workers(),
            )
            times = []
            for point in points:
                assert point.result.completed, "Theorem 20 bound exceeded!"
                times.append(point.result.total_steps)
            summary = summarize(times)
            bound = theorem20_bound(side, k)
            rows.append(
                [
                    side,
                    k,
                    summary.mean,
                    summary.maximum,
                    bound,
                    summary.maximum / bound,
                ]
            )
    return rows


def test_e1_theorem20_bound(benchmark):
    rows = once(benchmark, _sweep)
    emit_table(
        "E1",
        "Theorem 20 — T vs 8*sqrt(2)*n*sqrt(k) (restricted-priority)",
        ["n", "k", "T mean", "T max", "bound", "max/bound"],
        rows,
        notes=(
            "All runs complete within the bound; the ratio stays far "
            "below 1, matching the paper's worst-case-vs-practice gap."
        ),
    )
    assert all(row[5] <= 1.0 for row in rows)
