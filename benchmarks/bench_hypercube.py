"""E17 (extension) — the related-work hypercube results (Section 1.1).

The greedy hot-potato story started on the hypercube: Borodin–Hopcroft
observed greedy routing "appears promising" there [BH], and Hajek
proved the ``2k + n`` bound for a simple priority algorithm [Haj].
Both are measured here on cubes of dimension 5-8: greedy permutations
finish within a whisker of the diameter, and the fixed-priority
algorithm sits far below its ``2k + n`` line.
"""

from bench_util import emit_table, once

from repro.algorithms import FixedPriorityPolicy, PlainGreedyPolicy
from repro.analysis.stats import summarize
from repro.core.engine import HotPotatoEngine
from repro.mesh.hypercube import Hypercube
from repro.workloads import random_many_to_many, random_permutation

DIMENSIONS = (5, 6, 7, 8)
SEEDS = (0, 1, 2)


def _permutations():
    rows = []
    for dimension in DIMENSIONS:
        cube = Hypercube(dimension)
        times = []
        for seed in SEEDS:
            problem = random_permutation(cube, seed=seed)
            result = HotPotatoEngine(
                problem, PlainGreedyPolicy(), seed=seed
            ).run()
            assert result.completed
            times.append(result.total_steps)
        summary = summarize(times)
        rows.append(
            [
                dimension,
                2**dimension,
                summary.mean,
                summary.maximum,
                dimension,  # diameter
                summary.maximum / dimension,
            ]
        )
    return rows


def _hajek():
    rows = []
    for dimension in DIMENSIONS:
        cube = Hypercube(dimension)
        k = 2 ** (dimension - 1)
        times = []
        for seed in SEEDS:
            problem = random_many_to_many(cube, k=k, seed=seed)
            result = HotPotatoEngine(
                problem, FixedPriorityPolicy(), seed=seed
            ).run()
            assert result.completed
            times.append(result.total_steps)
        summary = summarize(times)
        bound = 2 * k + dimension
        rows.append(
            [dimension, k, summary.mean, summary.maximum, bound,
             summary.maximum / bound]
        )
    return rows


def test_e17a_borodin_hopcroft_permutations(benchmark):
    rows = once(benchmark, _permutations)
    emit_table(
        "E17a",
        "Hypercube permutations — greedy vs the diameter ([BH] folklore)",
        ["dim", "nodes", "T mean", "T max", "diameter", "max/diam"],
        rows,
        notes=(
            "Borodin–Hopcroft's 'experimentally promising' greedy "
            "routing, quantified: permutations finish within ~2x the "
            "Hamming diameter."
        ),
    )
    assert all(row[5] <= 2.5 for row in rows)


def test_e17b_hajek_bound(benchmark):
    rows = once(benchmark, _hajek)
    emit_table(
        "E17b",
        "Hypercube half-load batches — fixed priority vs 2k + n ([Haj])",
        ["dim", "k", "T mean", "T max", "2k+n", "max/bound"],
        rows,
        notes="Hajek's evacuation bound holds with a wide margin.",
    )
    assert all(row[5] <= 1.0 for row in rows)
