"""E12 — single-target routing vs the d_max + k bound (Section 6.1).

Sweeps the hot-spot batch size for the closest-first greedy specialist
and reports measured time against the d_max + k bound that [BTS]'s
algorithm matches exactly, plus the absorption-rate lower bound
ceil(k / 2d) (the target absorbs at most 2d packets per step).
"""

import math

from bench_util import emit_table, once

from repro.algorithms import ClosestFirstPolicy, RestrictedPriorityPolicy
from repro.analysis.stats import summarize
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.workloads import single_target

KS = (10, 25, 50, 100, 150)
SEEDS = (0, 1, 2)


def _run():
    mesh = Mesh(2, 16)
    rows = []
    for k in KS:
        for label, policy_factory in (
            ("closest-first", ClosestFirstPolicy),
            ("restricted-priority", RestrictedPriorityPolicy),
        ):
            times, bounds = [], []
            for seed in SEEDS:
                problem = single_target(mesh, k=k, seed=seed)
                result = HotPotatoEngine(
                    problem, policy_factory(), seed=seed
                ).run()
                assert result.completed
                times.append(result.total_steps)
                bounds.append(problem.d_max + k)
            summary = summarize(times)
            rows.append(
                [
                    k,
                    label,
                    summary.mean,
                    summary.maximum,
                    math.ceil(k / 4),
                    max(bounds),
                    summary.maximum / max(bounds),
                ]
            )
    return rows


def test_e12_single_target(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E12",
        "Single target — T vs absorption lower bound and d_max + k",
        ["k", "algorithm", "T mean", "T max", "ceil(k/2d)", "d_max+k", "max/(d_max+k)"],
        rows,
        notes=(
            "The greedy specialist sits between the absorption lower "
            "bound and the [BTS] d_max + k line."
        ),
    )
    for row in rows:
        assert row[3] <= row[5]
        assert row[3] >= row[4]
