"""E10 — algorithm comparison grid (greedy variants vs structured).

Routes identical instances under every greedy policy plus the buffered
dimension-order comparator and reports routing time, deflections,
stretch, and buffer use.  Reproduces the qualitative claims of
Sections 1 and 6: greedy hot-potato routing is near-optimal on typical
loads, needs no buffers, and the restricted-priority discipline costs
essentially nothing over plain greed.
"""

from bench_util import emit_table, once

from repro.algorithms import DimensionOrderPolicy, make_policy
from repro.analysis.stats import summarize
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.workloads import (
    random_many_to_many,
    random_permutation,
    single_target,
    transpose,
)

POLICIES = (
    "restricted-priority",
    "fewest-good-directions",
    "plain-greedy",
    "randomized-greedy",
    "fixed-priority",
    "destination-order",
    "closest-first",
)
SEEDS = (0, 1, 2)


def _workloads(mesh, seed):
    return [
        ("random-128", random_many_to_many(mesh, k=128, seed=seed)),
        ("permutation", random_permutation(mesh, seed=seed)),
        ("transpose", transpose(mesh)),
        ("hotspot-100", single_target(mesh, k=100, seed=seed)),
    ]


def _run():
    mesh = Mesh(2, 16)
    rows = []
    for label_index, (label, _) in enumerate(_workloads(mesh, 0)):
        d_max = None
        for policy_name in POLICIES:
            times, deflections, stretches = [], [], []
            for seed in SEEDS:
                problem = _workloads(mesh, seed)[label_index][1]
                d_max = problem.d_max
                result = HotPotatoEngine(
                    problem,
                    make_policy(policy_name),
                    seed=seed,
                ).run()
                assert result.completed
                times.append(result.total_steps)
                deflections.append(result.total_deflections)
                stretches.append(result.average_stretch)
            rows.append(
                [
                    label,
                    policy_name,
                    summarize(times).mean,
                    summarize(deflections).mean,
                    summarize(stretches).mean,
                    "0 (hot-potato)",
                ]
            )
        # Structured buffered comparator.
        times, buffers = [], []
        for seed in SEEDS:
            problem = _workloads(mesh, seed)[label_index][1]
            engine = BufferedEngine(problem, DimensionOrderPolicy())
            result = engine.run()
            assert result.completed
            times.append(result.total_steps)
            buffers.append(engine.max_buffer_seen)
        rows.append(
            [
                label,
                "dimension-order (buffered)",
                summarize(times).mean,
                0.0,
                1.0,
                f"{max(buffers)} max queue",
            ]
        )
        rows.append([f"(d_max {label} = {d_max})", "", "", "", "", ""])
    return rows


def test_e10_comparison_grid(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E10",
        "Algorithm comparison — mean T / deflections / stretch / buffers "
        "(n=16, 3 seeds)",
        ["workload", "algorithm", "T mean", "deflections", "stretch", "buffering"],
        rows,
        notes=(
            "Greedy hot-potato variants land within a small factor of "
            "d_max with zero buffering; the structured baseline matches "
            "on time but pays in queue space."
        ),
    )
    assert rows  # table produced; per-cell assertions live in tests/
