"""E14 (extension) — continuous-traffic load-latency curves.

The paper's introduction motivates hot-potato routing with
continuously loaded networks ([Ma], [GG], [AS], [Sz]); this extension
experiment measures the classic deflection-network phenomenology on
the reproduction's dynamic engine: flat latency below saturation, a
sharp knee at the capacity load, source-side (never in-fabric)
queueing beyond it, and the deflection rate rising smoothly with load.
"""

from bench_util import emit_table, once

from repro.algorithms import RandomizedGreedyPolicy, RestrictedPriorityPolicy
from repro.dynamic import BernoulliTraffic, DynamicEngine, HotSpotTraffic
from repro.mesh.topology import Mesh

RATES = (0.05, 0.1, 0.2, 0.3, 0.45)
HORIZON = 800
WARMUP = 200


def _sweep():
    mesh = Mesh(2, 12)
    rows = []
    for label, policy_factory, traffic_factory in (
        ("uniform/restricted", RestrictedPriorityPolicy, BernoulliTraffic),
        ("uniform/randomized", RandomizedGreedyPolicy, BernoulliTraffic),
        (
            "hotspot20%/restricted",
            RestrictedPriorityPolicy,
            lambda rate: HotSpotTraffic(rate, hot_fraction=0.2),
        ),
    ):
        for rate in RATES:
            engine = DynamicEngine(
                mesh,
                policy_factory(),
                traffic_factory(rate),
                seed=3,
                warmup=WARMUP,
            )
            stats = engine.run(HORIZON)
            rows.append(
                [
                    label,
                    rate,
                    stats.mean_latency,
                    stats.latency_percentile(99),
                    stats.deflection_rate,
                    stats.throughput,
                    stats.max_backlog,
                    stats.is_stable(),
                ]
            )
    return rows


def test_e14_load_latency(benchmark):
    rows = once(benchmark, _sweep)
    emit_table(
        "E14",
        "Dynamic traffic — load vs latency/deflections/backlog (12x12)",
        [
            "traffic/policy",
            "load",
            "lat mean",
            "lat p99",
            "deflect",
            "thruput",
            "max backlog",
            "stable",
        ],
        rows,
        notes=(
            "Flat latency + zero backlog below the knee; source-side "
            "backlog (never in-fabric queues) past it.  Hot-spot "
            "traffic saturates earlier, as the absorbing node's 2d "
            "in-arcs bottleneck the fabric."
        ),
    )
    # Low load is stable and near-distance for every configuration.
    low = [r for r in rows if r[1] == RATES[0]]
    assert all(r[7] for r in low)
    assert all(r[2] < 15 for r in low)
    # Overload is unstable for uniform traffic.
    over = [r for r in rows if r[1] == RATES[-1] and "uniform" in r[0]]
    assert all(not r[7] for r in over)
    # Deflection rate increases with load (uniform/restricted slice).
    slice_rows = [r for r in rows if r[0] == "uniform/restricted"]
    deflect = [r[4] for r in slice_rows]
    assert deflect == sorted(deflect)
