"""E21 (extension) — deflection vs store-and-forward under load ([Ma]).

The head-to-head the paper's introduction cites (Maxemchuk 1989):
identical continuous traffic through (a) a bufferless deflection
fabric and (b) a buffered dimension-order fabric.  Expected shape,
which this experiment certifies: indistinguishable latency and
throughput below saturation; past it, buffering sustains higher
throughput at the price of deep in-fabric queues — precisely the
hardware the optical/fine-grained systems of Section 1 cannot afford.
"""

from bench_util import emit_table, once

from repro.algorithms import DimensionOrderPolicy, RestrictedPriorityPolicy
from repro.dynamic import (
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
)
from repro.mesh.topology import Mesh

RATES = (0.05, 0.15, 0.25, 0.35, 0.45)
HORIZON = 700
WARMUP = 150


def _run():
    mesh = Mesh(2, 12)
    rows = []
    for rate in RATES:
        hot = DynamicEngine(
            mesh,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(rate),
            seed=1,
            warmup=WARMUP,
        ).run(HORIZON)
        buffered_engine = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            BernoulliTraffic(rate),
            seed=1,
            warmup=WARMUP,
        )
        buffered = buffered_engine.run(HORIZON)
        rows.append(
            [
                rate,
                hot.mean_latency,
                buffered.mean_latency,
                hot.throughput,
                buffered.throughput,
                hot.deflection_rate,
                buffered_engine.max_queue_seen,
            ]
        )
    return rows


def test_e21_deflection_vs_store_and_forward(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E21",
        "Deflection vs store-and-forward under identical traffic (12x12)",
        [
            "load",
            "lat hot-potato",
            "lat buffered",
            "thr hot-potato",
            "thr buffered",
            "deflect rate",
            "max queue (buf)",
        ],
        rows,
        notes=(
            "Below saturation the two disciplines are "
            "indistinguishable; past it, buffers buy throughput at the "
            "cost of deep in-fabric queues — the [Ma] trade the "
            "paper's introduction invokes."
        ),
    )
    # Below saturation: near-identical latency and throughput.
    for row in rows[:2]:
        assert abs(row[1] - row[2]) / row[2] < 0.25
        assert abs(row[3] - row[4]) / row[4] < 0.1
    # Past saturation: buffered throughput wins; queues are deep.
    last = rows[-1]
    assert last[4] > last[3]
    assert last[6] > 4
