"""E19 (extension) — Claim 16 and the Theorem 17 recurrence, numerically.

Two proof-internal checks Theorem 17 relies on:

* **Claim 16** — the good-node/surface trade-off balances no lower
  than ``L/2``.  The continuous equation (6) obeys this only for
  ``L >= 4d`` (case 1); for small ``L`` the paper waves at "an easy
  (though tedious) case analysis".  This experiment reconstructs that
  analysis: the continuous balance point genuinely dips below ``L/2``
  for ``L < 4d``, and the *discrete* structure (bad nodes hold
  ``d+1..2d`` packets; a second Property-8 step) restores the bound —
  exhaustively checked for every small load and feasible bad count.

* **The decay recurrence** — iterating Lemma 15's guaranteed two-step
  drop literally, from ``Phi(0) = k*M``, always terminates within the
  closed-form ``(4d)^(1-1/d) * k^(1/d) * M`` that the phase argument
  extracts from it.
"""

from bench_util import emit_table, once

from repro.potential.bounds import theorem17_bound
from repro.potential.recurrence import (
    claim16_b0,
    decay_steps,
    verify_claim16_case2,
)


def _claim16():
    rows = []
    for d in (2, 3, 4):
        dip = 0
        for L in range(1, 4 * d):
            if claim16_b0(float(L), d) < L / 2 - 1e-9:
                dip += 1
        violations = sum(
            len(verify_claim16_case2(L, d)) for L in range(0, 6 * d + 1)
        )
        b0_large = claim16_b0(float(10 * d), d)
        rows.append(
            [
                d,
                f"{dip}/{4 * d - 1}",
                violations,
                b0_large,
                10 * d / 2,
                b0_large >= 10 * d / 2,
            ]
        )
    return rows


def _recurrence():
    rows = []
    for d in (2, 3):
        for side in (8, 16):
            M = 4 * side
            for k in (16, 256):
                iterated = decay_steps(k * M, M, d)
                closed = theorem17_bound(d, k, M)
                rows.append([d, side, k, iterated, closed, iterated / closed])
    return rows


def test_e19a_claim16(benchmark):
    rows = once(benchmark, _claim16)
    emit_table(
        "E19a",
        "Claim 16 — continuous dip below L/2 vs the discrete rescue",
        [
            "d",
            "L<4d with continuous B0 < L/2",
            "discrete case-2 violations",
            "B0 at L=10d",
            "L/2",
            "case-1 holds",
        ],
        rows,
        notes=(
            "Column 2 shows the continuous relaxation really fails on "
            "small loads (why the paper needs its case analysis); "
            "column 3 shows the reconstructed discrete analysis has "
            "zero violations."
        ),
    )
    for row in rows:
        assert row[2] == 0
        assert row[5]


def test_e19b_decay_recurrence(benchmark):
    rows = once(benchmark, _recurrence)
    emit_table(
        "E19b",
        "Theorem 17 — iterated Lemma 15 recurrence vs the closed form",
        ["d", "n", "k", "iterated steps", "closed form", "ratio"],
        rows,
        notes=(
            "The phase argument's closed form over-estimates the "
            "literal recurrence by the (1+eps) phase slack only."
        ),
    )
    assert all(row[3] <= row[4] + 2 for row in rows)
