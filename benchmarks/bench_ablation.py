"""E15 (extension) — ablations of the design choices DESIGN.md calls out.

Three per-node design decisions go into the paper's algorithm class;
each is ablated on identical congested instances:

* **matching quality** — maximum matching (Section 5's max-advance
  requirement) vs first-fit maximal matching (all Definition 6 needs);
* **restricted-packet priority** — Definition 18 on vs off (plain
  greedy) vs inverted (the blocking policy's most-good-first order);
* **deflection rule** — where losers are sent (canonical order, bounce
  back along the entry arc, or uniformly at random).
"""

from bench_util import emit_table, once

from repro.algorithms import (
    GreedyMatchingPolicy,
    MaximalGreedyPolicy,
    RestrictedPriorityPolicy,
)
from repro.analysis.stats import summarize
from repro.core.engine import HotPotatoEngine
from repro.core.validation import validators_for
from repro.mesh.topology import Mesh
from repro.workloads import quadrant_flood, saturated_load, single_target

SEEDS = (0, 1, 2)


def _workload(mesh, seed, which):
    if which == "hotspot":
        return single_target(mesh, k=100, seed=seed)
    if which == "flood":
        return quadrant_flood(mesh, seed=seed)
    return saturated_load(mesh, per_node=3, seed=seed)


def _measure(policy_factory, which):
    mesh = Mesh(2, 16)
    times, deflections = [], []
    for seed in SEEDS:
        problem = _workload(mesh, seed, which)
        policy = policy_factory()
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=seed,
            validators=validators_for(policy, strict=False),
        )
        result = engine.run()
        assert result.completed
        times.append(result.total_steps)
        deflections.append(result.total_deflections)
    return summarize(times).mean, summarize(deflections).mean


def _run():
    rows = []
    for which in ("hotspot", "flood", "saturated-3x"):
        # Matching-quality ablation.
        for label, factory in (
            ("maximum matching (paper)", RestrictedPriorityPolicy),
            ("first-fit maximal", MaximalGreedyPolicy),
        ):
            t, d = _measure(factory, which)
            rows.append([which, "matching", label, t, d])
        # Priority ablation.
        for label, factory in (
            ("restricted first (Def 18)", RestrictedPriorityPolicy),
            ("no priority", GreedyMatchingPolicy),
            (
                "type B before type A",
                lambda: RestrictedPriorityPolicy(prefer_type_a=False),
            ),
        ):
            t, d = _measure(factory, which)
            rows.append([which, "priority", label, t, d])
        # Deflection-rule ablation.
        for rule in ("ordered", "reverse", "random"):
            t, d = _measure(
                lambda rule=rule: RestrictedPriorityPolicy(deflection=rule),
                which,
            )
            rows.append([which, "deflection", rule, t, d])
    return rows


def test_e15_ablations(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E15",
        "Ablations — matching quality / priority / deflection rule "
        "(n=16, mean over 3 seeds)",
        ["workload", "axis", "variant", "T mean", "deflections mean"],
        rows,
        notes=(
            "All variants are greedy and terminate; the table "
            "quantifies how much each ingredient of the analyzed class "
            "costs or buys on congested instances."
        ),
    )
    # Sanity: every ablation variant still routes (asserted inside),
    # and maximum matching never loses to first-fit by more than 2x.
    by_key = {}
    for workload, axis, variant, t, _ in rows:
        by_key[(workload, axis, variant)] = t
    for which in ("hotspot", "flood", "saturated-3x"):
        maximum = by_key[(which, "matching", "maximum matching (paper)")]
        maximal = by_key[(which, "matching", "first-fit maximal")]
        assert maximum <= 2 * maximal
