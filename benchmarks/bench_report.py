"""Append an engine-throughput record to the BENCH_engine.json trajectory.

Runs the same configurations as ``bench_engine_perf.py`` (strict
validation, instrumented capacity-only, lean fast path) plus a small
parallel-harness sweep, computes packet-steps per second for each, and
appends one JSON record to ``BENCH_engine.json`` at the repository
root.  The file is a list of records, one per invocation, so future
PRs can diff simulator throughput against history and catch perf
regressions::

    PYTHONPATH=src python benchmarks/bench_report.py [--workers N] [--repeats R]

Not a pytest benchmark (no ``test_`` functions): pytest-benchmark
timings are great for relative CI comparisons but awkward to append to
a cross-run trajectory file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import sys
import time
from functools import partial

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.algorithms import (  # noqa: E402
    DimensionOrderPolicy,
    RestrictedPriorityPolicy,
)
from repro.analysis.runner import run_case  # noqa: E402
from repro.campaign import (  # noqa: E402
    Campaign,
    CampaignStore,
    CaseSpec,
    WorkerPool,
)
from repro.campaign.worker import (  # noqa: E402
    execute_chunk,
    initialize_worker,
)
from repro.core.buffered_engine import BufferedEngine  # noqa: E402
from repro.core.engine import HotPotatoEngine  # noqa: E402
from repro.core.validation import validators_for  # noqa: E402
from repro.dynamic import (  # noqa: E402
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
)
from repro.mesh.topology import Mesh  # noqa: E402
from repro.obs.manifest import git_sha  # noqa: E402
from repro.obs.profiler import PhaseProfiler  # noqa: E402
from repro.workloads import random_many_to_many  # noqa: E402

TRAJECTORY = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_engine.json",
)

SIDE = 16
K = 256
SEED = 77


#: The large-scale workload only the array backend can complete in
#: reasonable time (the scalar kernel would take minutes per run).
LARGE_SIDE = 256
LARGE_K = 65536


def _run_once(
    strict: bool, fast_path, backend: str = "object", observers=()
) -> tuple:
    """One full simulation; returns (elapsed seconds, packet-steps)."""
    mesh = Mesh(2, SIDE)
    problem = random_many_to_many(mesh, k=K, seed=SEED)
    policy = RestrictedPriorityPolicy()
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=SEED,
        validators=validators_for(policy, strict=strict),
        fast_path=fast_path,
        backend=backend,
        observers=list(observers),
    )
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert result.completed
    packet_steps = sum(m.in_flight for m in result.step_metrics)
    return elapsed, packet_steps


def _throughput(
    strict: bool, fast_path, repeats: int, backend: str = "object"
) -> float:
    """Best-of-N packet-steps/sec (best-of controls scheduler noise)."""
    best = None
    for _ in range(repeats):
        elapsed, packet_steps = _run_once(strict, fast_path, backend)
        rate = packet_steps / elapsed
        if best is None or rate > best:
            best = rate
    return best


def _run_large_once() -> tuple:
    """The n=256, k=65536 workload on the soa backend.

    Scalar-kernel throughput (~50k packet-steps/s) would need minutes
    for the ~11M packet-steps here, so this row is array-backend only.
    The first call also pays the one-time ArcTables build for the
    65536-node mesh; best-of repeats absorb it.
    """
    mesh = Mesh(2, LARGE_SIDE)
    problem = random_many_to_many(mesh, k=LARGE_K, seed=SEED)
    policy = RestrictedPriorityPolicy()
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=SEED,
        validators=validators_for(policy, strict=False),
        backend="soa",
    )
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert result.completed
    packet_steps = sum(m.in_flight for m in result.step_metrics)
    return elapsed, packet_steps


def _run_buffered_once() -> tuple:
    """One store-and-forward batch run (lean kernel loop)."""
    mesh = Mesh(2, SIDE)
    problem = random_many_to_many(mesh, k=K, seed=SEED)
    engine = BufferedEngine(problem, DimensionOrderPolicy(), seed=SEED)
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert result.completed
    packet_steps = sum(m.in_flight for m in result.step_metrics)
    return elapsed, packet_steps


DYNAMIC_STEPS = 400
DYNAMIC_WARMUP = 50
DYNAMIC_RATE = 0.05


def _run_dynamic_once(buffered: bool) -> tuple:
    """One continuous-traffic run (lean kernel loop, no observers)."""
    mesh = Mesh(2, SIDE)
    if buffered:
        engine = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            BernoulliTraffic(DYNAMIC_RATE),
            seed=SEED,
            warmup=DYNAMIC_WARMUP,
        )
    else:
        engine = DynamicEngine(
            mesh,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(DYNAMIC_RATE),
            seed=SEED,
            warmup=DYNAMIC_WARMUP,
        )
    start = time.perf_counter()
    stats = engine.run(DYNAMIC_STEPS)
    elapsed = time.perf_counter() - start
    packet_steps = sum(s.in_flight for s in stats.samples)
    return elapsed, packet_steps


def _best_rate(run_once, repeats: int) -> float:
    """Best-of-N packet-steps/sec for a zero-argument runner."""
    best = None
    for _ in range(repeats):
        elapsed, packet_steps = run_once()
        rate = packet_steps / elapsed
        if best is None or rate > best:
            best = rate
    return best


def _observed_throughput(repeats: int) -> float:
    """Best-of-N fast-path packet-steps/sec with obs recorders attached.

    The recorders are the summary-fed pair (``RunMetricsRecorder`` +
    ``StepSeries``) that ``--series`` and campaign metric folding use:
    ``needs_steps=False``, so the engine stays on the lean loop and the
    entire observability cost is the per-step summary dispatch.  Fresh
    recorders per attempt keep run state independent.
    """
    from repro.obs.metrics import RunMetricsRecorder
    from repro.obs.series import SeriesRecorder

    best = None
    for _ in range(repeats):
        elapsed, packet_steps = _run_once(
            False, True, observers=[RunMetricsRecorder(), SeriesRecorder()]
        )
        rate = packet_steps / elapsed
        if best is None or rate > best:
            best = rate
    return best


#: Checkpoint interval for the overhead row.  The reference workload
#: completes in ~25 steps, so every-8 gives a few snapshots per run —
#: frequent enough to measure serialization cost, and *denser* than a
#: sane production interval, which makes the ≤5% guard conservative.
CHECKPOINT_EVERY = 8


def _checkpoint_throughput(repeats: int) -> float:
    """Best-of-N fast-path packet-steps/sec with checkpointing on.

    The sink discards the snapshot after asserting one arrived, so the
    row measures exactly what ``checkpoint_every`` adds on the lean
    loop: segment-boundary exits plus snapshot serialization — not
    disk I/O, which belongs to the chosen sink (store append, atomic
    file write) rather than to the engine.
    """
    mesh = Mesh(2, SIDE)
    problem = random_many_to_many(mesh, k=K, seed=SEED)
    best = None
    for _ in range(repeats):
        taken = []
        policy = RestrictedPriorityPolicy()
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=SEED,
            validators=validators_for(policy, strict=False),
            fast_path=True,
            checkpoint_every=CHECKPOINT_EVERY,
            on_checkpoint=taken.append,
        )
        start = time.perf_counter()
        result = engine.run()
        elapsed = time.perf_counter() - start
        assert result.completed
        assert taken, "reference run too short to checkpoint"
        packet_steps = sum(m.in_flight for m in result.step_metrics)
        rate = packet_steps / elapsed
        if best is None or rate > best:
            best = rate
    return best


def _lean_observability() -> tuple:
    """One profiled fast-path run; returns (phase shares, counters).

    The profiled loop is the lean loop with timestamps, so the shares
    attribute the lean path's time across the kernel phases, and the
    counters are the run's :class:`RunTelemetry` totals.
    """
    mesh = Mesh(2, SIDE)
    problem = random_many_to_many(mesh, k=K, seed=SEED)
    policy = RestrictedPriorityPolicy()
    profiler = PhaseProfiler()
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=SEED,
        validators=validators_for(policy, strict=False),
        profiler=profiler,
    )
    result = engine.run()
    assert result.completed
    shares = {
        phase: round(share, 4) for phase, share in profiler.shares().items()
    }
    return shares, engine.telemetry.to_dict()


def _sweep_problem(mesh, k, seed):
    return random_many_to_many(mesh, k=k, seed=seed)


def _sweep_seconds(workers: int, repeats: int) -> float:
    """Wall time of a 8-seed replicate sweep through the harness."""
    mesh = Mesh(2, SIDE)
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        run_case(
            partial(_sweep_problem, mesh, K),
            RestrictedPriorityPolicy,
            seeds=range(8),
            strict_validation=False,
            workers=workers,
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _campaign_specs() -> list:
    """The declarative form of the 8-seed reference sweep."""
    return [
        CaseSpec(
            topology="mesh",
            workload="random",
            policy="restricted-priority",
            seed=seed,
            side=SIDE,
            workload_params=(("k", K),),
            strict_validation=False,
        )
        for seed in range(8)
    ]


def _campaign_sweep_seconds(workers: int, repeats: int) -> float:
    """Wall time of the 8-seed sweep through the campaign orchestrator.

    Both variants run against a real event-sourced store (fsync per
    finished case): that is the configuration where ``workers=2`` beats
    serial even on one CPU, because the parent overlaps event-log I/O
    with worker compute.  The pool is started and warmed *outside* the
    timed region — campaign pools are persistent, so steady-state cost
    is what the trajectory should track.
    """
    import gc
    import tempfile

    specs = _campaign_specs()
    # The earlier throughput rows leave a large, garbage-laden heap in
    # this process.  Settle and freeze it (symmetrically, for both the
    # serial and pooled variant) so the timed region measures the
    # campaign stack, not GC passes over benchmark debris — and so
    # forked workers don't spend the measurement copy-on-write-faulting
    # inherited pages every time a collection touches them.
    gc.collect()
    gc.freeze()
    pool = None
    if workers > 1:
        pool = WorkerPool(
            workers,
            initializer=initialize_worker,
            initargs=((specs[0].shape,),),
        )
        pool.start()
        # Touch every worker process once so spawn + import cost stays
        # out of the measurement (a 2-item batch makes 2 chunks).
        warm = [
            CaseSpec(
                topology="mesh",
                workload="random",
                policy="restricted-priority",
                seed=seed,
                side=4,
                workload_params=(("k", 4),),
            )
            for seed in range(2)
        ]
        pool.run_batch(warm, execute_chunk)
    best = None
    try:
        with tempfile.TemporaryDirectory() as tmp:
            # Sub-second rows need more best-of samples than the
            # multi-second throughput rows to shake scheduler noise.
            for attempt in range(max(repeats, 5)):
                store = CampaignStore(
                    os.path.join(tmp, f"campaign-{workers}-{attempt}.jsonl")
                )
                if pool is not None:
                    campaign = Campaign(specs, store=store, pool=pool)
                else:
                    campaign = Campaign(specs, store=store)
                start = time.perf_counter()
                result = campaign.run()
                elapsed = time.perf_counter() - start
                assert len(result.points) == 8
                if best is None or elapsed < best:
                    best = elapsed
    finally:
        if pool is not None:
            pool.close()
        gc.unfreeze()
    return best


def build_record(
    workers: int, repeats: int, include_large: bool = True
) -> dict:
    strict = _throughput(True, None, repeats)
    instrumented = _throughput(False, False, repeats)
    fast = _throughput(False, True, repeats)
    observed = _observed_throughput(repeats)
    checkpointed = _checkpoint_throughput(repeats)
    soa = _throughput(False, None, repeats, backend="soa")
    buffered = _best_rate(_run_buffered_once, repeats)
    dynamic = _best_rate(partial(_run_dynamic_once, False), repeats)
    buffered_dynamic = _best_rate(partial(_run_dynamic_once, True), repeats)
    phase_shares, lean_counters = _lean_observability()
    rates = {
        "strict_validation": round(strict, 1),
        "instrumented": round(instrumented, 1),
        "fast_path": round(fast, 1),
        "soa": round(soa, 1),
        "buffered_batch": round(buffered, 1),
        "dynamic": round(dynamic, 1),
        "buffered_dynamic": round(buffered_dynamic, 1),
    }
    #: Which kernel produced each throughput row.
    backend = {name: "object" for name in rates}
    backend["soa"] = "soa"
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "git_sha": git_sha(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "workload": f"random k={K} on 2-d mesh n={SIDE}, seed {SEED}",
        "policy": "restricted-priority",
        "backend": backend,
        "packet_steps_per_sec": rates,
        "dynamic_workload": (
            f"bernoulli p={DYNAMIC_RATE} on 2-d mesh n={SIDE}, "
            f"{DYNAMIC_STEPS} steps, warmup {DYNAMIC_WARMUP}, seed {SEED}"
        ),
        "fast_over_instrumented": round(fast / instrumented, 2),
        #: Cost of the summary-fed obs layer on the lean loop: the
        #: fast-path row re-run with RunMetricsRecorder + StepSeries
        #: attached.  ``overhead`` is the fractional throughput drop
        #: ((plain - observed) / plain); the regression guard fails it
        #: above the tolerance, measured fresh each run (no baseline
        #: entry needed).
        "obs_overhead": {
            "plain": round(fast, 1),
            "observed": round(observed, 1),
            "overhead": round(max(0.0, 1.0 - observed / fast), 4),
        },
        #: Cost of mid-run checkpointing on the lean loop: the
        #: fast-path row re-run with ``checkpoint_every=64`` and a
        #: discard sink, so the figure isolates segmentation plus
        #: snapshot serialization.  Guarded same-run like obs_overhead
        #: (zero cost when the knob is off — the off path has no
        #: per-step branch at all).
        "checkpoint_overhead": {
            "every": CHECKPOINT_EVERY,
            "plain": round(fast, 1),
            "checkpointed": round(checkpointed, 1),
            "overhead": round(max(0.0, 1.0 - checkpointed / fast), 4),
        },
        #: Lean-path time attribution, from one profiled fast-path run
        #: (fractions of total kernel time, keyed by PHASES order).
        "phase_time_shares": phase_shares,
        #: RunTelemetry totals of the same fast-path configuration.
        "lean_counters": lean_counters,
        "sweep_8_seeds_seconds": {
            "serial": round(_sweep_seconds(1, repeats), 3),
            f"workers_{workers}": round(_sweep_seconds(workers, repeats), 3),
        },
        #: Same 8-seed sweep through the campaign orchestrator with a
        #: durable event store; the pooled figure uses a pre-started
        #: persistent pool (steady-state campaign cost).
        "campaign_pool": {
            "serial": round(_campaign_sweep_seconds(1, repeats), 3),
            f"workers_{workers}": round(
                _campaign_sweep_seconds(workers, repeats), 3
            ),
        },
    }
    if include_large:
        large = _best_rate(_run_large_once, repeats)
        rates["soa_large"] = round(large, 1)
        backend["soa_large"] = "soa"
        record["large_workload"] = (
            f"random k={LARGE_K} on 2-d mesh n={LARGE_SIDE}, seed {SEED}"
        )
    return record


#: Throughput rows the 5% regression guard watches.  A row only
#: participates once both the previous trajectory entry and the new
#: record carry it, so the guard extends itself to new rows (``soa``,
#: ``soa_large``) as soon as a baseline exists.
GUARDED_ROWS = ("fast_path", "soa", "soa_large")

#: Wall-time tables the guard also watches (lower is better).  Every
#: variant present in both the previous entry and the new record
#: participates, so the serial *and* parallel sweep figures — and the
#: campaign-orchestrator equivalents — are covered as soon as a
#: baseline entry carries them.
GUARDED_SECONDS_TABLES = ("sweep_8_seeds_seconds", "campaign_pool")


def check_lean_regression(
    record: dict, path: str = TRAJECTORY, tolerance: float = 0.05
) -> str:
    """Compare the new record's lean throughput to the last entry.

    Returns an empty string when every guarded figure — packet-steps/s
    for the object fast path and soa rows (higher is better), wall
    seconds for the 8-seed sweep and campaign tables (lower is better)
    — is within ``tolerance`` of the most recent record in the
    trajectory file, and a human-readable warning otherwise.  The
    ``obs_overhead`` and ``checkpoint_overhead`` figures are guarded
    against the same-run plain row rather than history (all three
    throughputs come from this record), so they fire even on a fresh
    trajectory file.  The guard is advisory
    by default because absolute timings vary across machines; same-host
    CI promotes it to a failure with ``--fail-on-regression``.
    """
    warnings = []
    overhead = (record.get("obs_overhead") or {}).get("overhead")
    if overhead is not None and overhead > tolerance:
        warnings.append(
            f"obs overhead regression: summary-fed recorders cost "
            f"{overhead:.1%} of lean throughput "
            f"({record['obs_overhead']['observed']:.1f} vs "
            f"{record['obs_overhead']['plain']:.1f} packet-steps/s); "
            f"tolerance is {tolerance:.0%}"
        )
    ck_overhead = (record.get("checkpoint_overhead") or {}).get("overhead")
    if ck_overhead is not None and ck_overhead > tolerance:
        warnings.append(
            f"checkpoint overhead regression: checkpoint_every="
            f"{record['checkpoint_overhead']['every']} costs "
            f"{ck_overhead:.1%} of lean throughput "
            f"({record['checkpoint_overhead']['checkpointed']:.1f} vs "
            f"{record['checkpoint_overhead']['plain']:.1f} "
            f"packet-steps/s); tolerance is {tolerance:.0%}"
        )
    history = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read().strip()
        if content:
            history = json.loads(content)
    if not history:
        return "; ".join(warnings)
    for row in GUARDED_ROWS:
        previous = history[-1]["packet_steps_per_sec"].get(row)
        current = record["packet_steps_per_sec"].get(row)
        if not previous or not current:
            continue
        if current >= previous * (1.0 - tolerance):
            continue
        warnings.append(
            f"lean throughput regression: {row} {current:.1f} "
            f"packet-steps/s is {1.0 - current / previous:.1%} below the "
            f"previous entry ({previous:.1f}, {history[-1]['git_sha']}); "
            f"tolerance is {tolerance:.0%}"
        )
    for table in GUARDED_SECONDS_TABLES:
        previous_table = history[-1].get(table) or {}
        current_table = record.get(table) or {}
        for row in sorted(set(previous_table) & set(current_table)):
            previous = previous_table[row]
            current = current_table[row]
            if not previous or not current:
                continue
            if current <= previous * (1.0 + tolerance):
                continue
            warnings.append(
                f"sweep wall-time regression: {table}[{row}] "
                f"{current:.3f}s is {current / previous - 1.0:.1%} above "
                f"the previous entry ({previous:.3f}s, "
                f"{history[-1]['git_sha']}); tolerance is {tolerance:.0%}"
            )
    return "; ".join(warnings)


def append_record(record: dict, path: str = TRAJECTORY) -> None:
    history = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read().strip()
        if content:  # tolerate a pre-created empty file (e.g. mktemp)
            history = json.loads(content)
    history.append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, (os.cpu_count() or 1)),
        help="worker count for the parallel-sweep sample",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per config"
    )
    parser.add_argument(
        "--output", default=TRAJECTORY, help="trajectory file to append to"
    )
    parser.add_argument(
        "--fail-on-regression",
        action="store_true",
        help="exit nonzero when lean throughput drops more than 5%% "
        "below the previous trajectory entry (advisory warning "
        "otherwise)",
    )
    parser.add_argument(
        "--skip-large",
        action="store_true",
        help=f"skip the n={LARGE_SIDE}, k={LARGE_K} soa row (CI smoke "
        "runs use this to stay fast)",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.05,
        help="allowed fractional throughput drop before the regression "
        "guard fires (CI smoke loosens this: short reference runs are "
        "noisy on shared runners)",
    )
    args = parser.parse_args(argv)
    record = build_record(
        args.workers, args.repeats, include_large=not args.skip_large
    )
    warning = check_lean_regression(
        record, args.output, tolerance=args.tolerance
    )
    append_record(record, args.output)
    print(json.dumps(record, indent=2))
    print(f"appended to {args.output}")
    if warning:
        print(f"WARNING: {warning}", file=sys.stderr)
        if args.fail_on_regression:
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
