"""Append an engine-throughput record to the BENCH_engine.json trajectory.

Runs the same configurations as ``bench_engine_perf.py`` (strict
validation, instrumented capacity-only, lean fast path) plus a small
parallel-harness sweep, computes packet-steps per second for each, and
appends one JSON record to ``BENCH_engine.json`` at the repository
root.  The file is a list of records, one per invocation, so future
PRs can diff simulator throughput against history and catch perf
regressions::

    PYTHONPATH=src python benchmarks/bench_report.py [--workers N] [--repeats R]

Not a pytest benchmark (no ``test_`` functions): pytest-benchmark
timings are great for relative CI comparisons but awkward to append to
a cross-run trajectory file.
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from functools import partial

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
)

from repro.algorithms import (  # noqa: E402
    DimensionOrderPolicy,
    RestrictedPriorityPolicy,
)
from repro.analysis.runner import run_case  # noqa: E402
from repro.core.buffered_engine import BufferedEngine  # noqa: E402
from repro.core.engine import HotPotatoEngine  # noqa: E402
from repro.core.validation import validators_for  # noqa: E402
from repro.dynamic import (  # noqa: E402
    BernoulliTraffic,
    BufferedDynamicEngine,
    DynamicEngine,
)
from repro.mesh.topology import Mesh  # noqa: E402
from repro.workloads import random_many_to_many  # noqa: E402

TRAJECTORY = os.path.join(
    os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
    "BENCH_engine.json",
)

SIDE = 16
K = 256
SEED = 77


def _run_once(strict: bool, fast_path) -> tuple:
    """One full simulation; returns (elapsed seconds, packet-steps)."""
    mesh = Mesh(2, SIDE)
    problem = random_many_to_many(mesh, k=K, seed=SEED)
    policy = RestrictedPriorityPolicy()
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=SEED,
        validators=validators_for(policy, strict=strict),
        fast_path=fast_path,
    )
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert result.completed
    packet_steps = sum(m.in_flight for m in result.step_metrics)
    return elapsed, packet_steps


def _throughput(strict: bool, fast_path, repeats: int) -> float:
    """Best-of-N packet-steps/sec (best-of controls scheduler noise)."""
    best = None
    for _ in range(repeats):
        elapsed, packet_steps = _run_once(strict, fast_path)
        rate = packet_steps / elapsed
        if best is None or rate > best:
            best = rate
    return best


def _run_buffered_once() -> tuple:
    """One store-and-forward batch run (lean kernel loop)."""
    mesh = Mesh(2, SIDE)
    problem = random_many_to_many(mesh, k=K, seed=SEED)
    engine = BufferedEngine(problem, DimensionOrderPolicy(), seed=SEED)
    start = time.perf_counter()
    result = engine.run()
    elapsed = time.perf_counter() - start
    assert result.completed
    packet_steps = sum(m.in_flight for m in result.step_metrics)
    return elapsed, packet_steps


DYNAMIC_STEPS = 400
DYNAMIC_WARMUP = 50
DYNAMIC_RATE = 0.05


def _run_dynamic_once(buffered: bool) -> tuple:
    """One continuous-traffic run (lean kernel loop, no observers)."""
    mesh = Mesh(2, SIDE)
    if buffered:
        engine = BufferedDynamicEngine(
            mesh,
            DimensionOrderPolicy(),
            BernoulliTraffic(DYNAMIC_RATE),
            seed=SEED,
            warmup=DYNAMIC_WARMUP,
        )
    else:
        engine = DynamicEngine(
            mesh,
            RestrictedPriorityPolicy(),
            BernoulliTraffic(DYNAMIC_RATE),
            seed=SEED,
            warmup=DYNAMIC_WARMUP,
        )
    start = time.perf_counter()
    stats = engine.run(DYNAMIC_STEPS)
    elapsed = time.perf_counter() - start
    packet_steps = sum(s.in_flight for s in stats.samples)
    return elapsed, packet_steps


def _best_rate(run_once, repeats: int) -> float:
    """Best-of-N packet-steps/sec for a zero-argument runner."""
    best = None
    for _ in range(repeats):
        elapsed, packet_steps = run_once()
        rate = packet_steps / elapsed
        if best is None or rate > best:
            best = rate
    return best


def _sweep_problem(mesh, k, seed):
    return random_many_to_many(mesh, k=k, seed=seed)


def _sweep_seconds(workers: int, repeats: int) -> float:
    """Wall time of a 8-seed replicate sweep through the harness."""
    mesh = Mesh(2, SIDE)
    best = None
    for _ in range(repeats):
        start = time.perf_counter()
        run_case(
            partial(_sweep_problem, mesh, K),
            RestrictedPriorityPolicy,
            seeds=range(8),
            strict_validation=False,
            workers=workers,
        )
        elapsed = time.perf_counter() - start
        if best is None or elapsed < best:
            best = elapsed
    return best


def _git_sha() -> str:
    """Short commit hash of the tree being measured, ``"unknown"`` when
    the checkout has no git (tarball installs, stripped CI caches)."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=os.path.dirname(os.path.abspath(__file__)),
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.TimeoutExpired):
        return "unknown"
    if out.returncode != 0:
        return "unknown"
    sha = out.stdout.strip()
    if subprocess.run(
        ["git", "diff", "--quiet", "HEAD"],
        cwd=os.path.dirname(os.path.abspath(__file__)),
        capture_output=True,
    ).returncode:
        sha += "-dirty"
    return sha


def build_record(workers: int, repeats: int) -> dict:
    strict = _throughput(True, None, repeats)
    instrumented = _throughput(False, False, repeats)
    fast = _throughput(False, True, repeats)
    buffered = _best_rate(_run_buffered_once, repeats)
    dynamic = _best_rate(partial(_run_dynamic_once, False), repeats)
    buffered_dynamic = _best_rate(partial(_run_dynamic_once, True), repeats)
    record = {
        "timestamp": time.strftime("%Y-%m-%dT%H:%M:%S%z"),
        "python": platform.python_version(),
        "git_sha": _git_sha(),
        "machine": platform.machine(),
        "cpus": os.cpu_count(),
        "workload": f"random k={K} on 2-d mesh n={SIDE}, seed {SEED}",
        "policy": "restricted-priority",
        "packet_steps_per_sec": {
            "strict_validation": round(strict, 1),
            "instrumented": round(instrumented, 1),
            "fast_path": round(fast, 1),
            "buffered_batch": round(buffered, 1),
            "dynamic": round(dynamic, 1),
            "buffered_dynamic": round(buffered_dynamic, 1),
        },
        "dynamic_workload": (
            f"bernoulli p={DYNAMIC_RATE} on 2-d mesh n={SIDE}, "
            f"{DYNAMIC_STEPS} steps, warmup {DYNAMIC_WARMUP}, seed {SEED}"
        ),
        "fast_over_instrumented": round(fast / instrumented, 2),
        "sweep_8_seeds_seconds": {
            "serial": round(_sweep_seconds(1, repeats), 3),
            f"workers_{workers}": round(_sweep_seconds(workers, repeats), 3),
        },
    }
    return record


def append_record(record: dict, path: str = TRAJECTORY) -> None:
    history = []
    if os.path.exists(path):
        with open(path, "r", encoding="utf-8") as handle:
            content = handle.read().strip()
        if content:  # tolerate a pre-created empty file (e.g. mktemp)
            history = json.loads(content)
    history.append(record)
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(history, handle, indent=2)
        handle.write("\n")


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--workers",
        type=int,
        default=max(2, (os.cpu_count() or 1)),
        help="worker count for the parallel-sweep sample",
    )
    parser.add_argument(
        "--repeats", type=int, default=3, help="best-of repeats per config"
    )
    parser.add_argument(
        "--output", default=TRAJECTORY, help="trajectory file to append to"
    )
    args = parser.parse_args(argv)
    record = build_record(args.workers, args.repeats)
    append_record(record, args.output)
    print(json.dumps(record, indent=2))
    print(f"appended to {args.output}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
