"""E4 — Corollary 10: Phi(t+1) <= Phi(t) - G(t), step by step.

Tracks the global potential along a congested run and verifies the
per-step drop dominates the good-node count, printing the decay series
the paper's analysis predicts (monotone, with drop at least G(t)).
"""

from bench_util import emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.restricted import RestrictedPotential
from repro.viz.timeseries import labeled_sparkline
from repro.workloads import single_target


def _run():
    mesh = Mesh(2, 16)
    problem = single_target(mesh, k=120, seed=5)
    tracker = RestrictedPotential()
    engine = HotPotatoEngine(
        problem,
        RestrictedPriorityPolicy(),
        seed=5,
        observers=[tracker],
        record_steps=True,
    )
    result = engine.run()
    assert result.completed
    series = []
    violations = 0
    for metrics, before, after in zip(
        result.step_metrics,
        tracker.phi_history,
        tracker.phi_history[1:],
    ):
        drop = before - after
        if after > before - metrics.g + 1e-9:
            violations += 1
        series.append((metrics.step, before, metrics.g, metrics.b, drop))
    return tracker, series, violations


def test_e4_corollary10(benchmark):
    tracker, series, violations = once(benchmark, _run)
    stride = max(1, len(series) // 20)
    rows = [
        [step, phi, g, b, drop, drop - g]
        for step, phi, g, b, drop in series[::stride]
    ]
    emit_table(
        "E4",
        "Corollary 10 — per-step potential drop vs G(t) (hot spot, n=16)",
        ["t", "Phi(t)", "G(t)", "B(t)", "drop", "slack"],
        rows,
        notes=(
            f"violations: {violations} over {len(series)} steps; "
            f"monotone: {tracker.is_monotone_nonincreasing()}\n"
            + labeled_sparkline("Phi(t)", tracker.phi_history)
        ),
    )
    assert violations == 0
    assert tracker.is_monotone_nonincreasing()
