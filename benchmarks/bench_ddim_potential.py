"""E20 (extension) — why the d-dimensional potential is hard.

The paper defers its d-dimensional potential to [BHS]/[Hal] ("fairly
complex technical details", unavailable).  This experiment measures
exactly where naive constructions break, making the difficulty
concrete:

* the 2-D rules lifted verbatim satisfy Property 8 perfectly in 2-D
  (they *are* the paper's function) but violate it on 3-D hot spots —
  deflections of multi-good-direction packets go uncompensated;
* the simplest repair (every deflector pays its victim's compensation
  ``2/g``) removes part of the violations but not all: without the
  switch rule's chain inheritance — which has no obvious analogue
  across scarcity classes — spare budgets deplete.
"""

from bench_util import emit_table, once

from repro.algorithms import (
    FewestGoodDirectionsPolicy,
    RestrictedPriorityPolicy,
)
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.ddim import NaiveLiftedPotential, PaidDeflectionPotential
from repro.potential.property8 import check_property8, minimum_margin
from repro.workloads import random_many_to_many, saturated_load, single_target


def _census(dimension, side, workloads, policy_factory):
    rows = []
    for wl_label, problem in workloads:
        for tracker_label, tracker_cls in (
            ("naive 2-D lift", NaiveLiftedPotential),
            ("paid deflections", PaidDeflectionPotential),
        ):
            tracker = tracker_cls()
            engine = HotPotatoEngine(
                problem,
                policy_factory(),
                seed=3,
                observers=[tracker],
            )
            result = engine.run()
            assert result.completed
            node_steps = sum(len(d) for d in tracker.node_drops)
            violations = check_property8(tracker.node_drops, dimension)
            rows.append(
                [
                    f"{dimension}-D",
                    wl_label,
                    tracker_label,
                    node_steps,
                    len(violations),
                    minimum_margin(tracker.node_drops, dimension),
                    tracker.is_monotone_nonincreasing(),
                ]
            )
    return rows


def _run():
    mesh2 = Mesh(2, 16)
    rows = _census(
        2,
        16,
        [
            ("hotspot", single_target(mesh2, k=100, seed=2)),
            ("saturated", saturated_load(mesh2, per_node=2, seed=3)),
        ],
        RestrictedPriorityPolicy,
    )
    mesh3 = Mesh(3, 5)
    rows += _census(
        3,
        5,
        [
            ("hotspot", single_target(mesh3, k=80, seed=2)),
            ("random-120", random_many_to_many(mesh3, k=120, seed=1)),
            ("saturated", saturated_load(mesh3, per_node=2, seed=3)),
        ],
        FewestGoodDirectionsPolicy,
    )
    return rows


def test_e20_ddim_potential_census(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E20",
        "d-dimensional potential lifts — Property 8 violation census",
        [
            "mesh",
            "workload",
            "potential",
            "node-steps",
            "P8 violations",
            "min margin",
            "monotone",
        ],
        rows,
        notes=(
            "2-D rows: the lift is the paper's own function — zero "
            "violations.  3-D hot spots break the naive lift; paying "
            "deflectors helps but cannot close the gap without the "
            "[BHS] chain machinery.  This measures, rather than "
            "asserts, why Section 5 calls its details 'fairly complex'."
        ),
    )
    by = {(r[0], r[1], r[2]): r[4] for r in rows}
    # 2-D: both lifts reduce to the paper's function: clean.
    assert by[("2-D", "hotspot", "naive 2-D lift")] == 0
    assert by[("2-D", "saturated", "naive 2-D lift")] == 0
    # 3-D hot spot: naive fails; payment strictly improves.
    naive3 = by[("3-D", "hotspot", "naive 2-D lift")]
    paid3 = by[("3-D", "hotspot", "paid deflections")]
    assert naive3 > 0
    assert paid3 < naive3
