"""E9 — Section 5: the d-dimensional class and its bound.

Runs the fewest-good-directions (max-advance) policy on meshes of
dimension 2, 3, and 4 and reports measured routing times against the
Section 5 bound 4^(d+1-1/d) * d^(1-1/d) * k^(1/d) * n^(d-1), plus the
practice-vs-bound inversion the paper's conclusions discuss: more
dimensions route *faster* although the bound *worsens*.
"""

from bench_util import emit_table, once

from repro.algorithms import FewestGoodDirectionsPolicy
from repro.analysis.stats import summarize
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import section5_bound
from repro.workloads import random_many_to_many

CASES = [
    (2, 8),
    (2, 16),
    (3, 4),
    (3, 6),
    (4, 3),
]
SEEDS = (0, 1, 2)


def _run():
    rows = []
    for dimension, side in CASES:
        mesh = Mesh(dimension, side)
        for load in (0.5, 1.0):
            k = max(1, int(load * mesh.num_nodes))
            times = []
            for seed in SEEDS:
                problem = random_many_to_many(mesh, k=k, seed=seed)
                result = HotPotatoEngine(
                    problem, FewestGoodDirectionsPolicy(), seed=seed
                ).run()
                assert result.completed
                times.append(result.total_steps)
            summary = summarize(times)
            bound = section5_bound(dimension, side, k)
            rows.append(
                [
                    dimension,
                    side,
                    k,
                    summary.mean,
                    summary.maximum,
                    bound,
                    summary.maximum / bound,
                ]
            )
    return rows


def test_e9_section5_bound(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E9",
        "Section 5 — d-dimensional meshes vs 4^(d+1-1/d) d^(1-1/d) k^(1/d) n^(d-1)",
        ["d", "n", "k", "T mean", "T max", "bound", "max/bound"],
        rows,
        notes=(
            "Same node count, same k: 3-D routes faster than 2-D in "
            "practice while its analytic bound is larger — the "
            "Section 6 open-problem gap, measured."
        ),
    )
    assert all(row[6] <= 1.0 for row in rows)
    # The practice-vs-bound inversion at 64 nodes (8x8 vs 4^3).
    t2 = [r for r in rows if r[0] == 2 and r[1] == 8 and r[2] == 64]
    t3 = [r for r in rows if r[0] == 3 and r[1] == 4 and r[2] == 64]
    assert t3[0][3] <= t2[0][3] + 2
    assert section5_bound(3, 4, 64) > section5_bound(2, 8, 64)
