"""E16 (extension) — the bounds landscape in k (Section 6's admission).

Section 6: "The dependence of our result on the number of packets in
the system is suboptimal.  A natural open problem is to improve the
bound for sparse requests."  This experiment maps that statement:
for a fixed mesh it tabulates, across k,

* Theorem 20's whole-class bound ``8*sqrt(2)*n*sqrt(k)``;
* the per-algorithm linear bounds the community later proved
  (``2k + d_max`` for fixed priorities, [BRS]/[BTS], Section 6.1) and
  the earlier Brassil–Cruz ``diam + P + 2(k-1)`` for destination
  order;
* measured times of the corresponding algorithms.

Findings this experiment certifies: (1) the analytic crossover where
``sqrt(k)`` would beat ``2k`` sits at ``k = 32 n^2`` — **eight times
the mesh's injection capacity** ``4n^2``, so within feasible loads the
linear per-algorithm bounds are always numerically tighter, which is
exactly the suboptimality the paper concedes; (2) Theorem 20 is the
only bound here that covers *every* algorithm of its class rather than
one priority scheme; (3) all bounds hold on their algorithms.
"""

from bench_util import emit_table, once

from repro.algorithms import (
    DestinationOrderPolicy,
    FixedPriorityPolicy,
    RestrictedPriorityPolicy,
    brassil_cruz_time_bound,
    snake_walk_length,
)
from repro.analysis.stats import summarize
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import theorem20_bound
from repro.workloads import random_many_to_many
from repro.workloads.random_uniform import max_packets

SIDE = 16
KS = (2, 8, 32, 128, 512, 896)
SEEDS = (0, 1, 2)


def _run():
    mesh = Mesh(2, SIDE)
    assert max(KS) <= max_packets(mesh)
    rows = []
    for k in KS:
        t_restricted, t_fixed, t_dest = [], [], []
        d_max = 0
        walk = 0
        for seed in SEEDS:
            problem = random_many_to_many(mesh, k=k, seed=seed)
            d_max = max(d_max, problem.d_max)
            walk = max(
                walk,
                snake_walk_length(
                    mesh, [r.destination for r in problem.requests]
                ),
            )
            t_restricted.append(
                HotPotatoEngine(
                    problem, RestrictedPriorityPolicy(), seed=seed
                ).run().total_steps
            )
            t_fixed.append(
                HotPotatoEngine(
                    problem, FixedPriorityPolicy(), seed=seed
                ).run().total_steps
            )
            t_dest.append(
                HotPotatoEngine(
                    problem, DestinationOrderPolicy(), seed=seed
                ).run().total_steps
            )
        rows.append(
            [
                k,
                summarize(t_restricted).mean,
                theorem20_bound(SIDE, k),
                max(t_fixed),
                2 * k + d_max,
                max(t_dest),
                brassil_cruz_time_bound(mesh.diameter, walk, k),
            ]
        )
    return rows


def test_e16_bounds_landscape(benchmark):
    rows = once(benchmark, _run)
    capacity = max_packets(Mesh(2, SIDE))
    crossover = 32 * SIDE * SIDE
    emit_table(
        "E16",
        f"Bounds landscape in k on the {SIDE}x{SIDE} mesh",
        [
            "k",
            "T restr (mean)",
            "Thm20 (class)",
            "T fixed (max)",
            "2k+dmax [BRS]",
            "T dest (max)",
            "BC diam+P+2(k-1)",
        ],
        rows,
        notes=(
            f"sqrt(k)-vs-2k crossover at k = 32n^2 = {crossover}, but "
            f"injection capacity is only {capacity}: within feasible "
            "loads the linear per-algorithm bounds are numerically "
            "tighter — the Section 6 'suboptimal in k' admission, "
            "measured.  Theorem 20 remains the only *whole-class* "
            "bound in the table."
        ),
    )
    for k, t_r, thm20, t_f, linear, t_d, bc in rows:
        assert t_r <= thm20
        assert t_f <= linear
        assert t_d <= bc
        # The feasible-range fact the docstring states:
        assert linear < thm20
    assert crossover > capacity
