"""E2 — Theorem 17: the generic potential bound, instantiated per run.

For each run, measures Phi(0) and reports the two forms of the generic
bound: the worst case ``(4d)^(1-1/d) * k^(1/d) * M`` and the
instance-specific phase-decay form ``(2d)^((d-1)/d) * Phi(0)^(1/d) *
(2M)^((d-1)/d)`` from the Theorem 17 proof.  Both must dominate the
measured routing time; the instance form is the tighter of the two.
"""

from bench_util import emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.bounds import (
    phase_decay_bound,
    theorem17_bound,
)
from repro.potential.restricted import RestrictedPotential
from repro.workloads import (
    quadrant_flood,
    random_many_to_many,
    random_permutation,
    single_target,
)


def _cases():
    mesh = Mesh(2, 16)
    return [
        ("random-64", random_many_to_many(mesh, k=64, seed=0)),
        ("random-256", random_many_to_many(mesh, k=256, seed=1)),
        ("hotspot-100", single_target(mesh, k=100, seed=2)),
        ("flood", quadrant_flood(mesh, seed=3)),
        ("permutation", random_permutation(mesh, seed=4)),
    ]


def _run():
    rows = []
    for label, problem in _cases():
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=7,
            observers=[tracker],
        )
        result = engine.run()
        assert result.completed
        generic = theorem17_bound(2, problem.k, tracker.M)
        instance = phase_decay_bound(tracker.initial_total, tracker.M, 2)
        rows.append(
            [
                label,
                problem.k,
                tracker.initial_total,
                result.total_steps,
                instance,
                generic,
                result.total_steps / instance,
            ]
        )
    return rows


def test_e2_theorem17_bounds(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E2",
        "Theorem 17 — measured T vs instance and worst-case bounds",
        ["workload", "k", "Phi(0)", "T", "inst bound", "generic bound", "T/inst"],
        rows,
        notes="instance bound = phase-decay form with measured Phi(0); "
        "generic = (4d)^(1-1/d) k^(1/d) M.",
    )
    for row in rows:
        assert row[3] <= row[4] <= row[5] + 1e-9
