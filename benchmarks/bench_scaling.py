"""E13 — scaling shape: fitted exponents of T(n, k).

Sweeps mesh side and batch size, fits T = c * n^a * k^b in log space,
and compares against the Theorem 20 bound shape (a=1, b=0.5).  The
measured exponents quantify the gap between the worst-case analysis
and typical-load behavior (measured times scale roughly like the
trivial distance term, far below the bound's k-dependence).
"""

from functools import partial

from bench_util import bench_workers, emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.analysis.regression import fit_power_law, fit_two_factor
from repro.analysis.runner import run_case
from repro.analysis.stats import summarize
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many

SIDES = (8, 12, 16, 24)
LOADS = (0.25, 0.5, 1.0, 2.0)
SEEDS = (0, 1)


def _problem(mesh, k, seed):
    return random_many_to_many(mesh, k=k, seed=seed)


def _run():
    rows = []
    ns, ks, ts = [], [], []
    for side in SIDES:
        mesh = Mesh(2, side)
        for load in LOADS:
            k = max(1, int(load * mesh.num_nodes))
            points = run_case(
                partial(_problem, mesh, k),
                RestrictedPriorityPolicy,
                SEEDS,
                workers=bench_workers(),
            )
            times = []
            for point in points:
                assert point.result.completed
                times.append(point.result.total_steps)
            mean = summarize(times).mean
            rows.append([side, k, mean])
            ns.append(side)
            ks.append(k)
            ts.append(mean)
    two_factor = fit_two_factor(ns, ks, ts)
    # Fixed-n slice for the k exponent alone (largest mesh).
    slice_k = [(k, t) for n, k, t in zip(ns, ks, ts) if n == SIDES[-1]]
    k_fit = fit_power_law([k for k, _ in slice_k], [t for _, t in slice_k])
    return rows, two_factor, k_fit


def test_e13_scaling_exponents(benchmark):
    rows, two_factor, k_fit = once(benchmark, _run)
    emit_table(
        "E13",
        "Scaling sweep — mean T over (n, k)",
        ["n", "k", "T mean"],
        rows,
        notes=(
            f"two-factor fit: {two_factor}\n"
            f"k-exponent at n={SIDES[-1]}: {k_fit}\n"
            "Theorem 20 bound shape: T = 11.3 * n^1.0 * k^0.5 — the "
            "measured exponents sit below it on random loads (the "
            "n-term dominates; k enters only through congestion)."
        ),
    )
    # Shape checks: time grows ~linearly in n, sublinearly in k, and
    # strictly slower than the bound's k^0.5 + its constant.
    assert 0.7 <= two_factor.n_exponent <= 1.4
    assert 0.0 <= two_factor.k_exponent <= 0.5
    assert two_factor.predict(16, 256) <= 11.3 * 16 * 16
