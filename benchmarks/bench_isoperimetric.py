"""E6 — Claim 13: the isoperimetric inequality on unit-cube volumes.

Measures ``surface / (2d * V^((d-1)/d))`` over thousands of random
volumes per dimension (compact blobs, stringy blobs, scatters, and the
extremal cubes).  Claim 13 says the ratio is >= 1 everywhere; cubes
achieve exactly 1.
"""

import random

from bench_util import emit_table, once

from repro.mesh.geometry import box_volume
from repro.potential.isoperimetric import (
    claim_13_ratio,
    random_blob,
    random_scatter,
)

DIMENSIONS = (2, 3, 4)
TRIALS = 300


def _run():
    rows = []
    rng = random.Random(99)
    for dimension in DIMENSIONS:
        for shape, generator in (
            ("compact blob", lambda d, s: random_blob(d, s, rng, spread=1.0)),
            ("stringy blob", lambda d, s: random_blob(d, s, rng, spread=0.1)),
            ("scatter", lambda d, s: random_scatter(d, min(s, 5**d), 5, rng)),
        ):
            ratios = []
            for _ in range(TRIALS):
                size = rng.randint(1, 60)
                ratios.append(claim_13_ratio(generator(dimension, size)))
            rows.append(
                [dimension, shape, TRIALS, min(ratios), max(ratios)]
            )
        # Extremal case: perfect cubes meet the bound with equality.
        side = {2: 6, 3: 4, 4: 3}[dimension]
        cube = box_volume((0,) * dimension, (side,) * dimension)
        rows.append(
            [dimension, f"cube {side}^{dimension}", 1, claim_13_ratio(cube), claim_13_ratio(cube)]
        )
    return rows


def test_e6_claim13(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E6",
        "Claim 13 — surface(V) / (2d * V^((d-1)/d)) over random volumes",
        ["d", "shape", "trials", "min ratio", "max ratio"],
        rows,
        notes="Claim 13 <=> min ratio >= 1; cubes sit exactly at 1.",
    )
    for row in rows:
        assert row[3] >= 1.0 - 1e-9
        if str(row[1]).startswith("cube"):
            assert abs(row[3] - 1.0) < 1e-9
