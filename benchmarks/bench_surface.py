"""E5 + E7 — Lemmas 12 and 14: surface arcs of the bad volume.

On workloads that build real bad-node volumes (hot spot, quadrant
flood, saturated load) this measures, per step:

* ``F(t)`` — surface arcs by Definition 11 (cross-checked against the
  per-class volume surfaces of the geometric interpretation);
* Lemma 14 — ``F(t) >= (2d)^(1/d) * B(t)^((d-1)/d)``;
* Lemma 12 — ``Phi(t+2) <= Phi(t) - F(t)``.
"""

from bench_util import emit_table, once

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.mesh.topology import Mesh
from repro.potential.classification import classify_nodes
from repro.potential.restricted import RestrictedPotential
from repro.potential.surface import (
    count_surface_arcs,
    count_surface_arcs_via_volumes,
    lemma_14_lower_bound,
)
from repro.workloads import quadrant_flood, saturated_load, single_target


def _cases():
    mesh = Mesh(2, 16)
    return [
        ("hotspot-120", single_target(mesh, k=120, seed=6)),
        ("flood", quadrant_flood(mesh, seed=7)),
        ("saturated-3x", saturated_load(mesh, per_node=3, seed=8)),
    ]


def _run():
    rows = []
    for label, problem in _cases():
        mesh = problem.mesh
        tracker = RestrictedPotential()
        engine = HotPotatoEngine(
            problem,
            RestrictedPriorityPolicy(),
            seed=13,
            observers=[tracker],
            record_steps=True,
        )
        result = engine.run()
        assert result.completed
        phi = tracker.phi_history
        max_f = max_b = 0
        lemma12_viol = lemma14_viol = mismatch = 0
        min_l14_margin = float("inf")
        for index, record in enumerate(result.records):
            classification = classify_nodes(record, 2)
            f_t = count_surface_arcs(mesh, classification.bad_nodes)
            if f_t != count_surface_arcs_via_volumes(
                classification.bad_nodes
            ):
                mismatch += 1
            b_t = classification.b
            max_f = max(max_f, f_t)
            max_b = max(max_b, b_t)
            bound = lemma_14_lower_bound(b_t, 2)
            min_l14_margin = min(min_l14_margin, f_t - bound)
            if f_t < bound - 1e-9:
                lemma14_viol += 1
            later = min(index + 2, len(phi) - 1)
            if phi[later] > phi[index] - f_t + 1e-9:
                lemma12_viol += 1
        rows.append(
            [
                label,
                len(result.records),
                max_b,
                max_f,
                mismatch,
                lemma14_viol,
                min_l14_margin,
                lemma12_viol,
            ]
        )
    return rows


def test_e5_e7_surface_lemmas(benchmark):
    rows = once(benchmark, _run)
    emit_table(
        "E5_E7",
        "Lemmas 12 & 14 — surface arcs of the bad volume",
        [
            "workload",
            "steps",
            "max B(t)",
            "max F(t)",
            "Def11-vs-volume mismatches",
            "L14 violations",
            "L14 min margin",
            "L12 violations",
        ],
        rows,
        notes=(
            "Def11-vs-volume mismatches = disagreements between the "
            "Definition 11 count and the equivalence-class volume "
            "surfaces (geometric interpretation); must be 0."
        ),
    )
    for row in rows:
        assert row[4] == 0 and row[5] == 0 and row[7] == 0
        assert row[3] > 0  # the workloads actually built bad volumes
