"""Engine micro-benchmarks: simulator throughput.

Not a paper experiment — these measure the reproduction itself
(packet-steps per second of the hot-potato engine with and without
strict validation, and with the lean fast-path loop on and off), so
regressions in the simulator's performance are visible in CI.

``benchmarks/bench_report.py`` runs the same configurations outside
pytest and appends packet-steps/sec to the ``BENCH_engine.json``
trajectory at the repo root.
"""

from repro.algorithms import RestrictedPriorityPolicy
from repro.core.engine import HotPotatoEngine
from repro.core.validation import validators_for
from repro.mesh.topology import Mesh
from repro.workloads import random_many_to_many


def _simulate(strict, fast_path=None):
    mesh = Mesh(2, 16)
    problem = random_many_to_many(mesh, k=256, seed=77)
    policy = RestrictedPriorityPolicy()
    engine = HotPotatoEngine(
        problem,
        policy,
        seed=77,
        validators=validators_for(policy, strict=strict),
        fast_path=fast_path,
    )
    result = engine.run()
    assert result.completed
    return result


def test_perf_engine_strict_validation(benchmark):
    """The fully validated loop (greedy + restricted-priority checks)."""
    result = benchmark(lambda: _simulate(strict=True))
    assert result.completed


def test_perf_engine_fast_path(benchmark):
    """Capacity-only validation on the lean loop (fast_path asserts it)."""
    result = benchmark(lambda: _simulate(strict=False, fast_path=True))
    assert result.completed


def test_perf_engine_instrumented(benchmark):
    """Capacity-only validation on the instrumented loop.

    The gap between this and ``test_perf_engine_fast_path`` is exactly
    what the fast path buys (same validators, same results).
    """
    result = benchmark(lambda: _simulate(strict=False, fast_path=False))
    assert result.completed


def test_perf_step_cost_scales_with_in_flight(benchmark):
    """One engine step on a saturated 32x32 mesh (2048 packets)."""
    mesh = Mesh(2, 32)
    problem = random_many_to_many(mesh, k=2048, seed=78)
    policy = RestrictedPriorityPolicy()

    def run_once():
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=78,
            validators=validators_for(policy, strict=False),
        )
        engine.step()
        return engine

    engine = benchmark(run_once)
    assert engine.time == 1
