#!/usr/bin/env python3
"""Continuous traffic: the load-latency curve of a deflection network.

The paper's motivating systems (multihop lightwave networks, the
Manhattan Street network, deflection multiprocessor interconnects) run
with continuous packet injection.  This example sweeps the offered
load on a 12x12 mesh and prints the classic deflection-routing curve:
latency stays near the network diameter until the load approaches
capacity, then source queues blow up — with the deflection rate rising
smoothly in between.

Run:  python examples/network_traffic.py
"""

from repro.algorithms import RandomizedGreedyPolicy, RestrictedPriorityPolicy
from repro.analysis.tables import format_table
from repro.dynamic import BernoulliTraffic, DynamicEngine
from repro.mesh.topology import Mesh

RATES = (0.02, 0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.40)
HORIZON = 1200
WARMUP = 300


def sweep(policy_factory, label):
    mesh = Mesh(dimension=2, side=12)
    rows = []
    for rate in RATES:
        engine = DynamicEngine(
            mesh,
            policy_factory(),
            BernoulliTraffic(rate),
            seed=7,
            warmup=WARMUP,
        )
        stats = engine.run(HORIZON)
        rows.append(
            [
                rate,
                stats.mean_latency,
                stats.latency_percentile(99),
                stats.deflection_rate,
                stats.throughput,
                stats.max_backlog,
                stats.is_stable(),
            ]
        )
    print(
        format_table(
            [
                "offered load",
                "latency mean",
                "latency p99",
                "deflect rate",
                "throughput/step",
                "max backlog",
                "stable",
            ],
            rows,
            title=f"\n{label} on the 12x12 mesh "
            f"({HORIZON} steps, warm-up {WARMUP})",
        )
    )
    return rows


def main() -> None:
    restricted = sweep(RestrictedPriorityPolicy, "restricted-priority")
    randomized = sweep(RandomizedGreedyPolicy, "randomized-greedy")

    print(
        "\nReading the curves: below saturation (~0.25/node here) the"
        "\nmean latency sits near the mean source-destination distance"
        "\n(~8 hops on this mesh) and every generated packet departs"
        "\nimmediately; past saturation the backlog column explodes —"
        "\ndeflection networks degrade by queueing at the *sources*,"
        "\nnever inside the bufferless fabric."
    )
    # The stable prefix behaves, for both policies.
    assert restricted[0][6] and randomized[0][6]


if __name__ == "__main__":
    main()
