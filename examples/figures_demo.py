#!/usr/bin/env python3
"""ASCII reproductions of the paper's illustrative Figures 1-6.

The paper has no data plots; its six figures illustrate definitions.
This script regenerates each as text, computed from the library (not
hand-drawn), so the definitions and the code provably agree.

Run:  python examples/figures_demo.py
"""

from repro import Mesh, RestrictedPriorityPolicy, HotPotatoEngine
from repro.core.packet import Packet
from repro.core.node_view import NodeView
from repro.mesh.directions import Direction
from repro.mesh.two_neighbors import two_neighbors_of
from repro.potential.classification import classify_nodes
from repro.potential.restricted import RestrictedPotential
from repro.potential.surface import surface_arcs
from repro.viz.ascii_art import render_nodes
from repro.workloads import single_target


def figure_1(mesh: Mesh) -> None:
    print('Figure 1 — direction "-" in the second coordinate:')
    print("  arcs of the form (a1, a2) -> (a1, a2 - 1); e.g.")
    direction = Direction(1, -1)
    for node in [(2, 3), (3, 2), (1, 4)]:
        print(f"    {node} -> {mesh.neighbor(node, direction)}")
    print()


def figure_2(mesh: Mesh) -> None:
    print("Figure 2 — 2-neighbors of (3, 3) (marked #, origin o):")
    marked = two_neighbors_of(mesh, (3, 3))
    art = render_nodes(mesh, marked).splitlines()
    row, col = 3, 3
    line = list(art[row - 1])
    line[2 * (col - 1)] = "o"
    art[row - 1] = "".join(line)
    print("\n".join("  " + line for line in art))
    print("  ((2,4) etc. are NOT 2-neighbors: no 2-path of one direction)\n")


def figures_3_and_4(mesh: Mesh) -> None:
    problem = single_target(mesh, k=40, seed=5)
    engine = HotPotatoEngine(
        problem, RestrictedPriorityPolicy(), seed=5, record_steps=True
    )
    result = engine.run()
    peak_record = max(
        result.records,
        key=lambda record: classify_nodes(record, 2).b,
    )
    bad = classify_nodes(peak_record, 2).bad_nodes
    print(f"Figure 3 — bad nodes (load > d) at step {peak_record.step} "
          f"of a hot-spot run:")
    print("\n".join("  " + line for line in render_nodes(mesh, bad).splitlines()))
    arcs = surface_arcs(mesh, bad)
    print(f"\nFigure 4 — its {len(arcs)} surface arcs (Definition 11), "
          f"first few:")
    for node, direction in arcs[:6]:
        print(f"    out of {node} in direction {direction}")
    print()


def figure_5(mesh: Mesh) -> None:
    print("Figure 5 — restricted packet types at a node:")
    node = (3, 3)
    a = Packet(id=0, source=node, destination=(3, 6))
    a.advanced_last_step = True
    a.restricted_last_step = True
    b1 = Packet(id=1, source=node, destination=(3, 5))  # fresh
    b2 = Packet(id=2, source=node, destination=(6, 3))
    b2.advanced_last_step = False
    b2.restricted_last_step = True  # was deflected
    c = Packet(id=3, source=node, destination=(6, 6))  # two good dirs
    view = NodeView(mesh, node, 1, [a, b1, b2, c])
    for packet in view.packets:
        print(f"    packet {packet.id} -> {packet.destination}: "
              f"{view.num_good(packet)} good dir(s), "
              f"type {view.restricted_type(packet).value}")
    print()


def figure_6(mesh: Mesh) -> None:
    print("Figure 6 — potential updates along one packet's life:")
    problem = single_target(mesh, k=30, seed=6)
    tracker = RestrictedPotential(strict=True)
    engine = HotPotatoEngine(
        problem,
        RestrictedPriorityPolicy(prefer_type_a=False),
        seed=6,
        observers=[tracker],
        record_steps=True,
    )
    # Find a packet whose C actually moves (advances as type A).
    history = {p.id: [] for p in engine.packets}
    engine._start()
    while engine.in_flight and engine.time < 40:
        engine.step()
        for packet_id, c_value in tracker.C.items():
            history[packet_id].append(c_value)
    interesting = min(history, key=lambda pid: min(history[pid] or [99]))
    n2 = 2 * mesh.side
    print(f"    packet {interesting}: C_p over time "
          f"(starts at 2n = {n2}, -2 per type-A step, resets on "
          f"deflection, 0 on delivery):")
    print(f"    {[int(c) for c in history[interesting]]}")
    print(f"    rule-3(b) switches in this run: {tracker.switch_count}")


def main() -> None:
    mesh = Mesh(dimension=2, side=8)
    figure_1(mesh)
    figure_2(mesh)
    figures_3_and_4(mesh)
    figure_5(mesh)
    figure_6(mesh)


if __name__ == "__main__":
    main()
