#!/usr/bin/env python3
"""Quickstart: route a random batch with the paper's algorithm.

Builds a 16x16 mesh, generates 100 random packets, routes them with
the greedy restricted-priority algorithm of Section 4, and compares
the measured time against the Theorem 20 bound 8*sqrt(2)*n*sqrt(k).

Run:  python examples/quickstart.py
"""

from repro import (
    Mesh,
    RestrictedPriorityPolicy,
    random_many_to_many,
    route,
    theorem20_bound,
)


def main() -> None:
    mesh = Mesh(dimension=2, side=16)
    problem = random_many_to_many(mesh, k=100, seed=42)
    print(f"Routing {problem.describe()}")

    result = route(problem, RestrictedPriorityPolicy(), seed=42)

    bound = theorem20_bound(mesh.side, problem.k)
    print(f"  delivered      : {result.delivered}/{problem.k} packets")
    print(f"  routing time   : {result.total_steps} steps")
    print(f"  Theorem 20     : <= {bound:.0f} steps "
          f"(measured/bound = {result.total_steps / bound:.3f})")
    print(f"  trivial bound  : >= {problem.d_max} steps (farthest packet)")
    print(f"  deflections    : {result.total_deflections}")
    print(f"  path stretch   : {result.average_stretch:.3f} "
          f"(1.0 = everyone on a shortest path)")

    assert result.completed
    assert result.total_steps <= bound


if __name__ == "__main__":
    main()
