#!/usr/bin/env python3
"""Permutation routing across algorithms, plus the Remark's parity split.

Routes the classical permutation benchmarks (random, transpose,
reversal, bit-reversal) under every greedy policy and reports times
against d_max and the parity-sharpened 8n^2 bound of the Remark after
Theorem 20.  Then demonstrates the parity split itself: the even- and
odd-origin halves of a full load never interact.

Run:  python examples/permutation_routing.py
"""

from repro import HotPotatoEngine, Mesh, make_policy
from repro.analysis.tables import format_table
from repro.potential.bounds import permutation_remark_bound
from repro.workloads import (
    bit_reversal,
    random_permutation,
    reversal,
    saturated_load,
    split_by_origin_parity,
    transpose,
)

POLICIES = (
    "restricted-priority",
    "plain-greedy",
    "fixed-priority",
    "destination-order",
)


def main() -> None:
    mesh = Mesh(dimension=2, side=16)
    workloads = [
        ("random", random_permutation(mesh, seed=3)),
        ("transpose", transpose(mesh)),
        ("reversal", reversal(mesh)),
        ("bit-reversal", bit_reversal(mesh)),
    ]

    rows = []
    for label, problem in workloads:
        for name in POLICIES:
            result = HotPotatoEngine(
                problem, make_policy(name), seed=3
            ).run()
            assert result.completed
            rows.append(
                [
                    label,
                    name,
                    problem.d_max,
                    result.total_steps,
                    result.total_steps / max(problem.d_max, 1),
                ]
            )
    print(
        format_table(
            ["permutation", "algorithm", "d_max", "T", "T/d_max"],
            rows,
            title=f"Permutation routing on the {mesh.side}x{mesh.side} mesh "
            f"(Remark bound: 8n^2 = {permutation_remark_bound(mesh.side):.0f})",
        )
    )

    print("\n--- Parity split (Remark after Theorem 20) ---")
    load = saturated_load(mesh, per_node=1, seed=4)
    even, odd = split_by_origin_parity(load)
    t_joint = _route(load)
    t_even = _route(even)
    t_odd = _route(odd)
    print(f"full load      : k={load.k:4d}  T={t_joint}")
    print(f"even origins   : k={even.k:4d}  T={t_even}")
    print(f"odd origins    : k={odd.k:4d}  T={t_odd}")
    print(f"joint == max(halves)? {t_joint == max(t_even, t_odd)}")
    print("The two parity classes flip parity in lockstep every step,")
    print("so they can never meet: a full load is two half loads, and")
    print("Theorem 20 on each half gives the 8n^2 bound.")


def _route(problem) -> int:
    result = HotPotatoEngine(
        problem, make_policy("restricted-priority"), seed=0
    ).run()
    assert result.completed
    return result.total_steps


if __name__ == "__main__":
    main()
