#!/usr/bin/env python3
"""A guided tour of the related work (Sections 1.1 and 6.1).

Each stop runs a baseline algorithm from the literature the paper
builds on, on its home turf, against its published bound:

1. Borodin–Hopcroft [BH]: greedy permutations on the hypercube;
2. Hajek [Haj]: fixed-priority batches on the hypercube vs 2k + n;
3. Brassil–Cruz [BC]: destination-order on the mesh vs diam + P + 2(k-1);
4. Ben-Aroya–Tamar–Schuster [BTS]: single-target greedy vs d_max + k;
5. Ben-Aroya–Newman–Schuster [BNS]: randomized ranks;
6. Bar-Noy et al. [BRST]: column loads vs the n*sqrt(m) shape.

Run:  python examples/related_work_tour.py
"""

from repro.algorithms import (
    ClosestFirstPolicy,
    DestinationOrderPolicy,
    FixedPriorityPolicy,
    PlainGreedyPolicy,
    RandomRankPolicy,
    brassil_cruz_time_bound,
    snake_walk_length,
)
from repro.core.engine import HotPotatoEngine
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.workloads import (
    column_collapse,
    random_many_to_many,
    random_permutation,
    single_target,
)


def stop(number, reference, text):
    print(f"\n{number}. [{reference}] {text}")


def main() -> None:
    mesh = Mesh(dimension=2, side=16)
    cube = Hypercube(7)

    stop(1, "BH", "greedy permutation routing on the 128-node hypercube")
    problem = random_permutation(cube, seed=1)
    result = HotPotatoEngine(problem, PlainGreedyPolicy(), seed=1).run()
    print(f"   T = {result.total_steps} vs diameter {cube.diameter} — "
          f"'experimentally the algorithm appears promising' indeed.")

    stop(2, "Haj", "fixed-priority batch on the hypercube vs 2k + n")
    problem = random_many_to_many(cube, k=64, seed=2)
    result = HotPotatoEngine(problem, FixedPriorityPolicy(), seed=2).run()
    print(f"   T = {result.total_steps} vs 2k + n = "
          f"{2 * problem.k + cube.dimension}")

    stop(3, "BC", "destination-order priority vs diam + P + 2(k-1)")
    problem = random_many_to_many(mesh, k=60, seed=3)
    walk = snake_walk_length(
        mesh, [r.destination for r in problem.requests]
    )
    result = HotPotatoEngine(problem, DestinationOrderPolicy(), seed=3).run()
    print(f"   T = {result.total_steps} vs "
          f"{brassil_cruz_time_bound(mesh.diameter, walk, problem.k)} "
          f"(P = {walk} along the snake walk)")

    stop(4, "BTS", "single-target greedy vs the d_max + k envelope")
    problem = single_target(mesh, k=80, seed=4)
    result = HotPotatoEngine(problem, ClosestFirstPolicy(), seed=4).run()
    print(f"   T = {result.total_steps} vs d_max + k = "
          f"{problem.d_max + problem.k} "
          f"(absorption floor ceil(k/2d) = {(problem.k + 3) // 4})")

    stop(5, "BNS", "persistent random ranks (randomized greedy)")
    result = HotPotatoEngine(problem, RandomRankPolicy(), seed=5).run()
    print(f"   T = {result.total_steps} on the same hot spot; the "
          f"top-ranked packet is never deflected, with probability 1.")

    stop(6, "BRST", "column loads and the n*sqrt(m) parameter")
    problem = column_collapse(mesh)
    result = HotPotatoEngine(
        problem, DestinationOrderPolicy(), seed=6
    ).run()
    print(f"   all {problem.k} packets into one column: "
          f"T = {result.total_steps} vs n*sqrt(m)-shaped budgets "
          f"(m <= n here).")

    print("\nEvery baseline is exercised with its validator stack on — "
          "each run above is certified greedy step by step.")


if __name__ == "__main__":
    main()
