#!/usr/bin/env python3
"""Livelock: greediness alone does not guarantee termination (§1.2).

Eight packets sit on a 2x2 block, two per node, forming four
"oscillating pairs".  A uniform, deterministic, perfectly greedy
policy (every step satisfies Definition 6 — the engine validates it)
lets the non-restricted packet at each node advance through the
restricted packet's only good arc; the deflected packets circle the
block and the configuration repeats every 2 steps, forever.

The fix is exactly the paper's Definition 18: give restricted packets
priority, and the same instance routes in 2 steps.

Run:  python examples/livelock_demo.py
"""

from repro import (
    BlockingGreedyPolicy,
    HotPotatoEngine,
    Mesh,
    RandomizedGreedyPolicy,
    RestrictedPriorityPolicy,
    livelock_instance,
)
from repro.analysis.livelock import detect_cycle, find_greedy_cycle
from repro.viz.ascii_art import render_loads


def main() -> None:
    mesh = Mesh(dimension=2, side=4)
    problem = livelock_instance(mesh)
    print("The 8-packet livelock configuration (2 packets per block node):")
    loads = {}
    for request in problem.requests:
        loads[request.source] = loads.get(request.source, 0) + 1
    print(render_loads(mesh, loads))
    print()

    print("1. blocking-greedy (uniform, deterministic, greedy):")
    engine = HotPotatoEngine(
        problem, BlockingGreedyPolicy(), max_steps=1000
    )
    result = engine.run()
    cycle = detect_cycle(problem, BlockingGreedyPolicy(), max_steps=100)
    print(f"   after 1000 validated-greedy steps: "
          f"{result.delivered}/8 packets delivered")
    print(f"   proof of livelock: {cycle}")

    print("\n2. exhaustive search of the greedy transition graph:")
    found = find_greedy_cycle(problem, max_states=20_000)
    print(f"   {found}")
    replay = HotPotatoEngine(problem, found.make_policy(), max_steps=100)
    replay_result = replay.run()
    print(f"   replayed schedule: {replay_result.delivered}/8 delivered "
          f"after 100 engine-validated steps")

    print("\n3. the cure — Definition 18 (prefer restricted packets):")
    fixed = HotPotatoEngine(problem, RestrictedPriorityPolicy()).run()
    print(f"   restricted-priority delivers 8/8 in {fixed.total_steps} steps")

    print("\n4. randomization also escapes:")
    random_run = HotPotatoEngine(
        problem, RandomizedGreedyPolicy(), seed=1
    ).run()
    print(f"   randomized-greedy delivers 8/8 in "
          f"{random_run.total_steps} steps")

    assert result.delivered == 0 and cycle is not None
    assert fixed.completed and random_run.completed


if __name__ == "__main__":
    main()
