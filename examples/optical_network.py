#!/usr/bin/env python3
"""The Section 1 motivation: bufferless optical-style networks.

In optical networks, buffering a packet means converting it from the
optical to the electronic domain and back — slow and expensive — so
deflection is preferred even at the cost of longer routes ([AS], [GG],
[Sz], [ZA] in the paper).  This example quantifies the trade on a
hot-spot workload:

* hot-potato greedy routing: zero buffering by construction, a few
  extra hops from deflections;
* store-and-forward dimension-order routing: shortest paths, but
  queues build up at the congestion point — each queued packet-step
  would be an O/E/O conversion.

Run:  python examples/optical_network.py
"""

from repro import (
    DimensionOrderPolicy,
    BufferedEngine,
    HotPotatoEngine,
    Mesh,
    RestrictedPriorityPolicy,
)
from repro.workloads import single_target


def main() -> None:
    mesh = Mesh(dimension=2, side=16)
    problem = single_target(mesh, k=120, seed=7)
    print(f"Hot-spot workload: {problem.describe()}\n")

    hot_engine = HotPotatoEngine(
        problem, RestrictedPriorityPolicy(), seed=7
    )
    hot = hot_engine.run()

    buffered_engine = BufferedEngine(problem, DimensionOrderPolicy())
    buffered = buffered_engine.run()

    total_queued = _total_queue_steps(buffered_engine)

    print(f"{'':28s}{'hot-potato':>14s}{'store-and-forward':>20s}")
    print(f"{'routing time (steps)':28s}{hot.total_steps:>14d}"
          f"{buffered.total_steps:>20d}")
    print(f"{'total deflections':28s}{hot.total_deflections:>14d}"
          f"{'0':>20s}")
    print(f"{'mean path stretch':28s}{hot.average_stretch:>14.3f}"
          f"{1.0:>20.3f}")
    print(f"{'max node occupancy':28s}{hot.max_load_seen:>14d}"
          f"{buffered_engine.max_buffer_seen:>20d}")
    print(f"{'packet-steps buffered':28s}{'0 (all-optical)':>14s}"
          f"{total_queued:>20d}")
    print()
    print("Deflection trades a handful of extra hops for the complete")
    print("elimination of buffering — every buffered packet-step in the")
    print("right column is an optical/electronic conversion avoided by")
    print("the hot-potato discipline.")

    assert hot.max_load_seen <= 2 * mesh.dimension
    assert buffered_engine.max_buffer_seen > 2 * mesh.dimension


def _total_queue_steps(engine: BufferedEngine) -> int:
    """Packet-steps spent waiting = sum over packets of (delivery time
    minus hops), since a buffered packet either moves or waits."""
    total = 0
    for packet in engine.packets:
        if packet.delivered_at is not None:
            total += packet.delivered_at - packet.hops
    return total


if __name__ == "__main__":
    main()
