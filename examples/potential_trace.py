#!/usr/bin/env python3
"""Live trace of the Section 4.2 potential on a congested run.

Routes a hot-spot batch while tracking Phi(t), B(t), G(t), and F(t),
prints their time series as sparklines, renders the bad-node volume at
its peak (the paper's Figure 3), and reports the verdict of every
inequality in the analysis chain (Property 8, Corollary 10, Lemmas
12/14/15, Theorem 20).

Run:  python examples/potential_trace.py
"""

from repro import Mesh, RestrictedPriorityPolicy
from repro.potential import verify_restricted_run
from repro.viz.ascii_art import render_nodes, render_step
from repro.viz.timeseries import labeled_sparkline
from repro.potential.classification import classify_nodes
from repro.workloads import single_target


def main() -> None:
    mesh = Mesh(dimension=2, side=16)
    problem = single_target(mesh, k=120, seed=11)
    print(f"Workload: {problem.describe()}\n")

    report = verify_restricted_run(
        problem, RestrictedPriorityPolicy(), seed=11
    )

    phi = report.phi_history
    b_series = [b for _, b, _ in report.bgf_series]
    f_series = [f for _, _, f in report.bgf_series]
    print(labeled_sparkline("Phi(t)", phi))
    print(labeled_sparkline("B(t)", b_series))
    print(labeled_sparkline("F(t)", f_series))

    peak = max(range(len(b_series)), key=lambda i: b_series[i])
    records = report.result.records
    print(f"\nOccupancy at the bad-node peak (step {peak}):")
    print(render_step(mesh, records[peak]))
    bad = classify_nodes(records[peak], 2).bad_nodes
    print(f"\nBad-node volume at step {peak} (Figure 3 of the paper):")
    print(render_nodes(mesh, bad))

    print("\nAnalysis-chain audit:")
    checks = [
        ("Property 8 (Lemma 19)", not report.property8_violations),
        ("Corollary 10", not report.corollary10_violations),
        ("Lemma 12 (surface drop)", not report.lemma12_violations),
        ("Lemma 14 (isoperimetric)", not report.lemma14_violations),
        ("Lemma 15 (decay rate)", not report.lemma15_violations),
        ("Phi monotone", report.monotone),
        (
            "Theorem 20 bound",
            report.result.total_steps <= report.theorem20_limit,
        ),
    ]
    for label, ok in checks:
        print(f"  {'PASS' if ok else 'FAIL'}  {label}")
    print(
        f"\nT = {report.result.total_steps} steps vs bound "
        f"{report.theorem20_limit:.0f} "
        f"(ratio {report.bound_ratio:.3f}); "
        f"rule-3(b) switches: {report.switch_count}"
    )
    assert report.all_hold


if __name__ == "__main__":
    main()
