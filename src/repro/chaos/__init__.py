"""Infrastructure chaos: fault injection for the durability layer.

:mod:`repro.faults` breaks the *simulated* network; this package
breaks the *simulator's own* infrastructure — fsyncs that fail, disks
that fill mid-write, processes that die between a write and its
acknowledgement — and proves the recovery paths
(:mod:`repro.snapshot`, the campaign event log) actually recover.

* :mod:`repro.chaos.injector` — deterministic syscall-seam fault
  injection (``EIO``/``ENOSPC``/mid-write kill) plus byte-level tail
  tearing.
* :mod:`repro.chaos.crashtest` — kill-and-resume drivers: every
  checkpoint boundary of every batch engine, a chaos-beaten campaign
  store, and a genuinely SIGKILLed 2-worker campaign subprocess.
  ``python -m repro.chaos.crashtest`` runs them all.

See ``docs/robustness.md`` for the failure model these tools enforce.
"""

from repro.chaos.injector import (
    ChaosLog,
    ChaosPlan,
    ProcessKilled,
    durability_chaos,
    tear_tail,
)

_CRASHTEST_NAMES = (
    "CrashtestReport",
    "crashtest_campaign",
    "crashtest_engine",
    "crashtest_route",
    "crashtest_store",
)


def __getattr__(name: str):
    # Lazy: ``python -m repro.chaos.crashtest`` imports this package
    # first, and an eager crashtest import here would double-load the
    # module runpy is about to execute.
    if name in _CRASHTEST_NAMES:
        from repro.chaos import crashtest

        return getattr(crashtest, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "ChaosLog",
    "ChaosPlan",
    "CrashtestReport",
    "ProcessKilled",
    "crashtest_campaign",
    "crashtest_engine",
    "crashtest_route",
    "crashtest_store",
    "durability_chaos",
    "tear_tail",
]
