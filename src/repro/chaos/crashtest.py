"""Kill-and-resume drivers: the executable proof behind checkpointing.

A checkpoint you have never resumed from is a wish, not a feature.
These drivers manufacture the crashes:

* :func:`crashtest_engine` / :func:`crashtest_route` — run a scenario
  uninterrupted for reference, then *for every checkpoint boundary*
  pretend the process died right after the snapshot landed: build a
  fresh engine, resume from that snapshot alone, run to completion,
  and require the :class:`~repro.core.metrics.RunResult` to be
  bit-identical to the reference.  Every boundary, not a sampled one —
  the failure mode worth catching is the boundary where some state
  escaped the snapshot.
* :func:`crashtest_store` — feed a campaign store every infrastructure
  insult the injector knows (fsync ``EIO``, ``ENOSPC`` short write,
  mid-write kill, byte-level torn tails across a multi-byte UTF-8
  character) and require replay to stay readable and a resumed
  campaign to finish with reference-identical points.
* :func:`crashtest_campaign` — the real thing: a 2-worker ``repro
  campaign run --checkpoint-every`` subprocess, SIGKILLed the moment
  its store shows a live mid-run checkpoint, then resumed over the
  surviving log; points must match an uninterrupted campaign exactly.

``python -m repro.chaos.crashtest`` runs all three (CI's crashtest
leg and ``make crashtest``).  Everything is deterministic except the
SIGKILL timing, which retries until the kill genuinely lands mid-case.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.chaos.injector import (
    ChaosPlan,
    ProcessKilled,
    durability_chaos,
    tear_tail,
)
from repro.obs.clock import sleep_for

__all__ = [
    "CrashtestReport",
    "crashtest_campaign",
    "crashtest_engine",
    "crashtest_route",
    "crashtest_store",
    "main",
]

EngineFactory = Callable[
    [Optional[int], Optional[Callable[[Dict[str, Any]], None]]], Any
]


@dataclass
class CrashtestReport:
    """What one driver exercised (drivers raise on any mismatch)."""

    scenario: str
    boundaries: int = 0
    details: List[str] = field(default_factory=list)

    def line(self) -> str:
        extra = f" ({'; '.join(self.details)})" if self.details else ""
        return (
            f"crashtest {self.scenario}: {self.boundaries} "
            f"kill points survived{extra}"
        )


def crashtest_engine(
    factory: EngineFactory, every: int, scenario: str = "engine"
) -> CrashtestReport:
    """Kill-and-resume at *every* checkpoint boundary of one scenario.

    ``factory(checkpoint_every, on_checkpoint)`` must build a fresh,
    identically configured engine each call.  Raises ``AssertionError``
    on the first divergence.
    """
    reference = factory(None, None).run()
    snapshots: List[Dict[str, Any]] = []
    checkpointed = factory(every, snapshots.append).run()
    assert checkpointed == reference, (
        f"{scenario}: checkpointing changed the run itself"
    )
    if not snapshots:
        raise AssertionError(
            f"{scenario}: no checkpoints emitted at every={every}"
        )
    for snapshot in snapshots:
        # Serialize through JSON exactly like the store and the
        # snapshot file do — resuming from the in-memory dict would
        # hide round-trip bugs.
        payload = json.loads(json.dumps(snapshot))
        engine = factory(None, None)
        engine.resume_from(payload)
        resumed = engine.run()
        assert resumed == reference, (
            f"{scenario}: resume from step {snapshot['step']} diverged"
        )
    return CrashtestReport(scenario=scenario, boundaries=len(snapshots))


def _route_factory(backend: str, engine: str) -> EngineFactory:
    from repro.mesh.topology import Mesh
    from repro.workloads import random_many_to_many

    mesh = Mesh(2, 8)
    problem = random_many_to_many(mesh, k=40, seed=7)

    def build(
        every: Optional[int],
        on_checkpoint: Optional[Callable[[Dict[str, Any]], None]],
    ) -> Any:
        if engine == "buffered":
            from repro.algorithms.dimension_order import DimensionOrderPolicy
            from repro.core.buffered_engine import BufferedEngine

            return BufferedEngine(
                problem,
                DimensionOrderPolicy(),
                seed=7,
                backend=backend,
                checkpoint_every=every,
                on_checkpoint=on_checkpoint,
            )
        from repro.algorithms import make_policy
        from repro.core.engine import HotPotatoEngine
        from repro.core.validation import validators_for

        policy = make_policy("restricted-priority")
        return HotPotatoEngine(
            problem,
            policy,
            seed=7,
            validators=validators_for(policy, strict=False),
            backend=backend,
            checkpoint_every=every,
            on_checkpoint=on_checkpoint,
        )

    return build


def crashtest_route(every: int = 3) -> List[CrashtestReport]:
    """Every-boundary kill-and-resume over the batch engine matrix."""
    reports = []
    for engine, backend in (
        ("hot-potato", "object"),
        ("hot-potato", "soa"),
        ("buffered", "object"),
        ("buffered", "soa"),
    ):
        reports.append(
            crashtest_engine(
                _route_factory(backend, engine),
                every,
                scenario=f"route {engine}/{backend}",
            )
        )
    return reports


def _campaign_specs(
    seeds: int, *, side: int = 6, checkpoint_every: Optional[int] = None
) -> List[Any]:
    from repro.campaign.spec import CaseSpec

    return [
        CaseSpec(
            topology="mesh",
            workload="random",
            policy="random-rank",
            seed=seed,
            side=side,
            checkpoint_every=checkpoint_every,
        )
        for seed in range(seeds)
    ]


def _reference_points(specs: Sequence[Any]) -> Dict[str, Any]:
    from repro.campaign.orchestrator import Campaign
    from repro.campaign.spec import spec_key

    with Campaign(specs) as campaign:
        result = campaign.run()
    assert not result.failures, result.failures
    return {
        spec_key(spec): point.result
        for spec, point in zip(specs, result.points)
    }


def _assert_matches_reference(
    store_path: str, reference: Dict[str, Any], scenario: str
) -> None:
    from repro.campaign.orchestrator import Campaign
    from repro.campaign.spec import spec_key

    campaign = Campaign.from_store(store_path)
    try:
        result = campaign.run()
    finally:
        campaign.close()
    assert not result.failures, f"{scenario}: {result.failures}"
    assert len(result.points) == len(reference), (
        f"{scenario}: {len(result.points)} points, "
        f"expected {len(reference)}"
    )
    for spec, point in zip(campaign.specs, result.points):
        key = spec_key(spec)
        assert point.result == reference[key], (
            f"{scenario}: resumed case {key} diverged"
        )


def crashtest_store(workers: int = 2) -> CrashtestReport:
    """Chaos-inject the campaign store's durability layer and resume.

    Serial campaigns face the syscall-seam injector (fsync ``EIO``,
    ``ENOSPC`` short write, simulated mid-write SIGKILL); a
    ``workers``-wide campaign's finished log is then torn at byte
    granularity — including mid-way through a multi-byte UTF-8
    character — before resuming over the damage.
    """
    import tempfile

    from repro.campaign.orchestrator import Campaign
    from repro.campaign.store import CampaignStore

    specs = _campaign_specs(3, checkpoint_every=4)
    reference = _reference_points(specs)
    report = CrashtestReport(scenario="store")

    with tempfile.TemporaryDirectory() as tmp:
        plans = (
            ("fsync-eio", ChaosPlan(fail_fsync_at=4)),
            ("enospc", ChaosPlan(enospc_at_write=4)),
            ("kill-mid-write", ChaosPlan(kill_at_write=4, short_bytes=9)),
        )
        for name, plan in plans:
            path = os.path.join(tmp, f"{name}.jsonl")
            try:
                with durability_chaos(plan) as log:
                    with Campaign(specs, store=CampaignStore(path)) as c:
                        c.run()
            except (OSError, ProcessKilled):
                pass
            assert log.injected, f"{name}: chaos never fired"
            state = CampaignStore(path).replay()
            assert state.order, f"{name}: store lost its queue"
            _assert_matches_reference(path, reference, f"store/{name}")
            report.boundaries += 1
            report.details.append(f"{name} at write {log.writes}")

        # Byte-level tears over a pooled (concurrent-append) log.  The
        # sentinel params value ends in U+2713 (3 UTF-8 bytes), so the
        # 1- and 2-byte tears split a character, not just a line.
        from repro.campaign.spec import CaseSpec

        torn_specs = [
            CaseSpec(
                topology="mesh",
                workload="random",
                policy="random-rank",
                seed=seed,
                side=6,
                params=(("label", "torn ✓"),),
                checkpoint_every=4,
            )
            for seed in range(4)
        ]
        torn_reference = _reference_points(torn_specs)
        check = "\N{CHECK MARK}".encode("utf-8")  # 3 bytes: e2 9c 93
        for label, keep_char_bytes in (
            ("mid-utf8-1", 1),
            ("mid-utf8-2", 2),
            ("mid-json", None),
        ):
            path = os.path.join(tmp, f"torn-{label}.jsonl")
            with Campaign(
                torn_specs, store=CampaignStore(path), workers=workers
            ) as c:
                c.run()
            size = os.path.getsize(path)
            if keep_char_bytes is None:
                drop = 17
            else:
                # Truncate inside the last ✓: keep 1 or 2 of its 3
                # bytes so the tail ends mid-character, not mid-line.
                with open(path, "rb") as handle:
                    mark = handle.read().rfind(check)
                assert mark >= 0, f"{label}: sentinel character missing"
                drop = size - (mark + keep_char_bytes)
            tear_tail(path, drop)
            state = CampaignStore(path).replay()
            assert state.errors, f"{label}: tear went unnoticed"
            _assert_matches_reference(
                path, torn_reference, f"store/{label}"
            )
            report.boundaries += 1
            report.details.append(f"{label} -{drop}B")
    return report


def _spawn_campaign(store: str, seeds: int, workers: int) -> Any:
    env = dict(os.environ)
    src = os.path.dirname(os.path.dirname(os.path.dirname(__file__)))
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "campaign",
            "run",
            "--topology",
            "mesh",
            "--side",
            "12",
            "--workload",
            "random",
            "--policy",
            "random-rank",
            "--seeds",
            str(seeds),
            "--checkpoint-every",
            "1",
            "--store",
            store,
            "--workers",
            str(workers),
        ],
        env=env,
        stdout=subprocess.DEVNULL,
        stderr=subprocess.DEVNULL,
    )


def crashtest_campaign(
    seeds: int = 4, workers: int = 2, attempts: int = 8
) -> CrashtestReport:
    """SIGKILL a checkpointed campaign subprocess mid-case and resume.

    Polls the store until replay shows a *live* checkpoint (a case
    that has snapshotted but not finished), SIGKILLs the whole
    process, then resumes over the surviving log and requires every
    point to match an uninterrupted run bit-for-bit.  The kill race is
    the one nondeterministic ingredient, so the driver retries with a
    fresh store until a kill genuinely lands mid-case.
    """
    import tempfile

    from repro.campaign.store import CampaignStore

    specs = _campaign_specs(seeds, side=12, checkpoint_every=1)
    reference = _reference_points(specs)

    with tempfile.TemporaryDirectory() as tmp:
        for attempt in range(attempts):
            store = os.path.join(tmp, f"campaign-{attempt}.jsonl")
            proc = _spawn_campaign(store, seeds, workers)
            try:
                caught = False
                for _ in range(2000):
                    if proc.poll() is not None:
                        break
                    if os.path.exists(store):
                        state = CampaignStore(store).replay()
                        if state.checkpoints:
                            caught = True
                            break
                    sleep_for(0.001)
                if not caught:
                    continue
                os.kill(proc.pid, signal.SIGKILL)
            finally:
                proc.wait()
            state = CampaignStore(store).replay()
            if not state.checkpoints or not state.pending():
                # The checkpointed case slipped through to finished
                # between the poll and the kill; try again.
                continue
            resumed_from = {
                key: payload["step"]
                for key, payload in state.checkpoints.items()
            }
            _assert_matches_reference(store, reference, "campaign")
            report = CrashtestReport(scenario="campaign", boundaries=1)
            report.details.append(
                "SIGKILL mid-case; resumed from step(s) "
                + ", ".join(
                    str(step) for step in sorted(resumed_from.values())
                )
            )
            return report
    raise AssertionError(
        f"campaign crashtest never caught a mid-case kill in "
        f"{attempts} attempts"
    )


def main(argv: Optional[Sequence[str]] = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(
        prog="repro.chaos.crashtest",
        description="kill-and-resume proof drivers for checkpointing "
        "and the campaign store",
    )
    parser.add_argument(
        "target",
        nargs="?",
        choices=("route", "store", "campaign", "all"),
        default="all",
    )
    parser.add_argument(
        "--every",
        type=int,
        default=3,
        help="checkpoint interval for the route drivers (default 3)",
    )
    args = parser.parse_args(argv)
    reports: List[CrashtestReport] = []
    if args.target in ("route", "all"):
        reports.extend(crashtest_route(every=args.every))
    if args.target in ("store", "all"):
        reports.append(crashtest_store())
    if args.target in ("campaign", "all"):
        reports.append(crashtest_campaign())
    for report in reports:
        print(report.line())
    print(f"crashtest: {len(reports)} scenarios OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
