"""Deterministic infrastructure-fault injection for the durability layer.

The simulator has had *simulation* chaos since PR 4 (``repro.faults``
kills links and nodes inside the model).  This module is the other
half: it attacks the machinery the reproduction relies on to survive
the real world — the fsynced ``O_APPEND`` writes behind
:func:`repro.obs.manifest.append_jsonl`, which carry the campaign
event log, the sweep checkpoint, and every telemetry manifest.

Injection happens at the two module-level syscall seams
``repro.obs.manifest._os_write`` / ``_os_fsync``.  Patching the seams
(not ``os`` itself) scopes chaos to durability appends: the rest of
the process — snapshot files, pytest plumbing, the store *reader* —
keeps working, which is exactly the situation a real ``EIO`` or
``ENOSPC`` produces.

Three failure modes, all counted deterministically (the Nth syscall
fails — no wall clock, no randomness, so a chaos test is an ordinary
reproducible test):

* **fsync failure** — the Nth fsync raises ``EIO``.  The bytes are in
  the page cache but the durability acknowledgement never happens; the
  caller must treat the append as failed.
* **ENOSPC short write** — the Nth write lands only a prefix (default
  7 bytes: mid-way through the ``{"schema`` preamble) and then raises
  ``ENOSPC``, leaving a torn line for the next reader.
* **mid-write kill** — the Nth write lands a prefix and then raises
  :class:`ProcessKilled` (a ``BaseException``, so no recovery layer
  can accidentally swallow it), simulating SIGKILL between the write
  entering the kernel and the caller resuming.

:func:`tear_tail` complements the seams with post-hoc byte surgery:
truncating a finished log at an arbitrary byte offset — including
mid-way through a multi-byte UTF-8 sequence — reproduces what an
actual crash leaves on disk.
"""

from __future__ import annotations

import errno
import os
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, List, Optional

from repro.obs import manifest

__all__ = [
    "ChaosLog",
    "ChaosPlan",
    "ProcessKilled",
    "durability_chaos",
    "tear_tail",
]


class ProcessKilled(BaseException):
    """Simulated SIGKILL mid-append.

    Deliberately a ``BaseException``: the recovery machinery under
    test catches ``Exception`` (and specific ``OSError`` kinds), and a
    killed process does not get *any* handler — a chaos driver that
    sees this exception knows the simulated process is gone and must
    continue from the on-disk state alone.
    """


@dataclass(frozen=True)
class ChaosPlan:
    """Which syscall ordinals fail, counted from 1 inside the scope.

    Attributes:
        fail_fsync_at: this fsync raises ``EIO`` (None = never).
        enospc_at_write: this write lands ``short_bytes`` then raises
            ``ENOSPC`` (None = never).
        kill_at_write: this write lands ``short_bytes`` then raises
            :class:`ProcessKilled` (None = never).
        short_bytes: prefix length that reaches the file before an
            injected write failure.  Any value tears the JSON line;
            pick an offset inside a multi-byte UTF-8 character to tear
            the *encoding* too.
    """

    fail_fsync_at: Optional[int] = None
    enospc_at_write: Optional[int] = None
    kill_at_write: Optional[int] = None
    short_bytes: int = 7


@dataclass
class ChaosLog:
    """What actually happened inside a :func:`durability_chaos` scope."""

    writes: int = 0
    fsyncs: int = 0
    injected: List[str] = field(default_factory=list)


@contextmanager
def durability_chaos(plan: ChaosPlan) -> Iterator[ChaosLog]:
    """Patch the manifest syscall seams according to ``plan``.

    Restores the real syscalls on exit no matter what was raised, so a
    chaos scope can never leak into the next test.  Yields the
    :class:`ChaosLog` so callers can assert the injection fired (a
    chaos test whose fault never triggered is a green lie).
    """
    log = ChaosLog()
    real_write = manifest._os_write
    real_fsync = manifest._os_fsync

    def chaos_write(fd: int, data: bytes) -> int:
        log.writes += 1
        ordinal = log.writes
        if ordinal == plan.enospc_at_write or ordinal == plan.kill_at_write:
            short = min(plan.short_bytes, len(data))
            if short:
                real_write(fd, bytes(data[:short]))
            if ordinal == plan.enospc_at_write:
                log.injected.append(
                    f"ENOSPC at write {ordinal} after {short} bytes"
                )
                raise OSError(
                    errno.ENOSPC, "No space left on device (chaos)"
                )
            log.injected.append(
                f"kill at write {ordinal} after {short} bytes"
            )
            raise ProcessKilled(
                f"simulated SIGKILL at write {ordinal}"
            )
        return real_write(fd, data)

    def chaos_fsync(fd: int) -> None:
        log.fsyncs += 1
        if log.fsyncs == plan.fail_fsync_at:
            log.injected.append(f"EIO at fsync {log.fsyncs}")
            raise OSError(errno.EIO, "fsync failed (chaos)")
        real_fsync(fd)

    manifest._os_write = chaos_write
    manifest._os_fsync = chaos_fsync
    try:
        yield log
    finally:
        manifest._os_write = real_write
        manifest._os_fsync = real_fsync


def tear_tail(path: str, drop_bytes: int) -> int:
    """Truncate ``path`` by ``drop_bytes`` bytes, crash-style.

    Returns the new size.  Byte-level truncation is oblivious to line
    and character boundaries — drop an odd number of bytes from a log
    whose last line ends in a multi-byte UTF-8 character and the tail
    is torn mid-sequence, which is precisely the case text-mode
    readers explode on (and the case
    :meth:`repro.campaign.store.CampaignStore.replay` must absorb).
    """
    size = os.path.getsize(path)
    keep = max(0, size - max(0, drop_bytes))
    with open(path, "rb+") as handle:
        handle.truncate(keep)
    return keep
