"""Unit-cube volumes and the isoperimetric inequality (Claim 13).

The paper's geometric interpretation represents each mesh node as a
d-dimensional unit cube whose ``2d`` faces correspond to the arcs out
of the node.  A *volume* is any finite set of lattice points (cubes);
its *surface* is the number of cube faces with a cube on one side only.

Claim 13 states that any volume ``V`` of unit cubes has surface at
least ``2d * |V|^((d-1)/d)``.  The proof goes through projections and
the Loomis–Whitney / Shearer entropy inequality:

1. ``surface(V) >= 2 * sum_{|I|=d-1} |pi_I(V)|``                (eq. 1)
2. ``|V|^(d-1)  <= prod_{|I|=d-1} |pi_I(V)|``                   (eq. 5)
3. AM–GM combines the two into the claim.

This module implements all three quantities exactly so that the chain
of inequalities can be verified computationally on arbitrary volumes
(benchmark E6 and the property tests do exactly that).
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterable, List, Set, Tuple

from repro.types import Node

#: A set of lattice points interpreted as unit cubes.
Volume = Set[Node]


def _as_volume(cells: Iterable[Node]) -> Volume:
    volume = set(cells)
    if not volume:
        return volume
    dims = {len(cell) for cell in volume}
    if len(dims) != 1:
        raise ValueError(f"volume mixes dimensions: {sorted(dims)}")
    return volume


def volume_dimension(cells: Iterable[Node]) -> int:
    """Return the dimension of a non-empty volume's cells."""
    volume = _as_volume(cells)
    if not volume:
        raise ValueError("empty volume has no dimension")
    return len(next(iter(volume)))


def surface_size(cells: Iterable[Node]) -> int:
    """Exact surface area of a volume of unit cubes.

    Counts every face ``(cell, axis, sign)`` whose neighboring cell in
    that signed axis direction is not part of the volume.  An isolated
    cube in dimension ``d`` has surface ``2d``.
    """
    volume = _as_volume(cells)
    if not volume:
        return 0
    dimension = len(next(iter(volume)))
    surface = 0
    for cell in volume:
        for axis in range(dimension):
            for sign in (1, -1):
                shifted = list(cell)
                shifted[axis] += sign
                if tuple(shifted) not in volume:
                    surface += 1
    return surface


def projection(cells: Iterable[Node], axes: Tuple[int, ...]) -> Set[Tuple[int, ...]]:
    """Project a volume onto the given subset of axes (``pi_I`` in the paper).

    Returns the set of distinct images; its size is ``|pi_I(V)|``.
    """
    return {tuple(cell[a] for a in axes) for cell in cells}


def projection_sizes(cells: Iterable[Node]) -> Dict[FrozenSet[int], int]:
    """Sizes of all ``(d-1)``-dimensional projections of the volume.

    Returns a mapping from the axis set ``I`` (as a frozenset of the
    ``d-1`` retained axes) to ``|pi_I(V)|``.
    """
    volume = _as_volume(cells)
    if not volume:
        return {}
    dimension = len(next(iter(volume)))
    sizes: Dict[FrozenSet[int], int] = {}
    for axes in itertools.combinations(range(dimension), dimension - 1):
        sizes[frozenset(axes)] = len(projection(volume, axes))
    return sizes


def isoperimetric_lower_bound(volume_size: int, dimension: int) -> float:
    """The Claim 13 lower bound ``2d * V^((d-1)/d)`` on the surface."""
    if volume_size < 0:
        raise ValueError(f"volume size must be >= 0, got {volume_size}")
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    if volume_size == 0:
        return 0.0
    return 2 * dimension * volume_size ** ((dimension - 1) / dimension)


def verify_claim_13(cells: Iterable[Node]) -> Tuple[int, float, bool]:
    """Check Claim 13 on a concrete volume.

    Returns ``(surface, lower_bound, holds)`` where ``holds`` is True
    when ``surface >= 2d * |V|^((d-1)/d)`` (up to floating-point slack).
    """
    volume = _as_volume(cells)
    if not volume:
        return (0, 0.0, True)
    dimension = len(next(iter(volume)))
    surface = surface_size(volume)
    bound = isoperimetric_lower_bound(len(volume), dimension)
    return (surface, bound, surface >= bound - 1e-9)


def verify_projection_surface_bound(cells: Iterable[Node]) -> Tuple[int, int, bool]:
    """Check equation (1): ``surface(V) >= 2 * sum |pi_I(V)|``.

    Every point of a ``(d-1)``-dimensional projection contributes a
    bottom and a top face along the projected-out axis, so the surface
    dominates twice the sum of projection sizes.
    """
    volume = _as_volume(cells)
    if not volume:
        return (0, 0, True)
    surface = surface_size(volume)
    projections_total = sum(projection_sizes(volume).values())
    return (surface, 2 * projections_total, surface >= 2 * projections_total)


def verify_projection_product_bound(cells: Iterable[Node]) -> Tuple[int, int, bool]:
    """Check equation (5) (Loomis–Whitney / Shearer):
    ``|V|^(d-1) <= prod |pi_I(V)|``.

    Returns ``(lhs, rhs, holds)`` with exact integer arithmetic.
    """
    volume = _as_volume(cells)
    if not volume:
        return (0, 1, True)
    dimension = len(next(iter(volume)))
    lhs = len(volume) ** (dimension - 1)
    rhs = 1
    for size in projection_sizes(volume).values():
        rhs *= size
    return (lhs, rhs, lhs <= rhs)


def box_volume(corner: Node, sides: Tuple[int, ...]) -> Volume:
    """Build an axis-aligned box volume: the cells ``corner + [0, sides)``.

    Useful as the extremal (surface-minimizing) shape in tests: a cube
    of side ``s`` in dimension ``d`` has volume ``s^d`` and surface
    ``2d * s^(d-1)``, meeting Claim 13 with equality.
    """
    if len(corner) != len(sides):
        raise ValueError("corner and sides must have the same dimension")
    if any(s < 1 for s in sides):
        raise ValueError(f"all box sides must be >= 1, got {sides}")
    ranges = [range(c, c + s) for c, s in zip(corner, sides)]
    return set(itertools.product(*ranges))


def connected_components(cells: Iterable[Node]) -> List[Volume]:
    """Split a volume into face-connected components.

    Two cells are connected when they differ by one in a single axis.
    The surface of a volume is the sum of its components' surfaces, a
    fact the property tests exercise.
    """
    remaining = _as_volume(cells)
    components: List[Volume] = []
    while remaining:
        seed = next(iter(remaining))
        stack = [seed]
        remaining.discard(seed)
        component = {seed}
        dimension = len(seed)
        while stack:
            cell = stack.pop()
            for axis in range(dimension):
                for sign in (1, -1):
                    shifted = list(cell)
                    shifted[axis] += sign
                    neighbor = tuple(shifted)
                    if neighbor in remaining:
                        remaining.discard(neighbor)
                        component.add(neighbor)
                        stack.append(neighbor)
        components.append(component)
    return components
