"""Mesh topology substrate.

Implements the d-dimensional mesh network of Section 2.1 of the paper:
nodes are d-dimensional vectors over ``{1, ..., n}`` (Definition 1),
arcs come in ``2d`` signed axis *directions* (Definition 3), and the
*2-neighbor* relation (Definition 4) partitions the mesh into ``2^d``
equivalence classes, each isomorphic to an ``(n/2)^d`` mesh.

The :mod:`repro.mesh.geometry` module provides the unit-cube volume and
surface machinery used by the isoperimetric inequality (Claim 13).
"""

from repro.mesh.coordinates import (
    is_adjacent,
    l1_distance,
    offset_vector,
)
from repro.mesh.directions import Direction, all_directions
from repro.mesh.geometry import (
    isoperimetric_lower_bound,
    projection_sizes,
    surface_size,
    verify_claim_13,
    verify_projection_product_bound,
)
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.mesh.two_neighbors import (
    are_two_neighbors,
    equivalence_class_label,
    equivalence_classes,
    two_neighbor,
    two_neighbors_of,
)

__all__ = [
    "Direction",
    "Hypercube",
    "Mesh",
    "Torus",
    "all_directions",
    "are_two_neighbors",
    "equivalence_class_label",
    "equivalence_classes",
    "is_adjacent",
    "isoperimetric_lower_bound",
    "l1_distance",
    "offset_vector",
    "projection_sizes",
    "surface_size",
    "two_neighbor",
    "two_neighbors_of",
    "verify_claim_13",
    "verify_projection_product_bound",
]
