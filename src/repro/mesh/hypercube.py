"""The binary hypercube: the related-work topology.

Much of the hot-potato literature the paper builds on lives on the
hypercube: Borodin–Hopcroft's original greedy algorithm [BH], Prager's
analysis [Pr], Hajek's ``2k + n`` bound [Haj], Greenberg–Hajek [GH],
and Szymanski's optical study [Sz].  The ``n``-dimensional hypercube
has ``2^n`` nodes (all 0/1 vectors of length ``n``); two nodes are
adjacent when they differ in exactly one coordinate.

Implemented as a :class:`~repro.mesh.topology.Mesh` subtype with
``side = 2``, so the whole engine/algorithm/validator stack applies
unchanged: the hypercube *is* the ``2^d`` mesh — every coordinate axis
offers exactly one useful direction per node, every node is a corner,
and the degree is uniformly ``d``.  The subclass adds the
hypercube-specific vocabulary (bit addressing, Hamming distance) and
tightens the documentation of good directions: a packet's good
directions are exactly the axes where its current address disagrees
with its destination.
"""

from __future__ import annotations

from typing import Iterator, List

from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node


class Hypercube(Mesh):
    """The ``2^dimension``-node binary hypercube.

    Nodes are tuples over ``{1, 2}`` (the mesh convention; use
    :meth:`from_bits` / :meth:`to_bits` to convert to 0/1 addresses).
    Distance is Hamming distance, the diameter is ``dimension``, and
    every node has degree ``dimension``.
    """

    kind = "hypercube"

    def __init__(self, dimension: int) -> None:
        super().__init__(dimension, 2)

    # ------------------------------------------------------------------
    # Bit addressing
    # ------------------------------------------------------------------

    @staticmethod
    def from_bits(bits: int, dimension: int) -> Node:
        """Node for an integer address (bit ``i`` = coordinate ``i``)."""
        if not 0 <= bits < 2**dimension:
            raise ValueError(
                f"address {bits} out of range for dimension {dimension}"
            )
        return tuple(1 + (bits >> axis & 1) for axis in range(dimension))

    @staticmethod
    def to_bits(node: Node) -> int:
        """Integer address of a node."""
        value = 0
        for axis, coordinate in enumerate(node):
            if coordinate not in (1, 2):
                raise ValueError(f"{node} is not a hypercube node")
            value |= (coordinate - 1) << axis
        return value

    def node_of(self, bits: int) -> Node:
        """Node for an integer address on *this* cube."""
        return self.from_bits(bits, self.dimension)

    # ------------------------------------------------------------------
    # Hypercube-flavored queries
    # ------------------------------------------------------------------

    @property
    def diameter(self) -> int:
        """``dimension`` (Hamming diameter) — equals ``d*(n-1)`` with n=2."""
        return self.dimension

    def hamming_distance(self, a: Node, b: Node) -> int:
        """Number of differing coordinates (== the L1 mesh distance)."""
        return self.distance(a, b)

    def differing_axes(self, a: Node, b: Node) -> List[int]:
        """Axes where the two addresses disagree.

        These are exactly the axes of the good directions of a packet
        at ``a`` destined for ``b``: flipping any one of them advances.
        """
        return [axis for axis in range(self.dimension) if a[axis] != b[axis]]

    def flip(self, node: Node, axis: int) -> Node:
        """The neighbor across ``axis`` (always exists on the cube)."""
        if not 0 <= axis < self.dimension:
            raise ValueError(f"axis {axis} out of range")
        sign = 1 if node[axis] == 1 else -1
        moved = self.neighbor(node, Direction(axis, sign))
        assert moved is not None
        return moved

    def addresses(self) -> Iterator[int]:
        """All integer addresses, 0 .. 2^dimension - 1."""
        return iter(range(2**self.dimension))
