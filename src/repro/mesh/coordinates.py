"""Coordinate arithmetic on d-dimensional lattice points.

Nodes of the mesh are plain tuples of integers (see
:data:`repro.types.Node`).  The functions here implement the L1 metric
the paper uses throughout: the distance between two mesh nodes is
``sum(|a_i - b_i|)`` (Section 2.1).
"""

from __future__ import annotations

from typing import Sequence

from repro.types import Node


def l1_distance(a: Node, b: Node) -> int:
    """Return the L1 (Manhattan) distance between two lattice points.

    This equals the length of a shortest path between the corresponding
    nodes in the mesh.

    Raises:
        ValueError: if the points have different dimensions.
    """
    if len(a) != len(b):
        raise ValueError(
            f"dimension mismatch: {len(a)}-dim point vs {len(b)}-dim point"
        )
    return sum(abs(x - y) for x, y in zip(a, b))


def offset_vector(a: Node, b: Node) -> Node:
    """Return the component-wise offset ``b - a``.

    The offset determines the *good directions* of a packet at ``a``
    destined for ``b``: axis ``i`` is good in the ``+`` direction when
    the offset's ``i``-th entry is positive, and in the ``-`` direction
    when it is negative.
    """
    if len(a) != len(b):
        raise ValueError(
            f"dimension mismatch: {len(a)}-dim point vs {len(b)}-dim point"
        )
    return tuple(y - x for x, y in zip(a, b))


def is_adjacent(a: Node, b: Node) -> bool:
    """Return True when the two points are mesh-adjacent.

    Per Definition 1, there is an arc between nodes exactly when their
    L1 distance is one.
    """
    return l1_distance(a, b) == 1


def in_box(point: Node, side: int) -> bool:
    """Return True when every coordinate of ``point`` lies in ``{1..side}``."""
    return all(1 <= x <= side for x in point)


def validate_node(point: Sequence[int], dimension: int, side: int) -> Node:
    """Validate and normalize a node specification.

    Accepts any integer sequence, checks dimension and bounds, and
    returns it as a tuple suitable for hashing.

    Raises:
        ValueError: when the point is outside the ``{1..side}^dimension`` box.
    """
    node = tuple(int(x) for x in point)
    if len(node) != dimension:
        raise ValueError(
            f"node {node} has dimension {len(node)}, expected {dimension}"
        )
    if not in_box(node, side):
        raise ValueError(
            f"node {node} outside mesh box {{1..{side}}}^{dimension}"
        )
    return node
