"""Flat arc-index tables: the mesh exported as dense integer arrays.

The object kernel resolves adjacency through per-node
:class:`~repro.mesh.topology.NodeArcs` tables — one Python object per
node, one dict lookup per query.  Array kernels
(:mod:`repro.core.soa`) want the same information as flat integer
columns indexed by a *node index* so that neighbor resolution, good
directions and distances become table gathers.  :class:`ArcTables`
is that export:

* nodes are numbered ``0 .. N-1`` in :meth:`Mesh.nodes` order
  (lexicographic), so sorting node indices numerically reproduces the
  object kernel's sorted node-tuple visit order;
* directions are numbered ``0 .. 2d-1`` in the canonical axis-major,
  ``+`` before ``-`` order (direction ``k`` is ``directions[k]``, its
  opposite is ``k ^ 1``);
* per-axis *packed tables* fold each axis' contribution to a packet's
  distance and good-direction set into one integer,
  ``(distance << 2d) | good_mask``, so summing ``d`` gathers yields
  both at once.  This packing is valid because on every mesh family in
  the library (box mesh, torus, hypercube) goodness and distance
  factor per axis; the tables are built by *probing* the mesh's own
  :meth:`~repro.mesh.topology.Mesh.good_directions_tuple` and
  :meth:`~repro.mesh.topology.Mesh.distance` on nodes that differ in a
  single coordinate, so subclass overrides (torus wraparound) are
  honored by construction.

This module is deliberately numpy-free: the mesh layer has no optional
dependencies.  Array backends convert the plain lists to their own
array types and may cache those views on the instance (see
:attr:`ArcTables.backend_views`).

Tables depend only on the topology *shape*, so they are shared
process-wide through :func:`arc_tables_for`, keyed by
``(type, dimension, side)`` — benchmark code that builds a fresh mesh
per run still hits warm tables.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import TYPE_CHECKING, Any, Dict, List, Optional, Tuple

from repro.mesh.directions import Direction
from repro.types import Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.mesh.topology import Mesh

__all__ = [
    "ArcTables",
    "TABLE_CACHE_LIMIT",
    "arc_tables_for",
    "direction_index",
]


def direction_index(direction: Direction) -> int:
    """The canonical integer index of a direction (``opposite == k ^ 1``)."""
    return 2 * direction.axis + (0 if direction.sign > 0 else 1)


class ArcTables:
    """Dense integer tables describing one mesh shape.

    Attributes:
        dimension, side, num_nodes: the shape.
        num_directions: ``2 * dimension``.
        shift: bit position of the distance field in packed entries.
        good_mask_all: mask selecting the good-direction bits.
        directions: the mesh's canonical direction tuple (index ``k``
            is the direction with :func:`direction_index` ``k``).
        index_node: node tuple per node index (lexicographic order).
        node_index: node tuple -> node index.
        neighbor_flat: length ``N * 2d``; entry ``n * 2d + k`` is the
            node index of the neighbor of node ``n`` in direction ``k``,
            or ``-1`` when that arc leaves the mesh.
        out_mask: per node, bitmask of directions with an outgoing arc.
        degrees: per node, the number of outgoing arcs.
        coords: per axis, the (1-based) coordinate of each node index.
        packed: per axis, a ``(side+1) ** 2`` table indexed by
            ``here * (side+1) + dest`` holding
            ``(axis_distance << shift) | axis_good_mask``; summing the
            ``d`` per-axis entries of a (node, destination) pair gives
            the packet's full distance and good-direction mask.
    """

    def __init__(self, mesh: "Mesh") -> None:
        dimension = mesh.dimension
        side = mesh.side
        self.dimension = dimension
        self.side = side
        self.num_directions = 2 * dimension
        self.shift = 2 * dimension
        self.good_mask_all = (1 << self.shift) - 1
        self.directions: Tuple[Direction, ...] = mesh.directions

        nodes: List[Node] = list(mesh.nodes())
        self.num_nodes = len(nodes)
        self.index_node: List[Node] = nodes
        self.node_index: Dict[Node, int] = {
            node: index for index, node in enumerate(nodes)
        }

        neighbor_flat: List[int] = []
        out_mask: List[int] = []
        degrees: List[int] = []
        for node in nodes:
            mask = 0
            for k, direction in enumerate(self.directions):
                other = mesh.neighbor(node, direction)
                if other is None:
                    neighbor_flat.append(-1)
                else:
                    neighbor_flat.append(self.node_index[other])
                    mask |= 1 << k
            out_mask.append(mask)
            degrees.append(mask.bit_count())
        self.neighbor_flat = neighbor_flat
        self.out_mask = out_mask
        self.degrees = degrees

        self.coords: List[List[int]] = [
            [node[axis] for node in nodes] for axis in range(dimension)
        ]

        # Probe the mesh itself along one axis at a time, so torus
        # wraparound (or any per-axis-factoring override) lands in the
        # tables by construction rather than by reimplementation.
        base = nodes[0]
        shift = self.shift
        packed: List[List[int]] = []
        for axis in range(dimension):
            table = [0] * ((side + 1) * (side + 1))
            for here in range(1, side + 1):
                probe = tuple(
                    here if i == axis else base[i] for i in range(dimension)
                )
                row = here * (side + 1)
                for there in range(1, side + 1):
                    target = tuple(
                        there if i == axis else base[i]
                        for i in range(dimension)
                    )
                    mask = 0
                    for direction in mesh.good_directions_tuple(
                        probe, target
                    ):
                        mask |= 1 << direction_index(direction)
                    table[row + there] = (
                        mesh.distance(probe, target) << shift
                    ) | mask
            packed.append(table)
        self.packed = packed

        #: Opaque cache slot for array backends (e.g. numpy views of
        #: the lists above).  The mesh layer never touches it.
        self.backend_views: Optional[Dict[str, Any]] = None


#: Upper bound on the number of shapes the process-wide table cache
#: retains.  A campaign sweeping many topologies touches one
#: :class:`ArcTables` per distinct ``(type, dimension, side)`` shape;
#: each table holds ``O(N * d)`` integers, which for large meshes is
#: megabytes.  32 shapes is far beyond what any single sweep interleaves
#: (campaign workers sort cases so same-shape cases run consecutively)
#: while keeping worst-case retention bounded.  Read at call time so
#: tests can shrink it via monkeypatch.
TABLE_CACHE_LIMIT = 32

#: Process-wide table cache.  Tables are pure derived data keyed by the
#: topology shape, so sharing them across mesh instances is safe and
#: keeps repeated engine construction (benchmark loops, sweeps) from
#: rebuilding ``O(N * d)`` tables every run.  Ordered for LRU eviction:
#: least-recently-used shape is dropped once more than
#: :data:`TABLE_CACHE_LIMIT` shapes are live.
_TABLE_CACHE: "OrderedDict[Tuple[type, int, int], ArcTables]" = OrderedDict()


def arc_tables_for(mesh: "Mesh") -> ArcTables:
    """The shared :class:`ArcTables` for a mesh's shape (LRU-cached)."""
    key = (type(mesh), mesh.dimension, mesh.side)
    tables = _TABLE_CACHE.get(key)
    if tables is None:
        tables = ArcTables(mesh)
        _TABLE_CACHE[key] = tables
    else:
        _TABLE_CACHE.move_to_end(key)
    while len(_TABLE_CACHE) > TABLE_CACHE_LIMIT:
        _TABLE_CACHE.popitem(last=False)
    return tables
