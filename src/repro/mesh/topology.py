"""The d-dimensional mesh network (Definition 1 of the paper).

A :class:`Mesh` is the ``n^d``-node graph whose nodes are all
d-dimensional vectors over ``{1, ..., n}``, with an arc between two
nodes exactly when their L1 distance is one.  Links are bidirectional,
modeled as a pair of antiparallel arcs, and at most one packet can
traverse a directed arc per synchronous step.

The class also implements the packet-centric vocabulary of
Definition 5: *good* and *bad* arcs/directions of a packet relative to
its destination, and the *restricted* predicate (exactly one good
direction) from Section 4.1.
"""

from __future__ import annotations

import itertools
from typing import (
    TYPE_CHECKING,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.mesh.coordinates import l1_distance, validate_node
from repro.mesh.directions import Direction, all_directions
from repro.types import Arc, Node

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from repro.mesh.tables import ArcTables


class NodeArcs:
    """Precomputed adjacency of one node: the per-node arc table.

    Instances are built once per (mesh, node) and cached on the mesh,
    so the engine's hot loop resolves neighbors, out-directions and
    degrees with plain attribute reads instead of recomputing
    bounds checks every step.

    Attributes:
        out_directions: directions with an arc out of the node, in the
            mesh's canonical direction order.
        neighbors: neighbor per direction index (``None`` off-mesh),
            aligned with :attr:`Mesh.directions`.
        by_direction: direction -> neighbor for existing arcs only.
        degree: number of (bidirectional) links at the node.
    """

    __slots__ = ("out_directions", "neighbors", "by_direction", "degree")

    def __init__(
        self,
        out_directions: Tuple[Direction, ...],
        neighbors: Tuple[Optional[Node], ...],
        by_direction: Dict[Direction, Node],
    ) -> None:
        self.out_directions = out_directions
        self.neighbors = neighbors
        self.by_direction = by_direction
        self.degree = len(out_directions)


class Mesh:
    """A synchronous d-dimensional ``n^d`` mesh network.

    Args:
        dimension: the dimension ``d >= 1``.
        side: the side length ``n >= 2``; the mesh has ``n**d`` nodes.

    The mesh is immutable; all methods are pure queries.  Instances
    compare equal when they describe the same topology.
    """

    #: Human-readable topology family name, overridden by subclasses.
    kind: str = "mesh"

    def __init__(self, dimension: int, side: int) -> None:
        if dimension < 1:
            raise ValueError(f"dimension must be >= 1, got {dimension}")
        if side < 2:
            raise ValueError(f"side must be >= 2, got {side}")
        self._dimension = dimension
        self._side = side
        self._directions: Tuple[Direction, ...] = tuple(
            all_directions(dimension)
        )
        # (node, destination) -> good directions.  The topology is
        # immutable and the same queries repeat every step of a
        # simulation, so an unbounded per-instance memo is safe and a
        # large win on the engine's hot path.
        self._good_cache: Dict[
            Tuple[Node, Node], Tuple[Direction, ...]
        ] = {}
        # node -> NodeArcs, filled lazily by node_arcs(); shared across
        # every run on this mesh instance.
        self._arc_cache: Dict[Node, NodeArcs] = {}

    def __getstate__(self) -> Dict[str, object]:
        # The memo caches can be large and are pure derived data; drop
        # them so meshes pickle small (process-pool case specs).
        state = self.__dict__.copy()
        state["_good_cache"] = {}
        state["_arc_cache"] = {}
        return state

    # ------------------------------------------------------------------
    # Basic shape
    # ------------------------------------------------------------------

    @property
    def dimension(self) -> int:
        """The dimension ``d`` of the mesh."""
        return self._dimension

    @property
    def side(self) -> int:
        """The side length ``n`` of the mesh."""
        return self._side

    @property
    def num_nodes(self) -> int:
        """Total number of nodes, ``n**d``."""
        return self._side**self._dimension

    @property
    def diameter(self) -> int:
        """Graph diameter, ``d * (n - 1)`` for the mesh."""
        return self._dimension * (self._side - 1)

    @property
    def max_degree(self) -> int:
        """Degree of an interior node, ``2d``."""
        return 2 * self._dimension

    @property
    def directions(self) -> Tuple[Direction, ...]:
        """The ``2d`` arc directions, in deterministic order."""
        return self._directions

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Mesh):
            return NotImplemented
        return (
            type(self) is type(other)
            and self._dimension == other._dimension
            and self._side == other._side
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._dimension, self._side))

    def __repr__(self) -> str:
        return f"{type(self).__name__}(dimension={self._dimension}, side={self._side})"

    # ------------------------------------------------------------------
    # Nodes and adjacency
    # ------------------------------------------------------------------

    def nodes(self) -> Iterator[Node]:
        """Iterate over all nodes in lexicographic order."""
        return itertools.product(
            range(1, self._side + 1), repeat=self._dimension
        )

    def contains(self, node: Node) -> bool:
        """Return True when ``node`` is a node of this mesh."""
        return len(node) == self._dimension and all(
            1 <= x <= self._side for x in node
        )

    def validate_node(self, point: Sequence[int]) -> Node:
        """Normalize a coordinate sequence to a node, or raise ValueError."""
        return validate_node(point, self._dimension, self._side)

    def neighbor(self, node: Node, direction: Direction) -> Optional[Node]:
        """Return the neighbor of ``node`` in ``direction``, or None.

        None is returned when the arc would leave the mesh (the node
        lies on the corresponding face of the box).
        """
        moved = direction.apply(node)
        return moved if self.contains(moved) else None

    def node_arcs(self, node: Node) -> NodeArcs:
        """The node's precomputed arc table (see :class:`NodeArcs`).

        Built on first use via the (possibly subclass-overridden)
        :meth:`neighbor` and cached for the lifetime of the mesh, so
        repeated adjacency queries — the engine makes them for every
        occupied node every step — cost a single dict lookup.
        """
        arcs = self._arc_cache.get(node)
        if arcs is None:
            neighbors = tuple(
                self.neighbor(node, direction)
                for direction in self._directions
            )
            out = tuple(
                direction
                for direction, other in zip(self._directions, neighbors)
                if other is not None
            )
            by_direction = {
                direction: other
                for direction, other in zip(self._directions, neighbors)
                if other is not None
            }
            arcs = NodeArcs(out, neighbors, by_direction)
            self._arc_cache[node] = arcs
        return arcs

    def build_arc_tables(self) -> None:
        """Eagerly build the arc table of every node.

        :meth:`node_arcs` fills the cache lazily, which is right for
        sparse workloads; long sweeps that will touch the whole mesh
        anyway can call this once to move the cost out of the first
        simulation steps.
        """
        for node in self.nodes():
            self.node_arcs(node)

    def arc_tables(self) -> "ArcTables":
        """Flat integer arc/goodness/distance tables for array kernels.

        The returned :class:`~repro.mesh.tables.ArcTables` is shared
        process-wide between meshes of the same shape (the tables are
        pure derived data); see :mod:`repro.mesh.tables` for the
        layout contract.
        """
        from repro.mesh.tables import arc_tables_for

        return arc_tables_for(self)

    def neighbors(self, node: Node) -> List[Node]:
        """All nodes adjacent to ``node``."""
        return [
            other
            for other in self.node_arcs(node).neighbors
            if other is not None
        ]

    def out_directions(self, node: Node) -> List[Direction]:
        """Directions in which an arc actually leaves ``node``."""
        return list(self.node_arcs(node).out_directions)

    def out_arcs(self, node: Node) -> List[Arc]:
        """All arcs leaving ``node``."""
        arcs = self.node_arcs(node)
        return [(node, arcs.by_direction[d]) for d in arcs.out_directions]

    def in_arcs(self, node: Node) -> List[Arc]:
        """All arcs entering ``node``.

        Because every link is bidirectional these are the reverses of
        :meth:`out_arcs`, hence in-degree equals out-degree everywhere.
        """
        return [(head, tail) for (tail, head) in self.out_arcs(node)]

    def degree(self, node: Node) -> int:
        """Number of (bidirectional) links at ``node``.

        Between ``d`` (corner) and ``2d`` (interior) for the mesh.
        """
        return self.node_arcs(node).degree

    def arcs(self) -> Iterator[Arc]:
        """Iterate over every directed arc of the mesh."""
        for node in self.nodes():
            yield from self.out_arcs(node)

    def is_arc(self, arc: Arc) -> bool:
        """Return True when ``arc`` is a directed arc of this mesh."""
        tail, head = arc
        if not (self.contains(tail) and self.contains(head)):
            return False
        return any(
            self.neighbor(tail, direction) == head
            for direction in self._directions
        )

    # ------------------------------------------------------------------
    # Distances and packet-centric queries (Definition 5)
    # ------------------------------------------------------------------

    def distance(self, a: Node, b: Node) -> int:
        """Length of a shortest path between two nodes (L1 distance)."""
        return l1_distance(a, b)

    @property
    def unit_deflections(self) -> bool:
        """True when every non-good hop increases every packet's
        distance to its destination by exactly one.

        On the box mesh (and the hypercube) a hop against or past the
        destination along an axis always costs one, so the engine's
        fast path may track distances incrementally.  Meshes that break
        the invariant — the odd-side torus, where a bad hop out of a
        maximal per-axis offset wraps to an equally short way around —
        override this to ``False`` and the fast path recomputes the
        distance after each deflection.
        """
        return True

    def good_directions_tuple(
        self, node: Node, destination: Node
    ) -> Tuple[Direction, ...]:
        """Memoized good directions as a shared, immutable tuple.

        This is the zero-copy accessor the engine's hot path and
        :class:`~repro.core.node_view.NodeView` use; callers must not
        rely on identity, only on contents.
        """
        key = (node, destination)
        cached = self._good_cache.get(key)
        if cached is None:
            cached = self._good_directions_uncached(node, destination)
            self._good_cache[key] = cached
        return cached

    def _good_directions_uncached(
        self, node: Node, destination: Node
    ) -> Tuple[Direction, ...]:
        """Compute good directions arithmetically (mesh memo-miss path).

        On the box mesh, moving toward a valid destination coordinate
        can never leave the box, so the good directions are exactly the
        axes where the coordinates differ — no neighbor or distance
        queries needed.  Subclasses with different adjacency (the
        torus) override this; the result must list directions in the
        canonical axis-major, ``+`` before ``-`` order.
        """
        directions = self._directions
        good = []
        axis2 = 0
        for a, b in zip(node, destination):
            if b > a:
                good.append(directions[axis2])
            elif b < a:
                good.append(directions[axis2 + 1])
            axis2 += 2
        return tuple(good)

    def good_directions(self, node: Node, destination: Node) -> List[Direction]:
        """Directions whose arc takes a packet at ``node`` closer to
        ``destination`` (Definition 5).

        A direction with no arc out of ``node`` (off the mesh edge) is
        never good.  Results are memoized (the topology is immutable);
        callers receive a fresh list each time.
        """
        return list(self.good_directions_tuple(node, destination))

    def bad_directions(self, node: Node, destination: Node) -> List[Direction]:
        """Directions that are not good for a packet at ``node`` destined
        for ``destination`` — either they contain a bad arc or no arc at
        all (Definition 5)."""
        good = set(self.good_directions(node, destination))
        return [d for d in self._directions if d not in good]

    def good_arcs(self, node: Node, destination: Node) -> List[Arc]:
        """Arcs out of ``node`` that enter a node closer to ``destination``."""
        arcs: List[Arc] = []
        for direction in self.good_directions(node, destination):
            successor = self.neighbor(node, direction)
            # A good direction always has an arc (Definition 5).
            assert successor is not None
            arcs.append((node, successor))
        return arcs

    def num_good_directions(self, node: Node, destination: Node) -> int:
        """Number of good directions of a packet at ``node``."""
        return len(self.good_directions_tuple(node, destination))

    def is_restricted(self, node: Node, destination: Node) -> bool:
        """True when a packet at ``node`` has exactly one good direction.

        This is the *restricted packet* predicate of Section 4.1
        (stated there for the 2-D mesh; the same definition is used by
        the d-dimensional generalization's finest priority class).
        """
        return len(self.good_directions_tuple(node, destination)) == 1

    def is_good_arc(self, arc: Arc, destination: Node) -> bool:
        """True when traversing ``arc`` strictly decreases the distance
        to ``destination``."""
        tail, head = arc
        return self.distance(head, destination) < self.distance(tail, destination)

    # ------------------------------------------------------------------
    # Convenience
    # ------------------------------------------------------------------

    def corner(self, which: int = 0) -> Node:
        """Return one of the ``2**d`` corner nodes.

        ``which`` is interpreted as a bitmask: bit ``i`` set means
        coordinate ``i`` is ``n``, otherwise ``1``.
        """
        if not 0 <= which < 2**self._dimension:
            raise ValueError(
                f"corner index {which} out of range for dimension {self._dimension}"
            )
        return tuple(
            self._side if which >> axis & 1 else 1
            for axis in range(self._dimension)
        )

    def center(self) -> Node:
        """A node as close to the geometric center as possible."""
        mid = (self._side + 1) // 2
        return (mid,) * self._dimension
