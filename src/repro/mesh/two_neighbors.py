"""The 2-neighbor relation (Definition 4 of the paper).

Node ``b`` is a *2-neighbor* of node ``a`` in direction ``X`` when
there is a path of length 2 from ``a`` to ``b`` using only arcs in
direction ``X`` — i.e., ``b`` is two hops away along a single axis.

The transitive closure of this symmetric relation is an equivalence
relation that splits the ``n^d`` mesh into ``2^d`` classes, one per
parity pattern of the coordinates; each class is isomorphic to a
``(n/2)^d`` mesh when ``n`` is even.  The potential-function analysis
uses these classes to turn bad-node sets into solid volumes whose
surfaces are counted by Claim 13 (see :mod:`repro.mesh.geometry`).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node


def two_neighbor(
    mesh: Mesh, node: Node, direction: Direction
) -> Optional[Node]:
    """Return the 2-neighbor of ``node`` in ``direction``, or None.

    None means the two-hop path in that direction leaves the mesh (the
    node is within one hop of the boundary face).  On a torus the
    result always exists.
    """
    first = mesh.neighbor(node, direction)
    if first is None:
        return None
    return mesh.neighbor(first, direction)


def two_neighbors_of(mesh: Mesh, node: Node) -> List[Node]:
    """All 2-neighbors of ``node`` (up to ``2d`` of them)."""
    result = []
    for direction in mesh.directions:
        other = two_neighbor(mesh, node, direction)
        if other is not None:
            result.append(other)
    return result


def are_two_neighbors(mesh: Mesh, a: Node, b: Node) -> bool:
    """True when ``b`` is a 2-neighbor of ``a`` (a symmetric relation).

    Per the paper's example, ``(1, 2)`` and ``(3, 2)`` are 2-neighbors
    but ``(2, 3)`` and ``(3, 2)`` are not: the connecting paths of
    length 2 must use two arcs of the *same* direction.
    """
    return b in two_neighbors_of(mesh, a)


def equivalence_class_label(node: Node) -> Tuple[int, ...]:
    """Parity label identifying the node's 2-neighbor equivalence class.

    Two mesh nodes are in the same class of the transitive closure of
    the 2-neighbor relation exactly when all their coordinates agree in
    parity, so the label is the per-coordinate parity vector.
    """
    return tuple(x % 2 for x in node)


def equivalence_classes(mesh: Mesh) -> Dict[Tuple[int, ...], List[Node]]:
    """Partition the mesh into its ``2^d`` 2-neighbor classes.

    Returns a mapping from parity label to the sorted list of member
    nodes.  For even ``n`` each class has exactly ``(n/2)^d`` members.
    """
    classes: Dict[Tuple[int, ...], List[Node]] = {}
    for node in mesh.nodes():
        classes.setdefault(equivalence_class_label(node), []).append(node)
    for members in classes.values():
        members.sort()
    return classes


def class_coordinates(node: Node) -> Node:
    """Map a node to its coordinates within its equivalence class.

    Within a class, 2-neighbors are adjacent; halving (with rounding)
    each coordinate yields a point of the ``ceil(n/2)^d`` class mesh
    such that class adjacency becomes ordinary mesh adjacency.
    """
    return tuple((x + 1) // 2 for x in node)
