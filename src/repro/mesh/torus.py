"""The d-dimensional torus: a mesh with wraparound links.

The paper's results are stated for the mesh, but several of the related
algorithms it discusses (Feige–Raghavan, Bar-Noy et al., Kaklamanis et
al.) are defined on the torus, so the baseline suite supports it.  The
torus is node-symmetric: every node has degree exactly ``2d``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node


class Torus(Mesh):
    """A d-dimensional ``n^d`` torus.

    Identical to :class:`Mesh` except that coordinate ``n`` is adjacent
    to coordinate ``1`` along every axis, and distances are computed
    with wraparound.  With ``side == 2`` the wrap link would duplicate
    the direct link, so ``side >= 3`` is required.
    """

    kind = "torus"

    def __init__(self, dimension: int, side: int) -> None:
        if side < 3:
            raise ValueError(
                f"torus side must be >= 3 to avoid duplicate links, got {side}"
            )
        super().__init__(dimension, side)

    @property
    def diameter(self) -> int:
        """Graph diameter, ``d * floor(n / 2)`` for the torus."""
        return self.dimension * (self.side // 2)

    def neighbor(self, node: Node, direction: Direction) -> Optional[Node]:
        """Return the neighbor in ``direction``, wrapping around the box."""
        moved = list(node)
        moved[direction.axis] += direction.sign
        if moved[direction.axis] > self.side:
            moved[direction.axis] = 1
        elif moved[direction.axis] < 1:
            moved[direction.axis] = self.side
        return tuple(moved)

    @property
    def unit_deflections(self) -> bool:
        """Even-side tori keep the ±1-per-hop distance invariant; with
        odd ``n`` a bad hop out of a maximal per-axis offset
        ``(n - 1) / 2`` wraps to an equally long way around, leaving
        the distance *unchanged*, so incremental tracking is inexact.
        """
        return self.side % 2 == 0

    def distance(self, a: Node, b: Node) -> int:
        """Shortest-path distance with per-axis wraparound."""
        if len(a) != len(b):
            raise ValueError("dimension mismatch in torus distance")
        total = 0
        for x, y in zip(a, b):
            straight = abs(x - y)
            total += min(straight, self.side - straight)
        return total

    def out_directions(self, node: Node) -> List[Direction]:
        """Every direction has an arc on the torus."""
        return list(self.directions)

    def degree(self, node: Node) -> int:
        """Every torus node has full degree ``2d``."""
        return 2 * self.dimension

    def _good_directions_uncached(
        self, node: Node, destination: Node
    ) -> Tuple[Direction, ...]:
        """Wraparound-aware good directions (memo-miss path).

        Per axis the packet may travel straight or around the wrap; the
        shorter way is good, and at the exact midpoint (even ``n``,
        offset ``n/2``) *both* directions reduce the wrapped distance.
        """
        directions = self.directions
        n = self.side
        good = []
        axis2 = 0
        for a, b in zip(node, destination):
            if a != b:
                straight = abs(a - b)
                wrap = n - straight
                toward_plus = b > a
                if (straight <= wrap) if toward_plus else (wrap <= straight):
                    good.append(directions[axis2])
                if (wrap <= straight) if toward_plus else (straight <= wrap):
                    good.append(directions[axis2 + 1])
            axis2 += 2
        return tuple(good)
