"""Directions in the d-dimensional mesh (Definition 3 of the paper).

Every arc of the mesh changes exactly one coordinate by one, so the
arcs partition into ``2d`` *directions*: for each axis ``i`` there is a
``+`` direction (arcs increasing coordinate ``i``) and a ``-``
direction (arcs decreasing it).  A :class:`Direction` names one of
these classes; applying it to a node yields the node one hop away in
that direction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.types import Arc, Node


@dataclass(frozen=True, order=True)
class Direction:
    """One of the ``2d`` arc directions of a d-dimensional mesh.

    Attributes:
        axis: zero-based coordinate index this direction changes.
        sign: ``+1`` for the "+" direction, ``-1`` for the "-" direction.
    """

    axis: int
    sign: int

    def __post_init__(self) -> None:
        if self.axis < 0:
            raise ValueError(f"axis must be non-negative, got {self.axis}")
        if self.sign not in (-1, 1):
            raise ValueError(f"sign must be +1 or -1, got {self.sign}")
        # Directions key the hot dicts of the engine and the matching
        # code (assignments, adjacency, seen-sets), so the hash is
        # precomputed once instead of re-tupling (axis, sign) per call.
        object.__setattr__(self, "_hash", hash((self.axis, self.sign)))

    @property
    def opposite(self) -> "Direction":
        """The antiparallel direction on the same axis."""
        return Direction(self.axis, -self.sign)

    def apply(self, node: Node) -> Node:
        """Return the lattice point one hop from ``node`` in this direction.

        The result is *not* bounds-checked; use
        :meth:`repro.mesh.topology.Mesh.contains` to test whether it is
        still inside a particular mesh.
        """
        if self.axis >= len(node):
            raise ValueError(
                f"direction axis {self.axis} out of range for "
                f"{len(node)}-dimensional node {node}"
            )
        moved = list(node)
        moved[self.axis] += self.sign
        return tuple(moved)

    def arc_from(self, node: Node) -> Arc:
        """Return the arc leaving ``node`` in this direction."""
        return (node, self.apply(node))

    def __str__(self) -> str:
        sign = "+" if self.sign > 0 else "-"
        return f"{sign}x{self.axis}"


def _direction_hash(self: Direction) -> int:
    return self._hash  # type: ignore[attr-defined]


def _direction_eq(self: Direction, other: object) -> object:
    if self is other:
        return True
    if other.__class__ is Direction:
        return self.axis == other.axis and self.sign == other.sign
    return NotImplemented


# Installed after class creation: @dataclass(frozen=True) would
# otherwise replace them with generated versions that build a fresh
# (axis, sign) tuple on every call — measurable on the engine's hot
# path, where directions are compared and hashed per packet per step.
Direction.__hash__ = _direction_hash  # type: ignore[assignment]
Direction.__eq__ = _direction_eq  # type: ignore[assignment]


def all_directions(dimension: int) -> List[Direction]:
    """Return the ``2d`` directions of a d-dimensional mesh.

    The order is deterministic: axis-major, "+" before "-", so that
    tie-breaking rules built on this order are reproducible.
    """
    if dimension < 1:
        raise ValueError(f"dimension must be >= 1, got {dimension}")
    return [
        Direction(axis, sign)
        for axis in range(dimension)
        for sign in (1, -1)
    ]


def direction_of_arc(arc: Arc) -> Direction:
    """Return the direction an arc belongs to.

    Raises:
        ValueError: when ``arc`` does not connect two adjacent lattice
            points (i.e., it is not a mesh arc).
    """
    tail, head = arc
    if len(tail) != len(head):
        raise ValueError(f"arc endpoints differ in dimension: {arc}")
    diffs = [
        (axis, head[axis] - tail[axis])
        for axis in range(len(tail))
        if head[axis] != tail[axis]
    ]
    if len(diffs) != 1 or abs(diffs[0][1]) != 1:
        raise ValueError(f"{arc} is not an arc between adjacent nodes")
    axis, delta = diffs[0]
    return Direction(axis, 1 if delta > 0 else -1)


def directions_toward(origin: Node, target: Node) -> Iterator[Direction]:
    """Yield the directions that take ``origin`` strictly closer to ``target``.

    For the mesh (no wraparound) these are exactly the *good
    directions* of a packet at ``origin`` destined for ``target``
    (Definition 5), provided the moved-to node exists; boundary
    handling is the topology's job.
    """
    if len(origin) != len(target):
        raise ValueError("origin and target differ in dimension")
    for axis, (a, b) in enumerate(zip(origin, target)):
        if b > a:
            yield Direction(axis, 1)
        elif b < a:
            yield Direction(axis, -1)


def signed_axis_offsets(origin: Node, target: Node) -> Tuple[int, ...]:
    """Return per-axis signs of the offset from ``origin`` to ``target``.

    Each entry is ``+1``, ``-1`` or ``0``.  The number of non-zero
    entries equals the number of good directions of a mesh packet.
    """
    return tuple(
        (1 if b > a else -1) if b != a else 0
        for a, b in zip(origin, target)
    )
