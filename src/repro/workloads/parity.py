"""Parity splitting (the Remark after Theorem 20).

On the mesh, a packet at a node of coordinate-sum parity ``p`` at time
``t`` is at parity ``1 - p`` at time ``t + 1``: every hop flips the
parity.  Hence packets whose *origins* have different parities can
never occupy the same node at the same time — a routing problem splits
into two completely independent subproblems.

The Remark uses this to sharpen Theorem 20: a full one-per-node load
(``k = n^2``) splits into two batches of ``n^2 / 2`` packets, giving
``8*sqrt(2)*n*sqrt(n^2/2) = 8n^2``; a four-per-node load gives
``16n^2``, within a factor eight of the trivial lower bound.

:func:`split_by_origin_parity` performs the split and the integration
tests verify the non-interference claim literally: routing the two
halves together or separately yields identical traces.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.core.problem import RoutingProblem
from repro.types import Node


def origin_parity(node: Node) -> int:
    """Coordinate-sum parity of a node (0 or 1)."""
    return sum(node) % 2


def split_by_origin_parity(
    problem: RoutingProblem,
) -> Tuple[RoutingProblem, RoutingProblem]:
    """Split a problem into the even- and odd-origin subproblems.

    Returns ``(even, odd)``; the two never interact when routed
    simultaneously on the mesh (every step flips every packet's node
    parity, so the origin parity classes stay disjoint forever).
    """
    even_indices: List[int] = []
    odd_indices: List[int] = []
    for index, request in enumerate(problem.requests):
        if origin_parity(request.source) == 0:
            even_indices.append(index)
        else:
            odd_indices.append(index)
    base = problem.name or "problem"
    return (
        problem.subproblem(even_indices, name=f"{base}-even"),
        problem.subproblem(odd_indices, name=f"{base}-odd"),
    )


def parity_is_invariant(problem: RoutingProblem) -> bool:
    """True when the mesh preserves the parity-flip argument.

    The argument needs every arc to flip coordinate-sum parity, which
    holds on the mesh but *fails* on tori with odd side (the wrap arc
    jumps parity by ``side - 1``).
    """
    mesh = problem.mesh
    if mesh.kind == "mesh":
        return True
    return mesh.side % 2 == 0
