"""Permutation workloads.

In permutation routing every node is the origin and the destination of
at most one packet — the classical benchmark regime of Sections 1.1
and 6 ([NS2], [KLS], [FR], [BCS]).  Besides uniformly random
permutations this module provides the structured hard cases of the
mesh-routing literature: transpose, reversal, and bit-reversal.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Tuple

from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.types import Node


def random_permutation(
    mesh: Mesh,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """A uniformly random full permutation (``k = n^d`` packets).

    Fixed points are kept: a node mapped to itself contributes a
    zero-distance packet, delivered at time 0.
    """
    rng = make_rng(seed)
    nodes = list(mesh.nodes())
    destinations = list(nodes)
    rng.shuffle(destinations)
    pairs = list(zip(nodes, destinations))
    return RoutingProblem.from_pairs(mesh, pairs, name=name or "random-perm")


def partial_random_permutation(
    mesh: Mesh,
    k: int,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """A random partial permutation with exactly ``k`` packets.

    ``k`` distinct sources and ``k`` distinct destinations, matched at
    random — the sparse-permutation regime of the Section 6 open
    problem (``k << n^d``).
    """
    nodes = list(mesh.nodes())
    if k > len(nodes):
        raise ConfigurationError(
            f"k={k} exceeds the number of nodes {len(nodes)}"
        )
    rng = make_rng(seed)
    sources = rng.sample(nodes, k)
    destinations = rng.sample(nodes, k)
    return RoutingProblem.from_pairs(
        mesh, zip(sources, destinations), name=name or f"partial-perm-k{k}"
    )


def _mapped_permutation(
    mesh: Mesh, mapping: Callable[[Node], Node], name: str
) -> RoutingProblem:
    pairs: List[Tuple[Node, Node]] = []
    for node in mesh.nodes():
        image = mapping(node)
        if not mesh.contains(image):
            raise ConfigurationError(
                f"permutation maps {node} outside the mesh to {image}"
            )
        pairs.append((node, image))
    return RoutingProblem.from_pairs(mesh, pairs, name=name)


def transpose(mesh: Mesh) -> RoutingProblem:
    """The transpose permutation: reverse each node's coordinates.

    A classical congestion driver on 2-D meshes (all traffic crosses
    the diagonal).
    """
    return _mapped_permutation(
        mesh, lambda node: tuple(reversed(node)), "transpose"
    )


def reversal(mesh: Mesh) -> RoutingProblem:
    """The point-reflection permutation ``x -> n + 1 - x`` per axis.

    Every packet travels through the center region; total distance is
    maximal among permutations, making it the natural stress case for
    Theorem 20's full-load remark.
    """
    side = mesh.side
    return _mapped_permutation(
        mesh, lambda node: tuple(side + 1 - x for x in node), "reversal"
    )


def bit_reversal(mesh: Mesh) -> RoutingProblem:
    """Bit-reversal permutation per axis (requires ``n`` a power of two).

    The canonical adversary of oblivious routers: coordinates are
    mapped by reversing their ``log2(n)``-bit representation.
    """
    side = mesh.side
    bits = side.bit_length() - 1
    if 2**bits != side:
        raise ConfigurationError(
            f"bit-reversal needs a power-of-two side, got {side}"
        )

    def reverse_coordinate(x: int) -> int:
        value = x - 1
        reversed_value = 0
        for _ in range(bits):
            reversed_value = (reversed_value << 1) | (value & 1)
            value >>= 1
        return reversed_value + 1

    return _mapped_permutation(
        mesh,
        lambda node: tuple(reverse_coordinate(x) for x in node),
        "bit-reversal",
    )
