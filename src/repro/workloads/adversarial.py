"""Adversarial and congestion-heavy workloads.

Deterministic batches designed to create the bad-node volumes the
potential analysis is about: quadrant floods (a dense region sending
across the mesh), corner-to-corner storms (maximal distances), and
column collapses (the ``m`` packets-per-column regime of [BRST]).
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.types import Node


def quadrant_flood(
    mesh: Mesh,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """Every node of the low quadrant sends to a random node of the
    opposite quadrant.

    All traffic funnels through the center, producing a persistent
    blob of bad nodes — the richest workload for the surface-arc
    experiments (E5, E7).
    """
    rng = make_rng(seed)
    half = mesh.side // 2
    if half < 1:
        raise ConfigurationError("quadrant flood needs side >= 2")
    low = [
        node for node in mesh.nodes() if all(x <= half for x in node)
    ]
    high = [
        node for node in mesh.nodes() if all(x > half for x in node)
    ]
    pairs = [(source, rng.choice(high)) for source in low]
    return RoutingProblem.from_pairs(mesh, pairs, name=name or "quadrant-flood")


def corner_storm(
    mesh: Mesh,
    packets_per_corner: int = 1,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """From each corner, packets to the opposite corner.

    Every packet has the maximal distance ``d(n-1)``; all shortest
    paths cross the center.  ``packets_per_corner`` must not exceed
    the corner degree ``d``.
    """
    d = mesh.dimension
    if not 1 <= packets_per_corner <= d:
        raise ConfigurationError(
            f"packets_per_corner must be in 1..{d}, got {packets_per_corner}"
        )
    pairs: List[Tuple[Node, Node]] = []
    for which in range(2**d):
        corner = mesh.corner(which)
        opposite = mesh.corner((2**d - 1) ^ which)
        pairs.extend([(corner, opposite)] * packets_per_corner)
    return RoutingProblem.from_pairs(mesh, pairs, name=name or "corner-storm")


def column_collapse(
    mesh: Mesh,
    target_column: Optional[int] = None,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """Every node sends to its row's node in one target column (2-D).

    The maximum number of packets destined to a single column is
    ``n`` per row node times... in fact all ``n^2`` packets — the
    worst case ``m = n^2 / n`` regime of the [BRST] ``O(n*sqrt(m))``
    bound discussed in Section 1.1.
    """
    if mesh.dimension != 2:
        raise ConfigurationError("column collapse is a 2-D workload")
    column = target_column if target_column is not None else (mesh.side + 1) // 2
    if not 1 <= column <= mesh.side:
        raise ConfigurationError(
            f"target column {column} outside 1..{mesh.side}"
        )
    pairs = []
    for node in mesh.nodes():
        destination = (node[0], column)
        if node != destination:
            pairs.append((node, destination))
    return RoutingProblem.from_pairs(
        mesh, pairs, name=name or f"column-collapse-{column}"
    )


def cross_traffic(
    mesh: Mesh,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """Horizontal and vertical full-span flows crossing at the center (2-D).

    Row ends exchange packets along rows while column ends exchange
    along columns; the two flows interleave at every interior node.
    """
    if mesh.dimension != 2:
        raise ConfigurationError("cross traffic is a 2-D workload")
    side = mesh.side
    pairs: List[Tuple[Node, Node]] = []
    for row in range(1, side + 1):
        pairs.append(((row, 1), (row, side)))
        pairs.append(((row, side), (row, 1)))
    for col in range(1, side + 1):
        pairs.append(((1, col), (side, col)))
        pairs.append(((side, col), (1, col)))
    return RoutingProblem.from_pairs(mesh, pairs, name=name or "cross-traffic")
