"""Random many-to-many workloads.

The generic workload of the paper's main theorems: ``k`` packets with
random origins (respecting the out-degree capacity of Section 2) and
independent random destinations.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.types import Node


def max_packets(mesh: Mesh) -> int:
    """Largest batch the mesh can host at time 0
    (sum of node out-degrees)."""
    return sum(mesh.degree(node) for node in mesh.nodes())


def random_many_to_many(
    mesh: Mesh,
    k: int,
    seed: RngLike = 0,
    *,
    exclude_trivial: bool = True,
    name: Optional[str] = None,
) -> RoutingProblem:
    """``k`` packets, origins capacity-respecting, destinations uniform.

    Args:
        exclude_trivial: redraw destinations equal to the source, so
            every packet actually has to move (the paper's bounds are
            trivially insensitive to zero-distance packets).

    Raises:
        ConfigurationError: when ``k`` exceeds the mesh's injection
            capacity.
    """
    capacity = max_packets(mesh)
    if k > capacity:
        raise ConfigurationError(
            f"k={k} exceeds the mesh injection capacity {capacity}"
        )
    rng = make_rng(seed)
    nodes = list(mesh.nodes())
    used: Counter = Counter()
    pairs: List[Tuple[Node, Node]] = []
    while len(pairs) < k:
        source = rng.choice(nodes)
        if used[source] >= mesh.degree(source):
            continue
        destination = rng.choice(nodes)
        if exclude_trivial and destination == source:
            continue
        used[source] += 1
        pairs.append((source, destination))
    return RoutingProblem.from_pairs(
        mesh, pairs, name=name or f"random-k{k}"
    )


def saturated_load(
    mesh: Mesh,
    per_node: int,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """Every node originates ``per_node`` packets to random destinations.

    ``per_node = 1`` is the full load of the Remark after Theorem 20
    (``k = n^2`` in 2-D, bound ``8 n^2``); ``per_node = 4`` on an
    interior-heavy mesh approaches the ``16 n^2`` case.  Nodes whose
    degree is below ``per_node`` (corners, edges) originate only as
    many packets as they can.
    """
    if per_node < 1:
        raise ValueError(f"per_node must be >= 1, got {per_node}")
    rng = make_rng(seed)
    nodes = list(mesh.nodes())
    pairs: List[Tuple[Node, Node]] = []
    for node in nodes:
        count = min(per_node, mesh.degree(node))
        for _ in range(count):
            destination = rng.choice(nodes)
            while destination == node:
                destination = rng.choice(nodes)
            pairs.append((node, destination))
    return RoutingProblem.from_pairs(
        mesh, pairs, name=name or f"saturated-{per_node}x"
    )
