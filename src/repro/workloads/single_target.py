"""Single-target (hot-spot) workloads.

All ``k`` packets share one destination — the regime of [BTS] and
[BNS] discussed in Section 6.1, with lower bound ``d_max + k`` on the
2-D mesh.  The destination node itself can absorb at most ``2d``
packets per step, so hot spots maximize sustained contention and bad
nodes around the target: the richest source of surface-arc activity
for the Lemma 12/14 experiments.
"""

from __future__ import annotations

from collections import Counter
from typing import List, Optional, Tuple

from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.types import Node


def single_target(
    mesh: Mesh,
    k: int,
    target: Optional[Node] = None,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """``k`` packets from random distinct-capacity origins to one target.

    Args:
        target: destination node; defaults to the mesh center.
    """
    destination = target if target is not None else mesh.center()
    if not mesh.contains(destination):
        raise ConfigurationError(f"target {destination} is not a mesh node")
    rng = make_rng(seed)
    nodes = [node for node in mesh.nodes() if node != destination]
    capacity = sum(mesh.degree(node) for node in nodes)
    if k > capacity:
        raise ConfigurationError(
            f"k={k} exceeds the non-target injection capacity {capacity}"
        )
    used: Counter = Counter()
    pairs: List[Tuple[Node, Node]] = []
    while len(pairs) < k:
        source = rng.choice(nodes)
        if used[source] >= mesh.degree(source):
            continue
        used[source] += 1
        pairs.append((source, destination))
    return RoutingProblem.from_pairs(
        mesh, pairs, name=name or f"single-target-k{k}"
    )


def ring_of_sources(
    mesh: Mesh,
    radius: int,
    target: Optional[Node] = None,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """One packet from every node at exactly ``radius`` from the target.

    A deterministic hot spot: all packets are equidistant, so every
    absorption step leaves a maximally contended frontier.
    """
    destination = target if target is not None else mesh.center()
    if not mesh.contains(destination):
        raise ConfigurationError(f"target {destination} is not a mesh node")
    if radius < 1:
        raise ValueError(f"radius must be >= 1, got {radius}")
    sources = [
        node
        for node in mesh.nodes()
        if mesh.distance(node, destination) == radius
    ]
    if not sources:
        raise ConfigurationError(
            f"no nodes at distance {radius} from {destination}"
        )
    pairs = [(source, destination) for source in sources]
    return RoutingProblem.from_pairs(
        mesh, pairs, name=name or f"ring-r{radius}"
    )
