"""Workload generators.

Many-to-many random batches, permutations (random, transpose,
reversal, bit-reversal), single-target hot spots, sparse and clustered
regimes, adversarial congestion patterns, and the parity-splitting
machinery behind the Remark after Theorem 20.
"""

from repro.workloads.adversarial import (
    column_collapse,
    corner_storm,
    cross_traffic,
    quadrant_flood,
)
from repro.workloads.parity import (
    origin_parity,
    parity_is_invariant,
    split_by_origin_parity,
)
from repro.workloads.permutations import (
    bit_reversal,
    partial_random_permutation,
    random_permutation,
    reversal,
    transpose,
)
from repro.workloads.random_uniform import (
    max_packets,
    random_many_to_many,
    saturated_load,
)
from repro.workloads.single_target import ring_of_sources, single_target
from repro.workloads.sparse import local_cluster, scattered_sparse

__all__ = [
    "bit_reversal",
    "column_collapse",
    "corner_storm",
    "cross_traffic",
    "local_cluster",
    "max_packets",
    "origin_parity",
    "parity_is_invariant",
    "partial_random_permutation",
    "quadrant_flood",
    "random_many_to_many",
    "random_permutation",
    "reversal",
    "ring_of_sources",
    "saturated_load",
    "scattered_sparse",
    "single_target",
    "split_by_origin_parity",
    "transpose",
]
