"""Sparse workloads: ``k << n^d``.

Section 6 poses improving the bound for sparse batches as an open
problem; these generators produce the regimes the discussion cares
about — few packets scattered far apart, and few packets packed into a
small subregion (where the local congestion is high even though the
global load is tiny).
"""

from __future__ import annotations

from typing import Optional

from repro.core.problem import RoutingProblem
from repro.core.rng import RngLike, make_rng
from repro.exceptions import ConfigurationError
from repro.mesh.topology import Mesh
from repro.workloads.random_uniform import random_many_to_many


def scattered_sparse(
    mesh: Mesh,
    k: int,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """``k`` random packets with ``k`` capped at 5% of the node count.

    A thin wrapper over :func:`random_many_to_many` that *enforces*
    sparsity, so experiment code cannot accidentally densify the
    sweep.
    """
    limit = max(1, mesh.num_nodes // 20)
    if k > limit:
        raise ConfigurationError(
            f"scattered_sparse requires k <= {limit} (5% of nodes), got {k}"
        )
    return random_many_to_many(
        mesh, k, seed, name=name or f"sparse-k{k}"
    )


def local_cluster(
    mesh: Mesh,
    k: int,
    box_side: int,
    seed: RngLike = 0,
    *,
    name: Optional[str] = None,
) -> RoutingProblem:
    """``k`` packets whose sources *and* destinations lie in one
    ``box_side^d`` corner box.

    Distances are at most ``d * (box_side - 1)``, so the trivial lower
    bound is small — the regime where the Section 6 discussion notes
    the isoperimetric inequality (and hence the whole bound) improves
    rapidly.  Deflections may still push packets outside the box.
    """
    if not 2 <= box_side <= mesh.side:
        raise ConfigurationError(
            f"box_side must be in 2..{mesh.side}, got {box_side}"
        )
    rng = make_rng(seed)
    box_nodes = [
        node for node in mesh.nodes() if all(x <= box_side for x in node)
    ]
    capacity = sum(mesh.degree(node) for node in box_nodes)
    if k > capacity:
        raise ConfigurationError(
            f"k={k} exceeds the box injection capacity {capacity}"
        )
    used = {node: 0 for node in box_nodes}
    pairs = []
    while len(pairs) < k:
        source = rng.choice(box_nodes)
        if used[source] >= mesh.degree(source):
            continue
        destination = rng.choice(box_nodes)
        if destination == source:
            continue
        used[source] += 1
        pairs.append((source, destination))
    return RoutingProblem.from_pairs(
        mesh, pairs, name=name or f"cluster-b{box_side}-k{k}"
    )
