"""The Section 5 d-dimensional algorithm class.

For meshes of dimension ``d > 2`` the paper generalizes "prefers
restricted packets" to "prefers packets with fewer good directions",
and additionally requires the algorithm to *maximize the number of
advancing packets* at every node (Section 5).  This policy implements
exactly that: priority is the number of good directions (fewest
first), settled by maximum matching — which the engine's
:class:`~repro.core.validation.MaxAdvanceValidator` re-checks at every
node.

The paper derives (via the generalized potential, detailed in [Hal]
and [BHS]) an upper bound of ``4^(d+1-1/d) · d^(1-1/d) · k^(1/d) ·
n^(d-1)`` steps for this class; benchmark E9 measures this policy
against that bound.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.base import GreedyMatchingPolicy
from repro.core.node_view import NodeView
from repro.core.packet import Packet


class FewestGoodDirectionsPolicy(GreedyMatchingPolicy):
    """Greedy routing preferring packets with fewer good directions.

    In two dimensions this refines :class:`RestrictedPriorityPolicy`
    (restricted packets have one good direction, so they still beat
    everyone), hence it also satisfies Definition 18; in higher
    dimensions it is the natural member of the Section 5 class.

    Within a good-direction count, packets that advanced in the
    previous step win (the type-A flavor generalized), then the
    tie-break applies.
    """

    name = "fewest-good-directions"
    declares_restricted_priority = True

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        advanced_while_scarce = (
            packet.restricted_last_step and packet.advanced_last_step
        )
        return (view.num_good(packet), 0 if advanced_while_scarce else 1)
