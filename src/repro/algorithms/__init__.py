"""Routing algorithms.

The paper's Section 4 algorithm class (greedy, prefers restricted
packets), its Section 5 d-dimensional generalization, the plain and
randomized greedy strawmen, the fixed-priority and destination-order
greedy baselines from the related work, the single-target specialist,
the buffered dimension-order structured comparator, and the
adversarial schedule machinery behind the livelock demonstrations.
"""

from repro.algorithms.adversarial import (
    BlockingGreedyPolicy,
    SchedulePolicy,
    StepSchedule,
    livelock_instance,
    schedule_from_moves,
)
from repro.algorithms.base import (
    DEFLECTION_RULES,
    TIE_BREAKS,
    GreedyMatchingPolicy,
    deflect,
)
from repro.algorithms.brassil_cruz import (
    DestinationOrderPolicy,
    brassil_cruz_time_bound,
    snake_order,
    snake_walk_length,
)
from repro.algorithms.dimension_order import (
    DimensionOrderPolicy,
    dimension_order_direction,
)
from repro.algorithms.hajek import FixedPriorityPolicy, fixed_priority_time_bound
from repro.algorithms.max_advance import FewestGoodDirectionsPolicy
from repro.algorithms.plain_greedy import (
    MaximalGreedyPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
)
from repro.algorithms.registry import (
    available_policies,
    make_policy,
    register_policy,
)
from repro.algorithms.random_rank import RandomRankPolicy
from repro.algorithms.restricted import RestrictedPriorityPolicy
from repro.algorithms.single_target import (
    ClosestFirstPolicy,
    single_target_time_bound,
)

__all__ = [
    "DEFLECTION_RULES",
    "TIE_BREAKS",
    "BlockingGreedyPolicy",
    "ClosestFirstPolicy",
    "DestinationOrderPolicy",
    "DimensionOrderPolicy",
    "FewestGoodDirectionsPolicy",
    "FixedPriorityPolicy",
    "GreedyMatchingPolicy",
    "MaximalGreedyPolicy",
    "PlainGreedyPolicy",
    "RandomRankPolicy",
    "RandomizedGreedyPolicy",
    "RestrictedPriorityPolicy",
    "SchedulePolicy",
    "StepSchedule",
    "available_policies",
    "brassil_cruz_time_bound",
    "deflect",
    "dimension_order_direction",
    "fixed_priority_time_bound",
    "livelock_instance",
    "make_policy",
    "register_policy",
    "schedule_from_moves",
    "single_target_time_bound",
    "snake_order",
    "snake_walk_length",
]
