"""Dimension-order store-and-forward routing (structured baseline).

The classical "XY" routing the paper's introduction contrasts greedy
hot-potato routing with: every packet follows the unique dimension-by-
dimension shortest path (fix axis 0 first, then axis 1, ...), waiting
in a buffer whenever its next link is busy.  Deterministic, oblivious,
deadlock-free on meshes — and exhibiting exactly the "overstructuring"
costs Section 1 describes: packets near their destination can still be
delayed behind unrelated traffic, and buffers grow with congestion.

Runs under :class:`~repro.core.buffered_engine.BufferedEngine`; the
comparison benchmark (E10) reports both time and the peak buffer
occupancy that hot-potato routing avoids by construction.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import Assignment, BufferedPolicy
from repro.mesh.directions import Direction


def dimension_order_direction(view: NodeView, packet: Packet) -> Optional[Direction]:
    """The unique next direction under dimension-order routing.

    Returns None when the packet is at its destination (it should have
    been absorbed already).
    """
    node = view.node
    destination = packet.destination
    for axis in range(len(node)):
        if node[axis] < destination[axis]:
            return Direction(axis, 1)
        if node[axis] > destination[axis]:
            return Direction(axis, -1)
    return None


class DimensionOrderPolicy(BufferedPolicy):
    """Buffered XY (dimension-order) routing.

    Each step, for every outgoing link, the lowest-id packet wanting
    that link is sent; all other packets wait in the node buffer.
    """

    name = "dimension-order"

    def forward(self, view: NodeView) -> Assignment:
        chosen: Dict[Direction, Packet] = {}
        for packet in view.packets:  # already sorted by id
            direction = dimension_order_direction(view, packet)
            if direction is None:
                continue
            if direction not in chosen:
                chosen[direction] = packet
        return {packet.id: direction for direction, packet in chosen.items()}
