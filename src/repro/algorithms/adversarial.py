"""Adversarial greedy schedules — the livelock demonstrations.

Section 1.2 of the paper: "it is rather easy to come up with a
livelock situation whenever greediness is the only routing policy
[NS1], [Haj]".  Greediness (Definition 6) constrains *which sets* of
packets advance, but not who wins a conflict or where losers are
deflected; an adversary controlling those choices can keep a
configuration cycling forever.

This module provides :class:`SchedulePolicy`: a policy that replays a
precomputed per-step assignment table, folding time onto a cycle.  The
tables themselves are found by the exhaustive searcher in
:mod:`repro.analysis.livelock`, which explores the *nondeterministic*
greedy transition graph of a configuration and extracts a reachable
state cycle.  Crucially, the engine still runs the
:class:`~repro.core.validation.GreedyValidator` against the replayed
schedule — so the livelock run is certified greedy step by step.
"""

from __future__ import annotations

from typing import Dict, Mapping, Tuple

from repro.core.node_view import NodeView
from repro.core.policy import Assignment, RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import Node, PacketId

#: One step of a schedule: per-node packet-to-direction assignments.
StepSchedule = Mapping[Node, Mapping[PacketId, Direction]]


class SchedulePolicy(RoutingPolicy):
    """Replay a fixed per-step assignment table, looping a suffix.

    Args:
        schedule: assignments for steps ``0 .. len(schedule) - 1``.
        loop_start: step index where the cycle begins.  Steps beyond
            the table fold back as
            ``loop_start + (t - loop_start) % (len(schedule) - loop_start)``.
            Pass ``loop_start = len(schedule)`` for a non-looping
            schedule (useful to replay a finite recorded run).

    The policy declares greediness so that the engine validates every
    replayed step against Definition 6 — a schedule that is not
    actually greedy fails fast instead of "demonstrating" a bogus
    livelock.
    """

    name = "adversarial-schedule"
    declares_greedy = True

    def __init__(
        self, schedule: Tuple[StepSchedule, ...], loop_start: int
    ) -> None:
        if not 0 <= loop_start <= len(schedule):
            raise ValueError(
                f"loop_start {loop_start} outside schedule of length "
                f"{len(schedule)}"
            )
        self.schedule = tuple(schedule)
        self.loop_start = loop_start

    def _fold(self, step: int) -> int:
        if step < len(self.schedule):
            return step
        cycle = len(self.schedule) - self.loop_start
        if cycle <= 0:
            raise KeyError(
                f"step {step} beyond non-looping schedule of length "
                f"{len(self.schedule)}"
            )
        return self.loop_start + (step - self.loop_start) % cycle

    def assign(self, view: NodeView) -> Assignment:
        step_schedule = self.schedule[self._fold(view.step)]
        try:
            node_assignment = step_schedule[view.node]
        except KeyError:
            raise KeyError(
                f"schedule has no entry for node {view.node} at step "
                f"{view.step} (folded {self._fold(view.step)})"
            ) from None
        return dict(node_assignment)


#: Clockwise rotation order of the 2-D directions: east, south, west,
#: north (axis 1 is the column, axis 0 the row, rows grow downward).
_CLOCKWISE = (
    Direction(1, 1),   # east
    Direction(0, 1),   # south
    Direction(1, -1),  # west
    Direction(0, -1),  # north
)


class BlockingGreedyPolicy(RoutingPolicy):
    """A uniform, deterministic, *perverse* greedy policy (2-D mesh).

    Every node applies the same simple rule in every step — this is a
    legitimate hot-potato algorithm in the paper's model — yet the rule
    is chosen adversarially:

    1. packets with **more** good directions act first (the exact
       opposite of Definition 18's restricted-packet priority);
    2. an acting packet takes, among its free good directions, the one
       **most demanded** by the other packets at the node (maximal
       blocking), ties resolved clockwise;
    3. packets whose good directions are all taken are deflected to
       the first free arc scanning **clockwise from their first good
       direction**.

    Step 3 starts from a first-fit *maximal* matching, so the policy
    satisfies Definition 6 (greedy) at every node — the engine's
    validator confirms it.  On :func:`livelock_instance` it enters a
    period-2 state cycle and never delivers a single packet, realizing
    the Section 1.2 observation that greediness alone does not
    guarantee termination.  Giving priority to restricted packets
    (Definition 18) breaks exactly rule 1, and indeed
    :class:`~repro.algorithms.restricted.RestrictedPriorityPolicy`
    routes the same instance in a handful of steps.
    """

    name = "blocking-greedy"
    declares_greedy = True

    def assign(self, view: NodeView) -> Assignment:
        if view.mesh.dimension != 2:
            raise ValueError("BlockingGreedyPolicy is defined for 2-D meshes")
        ordered = sorted(
            view.packets, key=lambda p: (-view.num_good(p), p.id)
        )
        taken: Dict[Direction, PacketId] = {}
        assignment: Assignment = {}
        unmatched = []
        for packet in ordered:
            free_good = [
                d for d in view.good_directions(packet) if d not in taken
            ]
            if not free_good:
                unmatched.append(packet)
                continue
            demand = {
                d: sum(
                    1
                    for other in view.packets
                    if other.id != packet.id
                    and d in view.good_directions(other)
                )
                for d in free_good
            }
            best = max(
                free_good,
                key=lambda d: (demand[d], -_CLOCKWISE.index(d)),
            )
            taken[best] = packet.id
            assignment[packet.id] = best
        out_directions = set(view.out_directions)
        for packet in unmatched:
            good = view.good_directions(packet)
            start = _CLOCKWISE.index(good[0]) if good else 0
            for offset in range(1, len(_CLOCKWISE) + 1):
                candidate = _CLOCKWISE[(start + offset) % len(_CLOCKWISE)]
                if candidate in out_directions and candidate not in taken:
                    taken[candidate] = packet.id
                    assignment[packet.id] = candidate
                    break
        return assignment


def livelock_instance(mesh: Mesh = None) -> RoutingProblem:
    """The 8-packet greedy livelock configuration.

    Four *oscillating pairs* sit on the 2x2 block with corners
    ``(1,1), (1,2), (2,2), (2,1)`` (clockwise: A, B, C, D).  Both
    packets of the A-B pair are destined to C, both of the B-C pair to
    D, the C-D pair to A, and the D-A pair to B.  In every step, at
    every block node, the two-good-direction packet advances through
    the unique good arc of the restricted one, which is deflected
    clockwise around the block; two steps later the configuration
    repeats exactly.  Every step is greedy (Definition 6) — the
    deflected packet's only good arc *is* in use by an advancing
    packet — but a non-restricted packet deflects a restricted one,
    which Definition 18 forbids; restricted-priority policies route
    the instance in a few steps.
    """
    if mesh is None:
        mesh = Mesh(dimension=2, side=3)
    if mesh.dimension != 2 or mesh.side < 3 or mesh.kind != "mesh":
        raise ValueError(
            "the livelock instance needs a 2-D mesh of side >= 3"
        )
    a, b, c, d = (1, 1), (1, 2), (2, 2), (2, 1)
    pairs = [
        (a, c),  # p:  oscillates A-B, destined C
        (b, c),  # p': oscillates B-A, destined C
        (b, d),  # q:  oscillates B-C, destined D
        (c, d),  # q': oscillates C-B, destined D
        (c, a),  # r:  oscillates C-D, destined A
        (d, a),  # r': oscillates D-C, destined A
        (d, b),  # s:  oscillates D-A, destined B
        (a, b),  # s': oscillates A-D, destined B
    ]
    return RoutingProblem.from_pairs(mesh, pairs, name="livelock-8")


def schedule_from_moves(
    moves_per_step: Tuple[Dict[PacketId, Tuple[Node, Direction]], ...],
    loop_start: int,
) -> SchedulePolicy:
    """Build a :class:`SchedulePolicy` from per-step packet moves.

    ``moves_per_step[t]`` maps each packet id to ``(node, direction)``:
    where the packet is at time ``t`` and which direction it takes.
    This is the natural output format of the livelock searcher.
    """
    schedule = []
    for moves in moves_per_step:
        per_node: Dict[Node, Dict[PacketId, Direction]] = {}
        for packet_id, (node, direction) in moves.items():
            per_node.setdefault(node, {})[packet_id] = direction
        schedule.append(per_node)
    return SchedulePolicy(tuple(schedule), loop_start)
