"""The paper's Section 4 algorithm class: greedy, prefers restricted packets.

A packet is *restricted* when it has exactly one good direction
(Section 4.1).  An algorithm *prefers restricted packets*
(Definition 18) when a non-restricted packet can never deflect a
restricted one.  Theorem 20 shows every greedy algorithm in this class
routes any k-packet problem on the n x n mesh within ``8·sqrt(2)·n·sqrt(k)``
steps.

This policy realizes the class with a three-level priority:

1. restricted packets of one type (A by default),
2. restricted packets of the other type,
3. non-restricted packets,

resolved by maximum matching (see :mod:`repro.algorithms.base`).
Restricted packets have a single good direction, so matching them
first guarantees Definition 18; the paper's potential function is
indifferent to which restricted type wins a conflict (the "switch"
rule 3(b) of Section 4.2), so ``prefer_type_a`` is exposed purely to
let the tests exercise both branches of the potential update.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.base import GreedyMatchingPolicy
from repro.core.node_view import NodeView
from repro.core.packet import Packet, RestrictedType


class RestrictedPriorityPolicy(GreedyMatchingPolicy):
    """Greedy hot-potato routing preferring restricted packets.

    This is the algorithm family analyzed in Section 4 of the paper;
    attach :class:`~repro.potential.restricted.RestrictedPotential` to
    a run to observe the potential argument behind Theorem 20 live.

    Args:
        prefer_type_a: when True (default), a type-A restricted packet
            beats a type-B one competing for the same arc, so the
            potential's switch rule 3(b) fires rarely; when False the
            preference is inverted and 3(b) fires whenever an A/B
            conflict occurs.  Both choices are valid members of the
            analyzed class.
        tie_break, deflection: see :class:`GreedyMatchingPolicy`.
    """

    name = "restricted-priority"
    declares_restricted_priority = True

    def __init__(
        self,
        prefer_type_a: bool = True,
        tie_break: str = "id",
        deflection: str = "ordered",
    ) -> None:
        super().__init__(tie_break=tie_break, deflection=deflection)
        self.prefer_type_a = prefer_type_a

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        kind = view.restricted_type(packet)
        if kind is RestrictedType.UNRESTRICTED:
            return (2,)
        if kind is RestrictedType.TYPE_A:
            return (0,) if self.prefer_type_a else (1,)
        return (1,) if self.prefer_type_a else (0,)
