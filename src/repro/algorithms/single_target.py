"""Single-target greedy routing (Ben-Aroya–Tamar–Schuster flavor).

In the *single-target* problem all ``k`` packets share one destination.
Section 6.1 of the paper reports that [BTS] gave a greedy
single-target algorithm exactly matching the ``d_max + k`` lower bound
on the two-dimensional mesh, and [BNS] a randomized greedy algorithm
for higher dimensions.

This policy captures the deterministic essence: conflicts are won by
the packet *closer to the target* (ties by id), so the frontier
packet — the in-flight packet of minimum distance — is never deflected
by a farther one and the set of occupied distance shells contracts
steadily.  Benchmark E12 measures it against ``d_max + k``.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.base import GreedyMatchingPolicy
from repro.core.node_view import NodeView
from repro.core.packet import Packet


class ClosestFirstPolicy(GreedyMatchingPolicy):
    """Greedy routing where the packet nearest its destination wins.

    Applicable to any problem, but designed for (and benchmarked on)
    single-target batches, where "nearest to destination" is a global
    total preorder and yields the [BTS]-style contraction.
    """

    name = "closest-first"

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        return (
            view.mesh.distance(view.node, packet.destination),
            packet.id,
        )


def single_target_time_bound(d_max: int, k: int) -> int:
    """The single-target bound ``d_max + k`` quoted in Section 6.1.

    [BTS] present a greedy single-target algorithm that exactly matches
    this as a lower bound on the two-dimensional mesh; it is the
    reference line for benchmark E12.
    """
    if k <= 0:
        return 0
    return d_max + k
