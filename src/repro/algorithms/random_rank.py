"""Random-rank priority greedy routing ([BNS] flavor).

Ben-Aroya, Newman and Schuster [BNS] (Section 6.1) analyzed a
*randomized* greedy single-target algorithm for d-dimensional meshes
and the hypercube — notably the only greedy hot-potato algorithm known
(at the time) whose bound *improves* with the dimension.  The core
mechanism is random symmetry breaking that is *consistent over time*:
each packet draws a rank once, and every conflict is resolved in rank
order.

Compared to :class:`~repro.algorithms.plain_greedy.RandomizedGreedyPolicy`
(fresh coin flips every step), persistent random ranks give each packet
a global, time-invariant priority — so the top-ranked in-flight packet
is never deflected and the [BRS]-style linear evacuation bound applies
*with probability one*, while the randomization removes any adversarial
correlation between the ranking and the workload.
"""

from __future__ import annotations

import random
from typing import Any, Dict, Tuple

from repro.algorithms.base import GreedyMatchingPolicy
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.problem import RoutingProblem
from repro.mesh.topology import Mesh
from repro.types import PacketId


class RandomRankPolicy(GreedyMatchingPolicy):
    """Greedy routing with per-packet random ranks drawn once per run.

    Ranks are drawn in :meth:`prepare` from the engine's seeded RNG,
    so runs are reproducible; packets injected later (dynamic engine)
    get ranks drawn lazily on first sight.
    """

    name = "random-rank"

    def __init__(self, deflection: str = "ordered") -> None:
        super().__init__(tie_break="id", deflection=deflection)
        self._ranks: Dict[PacketId, float] = {}

    def prepare(
        self, mesh: Mesh, problem: RoutingProblem, rng: random.Random
    ) -> None:
        super().prepare(mesh, problem, rng)
        self._ranks = {
            index: self._rng.random()
            for index in range(len(problem.requests))
        }

    def snapshot_state(self) -> Dict[str, Any]:
        """The rank table, JSON-safe (see :mod:`repro.snapshot`); the
        spawned RNG stream is captured separately by the engine
        snapshot.  Floats round-trip exactly through JSON."""
        return {
            "ranks": {
                str(packet_id): rank
                for packet_id, rank in self._ranks.items()
            }
        }

    def restore_state(self, payload: Dict[str, Any]) -> None:
        self._ranks = {
            int(packet_id): float(rank)
            for packet_id, rank in payload["ranks"].items()
        }

    def _rank(self, packet_id: PacketId) -> float:
        rank = self._ranks.get(packet_id)
        if rank is None:
            rank = self._rng.random()
            self._ranks[packet_id] = rank
        return rank

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        return (self._rank(packet.id), packet.id)
