"""Shared machinery for greedy hot-potato policies.

All greedy algorithms in this library follow one per-node template:

1. build the bipartite *good graph*: packets on one side, the node's
   outgoing directions on the other, with an edge when the direction is
   good for the packet (Definition 5);
2. compute a **maximum matching**, offering augmenting paths to packets
   in a subclass-defined **priority order** (see
   :mod:`repro.core.matching` for why this realizes both greediness and
   restricted-packet priority);
3. deflect the unmatched packets along leftover directions according to
   a pluggable :class:`DeflectionRule`.

Subclasses customize only the priority order (step 2) and, optionally,
the deflection rule (step 3); everything else — including the greedy
guarantee of Definition 6 — comes from the template.
"""

from __future__ import annotations

import random
from typing import Dict, List, Sequence, Tuple

from repro.core.matching import priority_maximum_matching
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.policy import Assignment, RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import make_rng, spawn
from repro.mesh.directions import Direction
from repro.mesh.topology import Mesh
from repro.types import PacketId

#: Valid deflection-rule names, see :func:`deflect`.
DEFLECTION_RULES = ("ordered", "reverse", "random")

#: Valid tie-break names for equal-priority packets.
TIE_BREAKS = ("id", "random")


def deflect(
    rule: str,
    view: NodeView,
    unmatched: Sequence[Packet],
    free_directions: List[Direction],
    rng: random.Random,
) -> Dict[PacketId, Direction]:
    """Assign leftover directions to deflected packets.

    Rules (every deflection costs exactly one distance unit on the
    mesh, so the rule only shapes *future* conflicts, not the immediate
    potential drop):

    * ``"ordered"`` — hand out free directions in the mesh's canonical
      direction order (deterministic).
    * ``"reverse"`` — each packet prefers bouncing back along the arc
      it entered through; remaining conflicts fall back to order.
    * ``"random"`` — a uniformly random pairing (uses ``rng``).
    """
    if rule not in DEFLECTION_RULES:
        raise ValueError(
            f"unknown deflection rule {rule!r}; expected one of "
            f"{DEFLECTION_RULES}"
        )
    free = list(free_directions)
    result: Dict[PacketId, Direction] = {}
    if rule == "random":
        rng.shuffle(free)
    elif rule == "reverse":
        remaining: List[Packet] = []
        for packet in unmatched:
            if packet.entry_direction is not None:
                back = packet.entry_direction.opposite
                if back in free:
                    result[packet.id] = back
                    free.remove(back)
                    continue
            remaining.append(packet)
        unmatched = remaining
    for packet, direction in zip(unmatched, free):
        result[packet.id] = direction
    return result


class GreedyMatchingPolicy(RoutingPolicy):
    """Base class implementing the matching template described above.

    Args:
        tie_break: ``"id"`` (deterministic) or ``"random"`` — order of
            packets *within* one priority class.
        deflection: one of :data:`DEFLECTION_RULES`.

    Subclasses override :meth:`priority_key`; smaller keys are matched
    first.  Because the template computes a maximum matching at every
    node, every subclass automatically satisfies Definition 6 (greedy)
    and the Section 5 max-advance requirement, and declares both.
    """

    name = "greedy-matching"
    declares_greedy = True
    declares_max_advance = True

    def __init__(
        self, tie_break: str = "id", deflection: str = "ordered"
    ) -> None:
        if tie_break not in TIE_BREAKS:
            raise ValueError(
                f"unknown tie break {tie_break!r}; expected one of {TIE_BREAKS}"
            )
        if deflection not in DEFLECTION_RULES:
            raise ValueError(
                f"unknown deflection rule {deflection!r}; expected one of "
                f"{DEFLECTION_RULES}"
            )
        self.tie_break = tie_break
        self.deflection = deflection
        self._rng = make_rng(0)

    def prepare(
        self, mesh: Mesh, problem: RoutingProblem, rng: random.Random
    ) -> None:
        self._rng = spawn(rng, self.name)

    # ------------------------------------------------------------------
    # Subclass hooks
    # ------------------------------------------------------------------

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        """Return the packet's priority (smaller = matched earlier).

        The base class gives every packet equal priority, i.e. a plain
        greedy algorithm whose conflicts are settled by the tie-break.
        """
        return ()

    # ------------------------------------------------------------------
    # Template
    # ------------------------------------------------------------------

    def _ordered_packets(self, view: NodeView) -> List[Packet]:
        packets = list(view.packets)
        if self.tie_break == "random":
            self._rng.shuffle(packets)
        packets.sort(key=lambda p: self.priority_key(view, p))
        return packets

    def assign(self, view: NodeView) -> Assignment:
        ordered = self._ordered_packets(view)
        adjacency = {
            packet.id: list(view.good_directions(packet))
            for packet in view.packets
        }
        matching = priority_maximum_matching(
            adjacency, [packet.id for packet in ordered]
        )
        used = set(matching.values())
        free = [d for d in view.out_directions if d not in used]
        unmatched = [p for p in ordered if p.id not in matching]
        assignment: Assignment = dict(matching)
        assignment.update(
            deflect(self.deflection, view, unmatched, free, self._rng)
        )
        return assignment

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(tie_break={self.tie_break!r}, "
            f"deflection={self.deflection!r})"
        )
