"""Name-based registry of routing policies.

The experiment harness and the examples refer to algorithms by short
names; this registry maps those names to zero-argument factories so
each run gets a fresh policy instance (policies may carry run-local
state such as their RNG stream or destination ranking).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from repro.algorithms.adversarial import BlockingGreedyPolicy
from repro.algorithms.brassil_cruz import DestinationOrderPolicy
from repro.algorithms.hajek import FixedPriorityPolicy
from repro.algorithms.max_advance import FewestGoodDirectionsPolicy
from repro.algorithms.plain_greedy import (
    MaximalGreedyPolicy,
    PlainGreedyPolicy,
    RandomizedGreedyPolicy,
)
from repro.algorithms.random_rank import RandomRankPolicy
from repro.algorithms.restricted import RestrictedPriorityPolicy
from repro.algorithms.single_target import ClosestFirstPolicy
from repro.core.policy import RoutingPolicy

PolicyFactory = Callable[[], RoutingPolicy]

_REGISTRY: Dict[str, PolicyFactory] = {
    "restricted-priority": RestrictedPriorityPolicy,
    "fewest-good-directions": FewestGoodDirectionsPolicy,
    "plain-greedy": PlainGreedyPolicy,
    "randomized-greedy": RandomizedGreedyPolicy,
    "maximal-greedy": MaximalGreedyPolicy,
    "fixed-priority": FixedPriorityPolicy,
    "random-rank": RandomRankPolicy,
    "destination-order": DestinationOrderPolicy,
    "closest-first": ClosestFirstPolicy,
    # Deterministic greedy rule that livelocks on crafted instances
    # (see repro.algorithms.adversarial.livelock_instance); registered
    # for completeness, benchmark code opts into it explicitly.
    "blocking-greedy": BlockingGreedyPolicy,
}


def available_policies() -> List[str]:
    """Sorted names of all registered hot-potato policies."""
    return sorted(_REGISTRY)


def make_policy(name: str) -> RoutingPolicy:
    """Instantiate a registered policy by name.

    Raises:
        KeyError: with the list of valid names when ``name`` is unknown.
    """
    try:
        factory = _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown policy {name!r}; available: {available_policies()}"
        ) from None
    return factory()


def register_policy(name: str, factory: PolicyFactory) -> None:
    """Register a custom policy factory under a new name.

    Raises:
        ValueError: when the name is already taken (shadowing a
            built-in silently would corrupt experiment labels).
    """
    if name in _REGISTRY:
        raise ValueError(f"policy name {name!r} already registered")
    _REGISTRY[name] = factory
