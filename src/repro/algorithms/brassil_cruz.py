"""Destination-rank priority greedy routing (Brassil–Cruz 1991 flavor).

Brassil and Cruz [BC] bound the delay of deflection routing in any
regular network by fixing an order on *destinations* and giving
priority to packets according to the rank of their destination in that
order; their bound is ``diam + P + 2(k - 1)``, where ``P`` is the
length of a walk connecting all destinations (Section 1.1 of the
paper).

This policy uses the snake (boustrophedon) order of mesh nodes as the
destination walk — a Hamiltonian path of the mesh, so ``P`` is at most
``n^d - 1`` and consecutive destinations are adjacent.
"""

from __future__ import annotations

import random
from typing import Dict, Tuple

from repro.algorithms.base import GreedyMatchingPolicy
from repro.core.node_view import NodeView
from repro.core.packet import Packet
from repro.core.problem import RoutingProblem
from repro.mesh.topology import Mesh
from repro.types import Node


def snake_order(mesh: Mesh) -> Dict[Node, int]:
    """Rank every mesh node along a boustrophedon Hamiltonian walk.

    Consecutive ranks are adjacent nodes, so the walk visiting all
    destinations in rank order has length at most ``n^d - 1``.
    """
    rank: Dict[Node, int] = {}
    for index, node in enumerate(_snake(mesh.dimension, mesh.side)):
        rank[node] = index
    return rank


def _snake(dimension: int, side: int, reverse: bool = False):
    """Recursively yield nodes in boustrophedon order."""
    outer = range(side, 0, -1) if reverse else range(1, side + 1)
    if dimension == 1:
        for x in outer:
            yield (x,)
        return
    flip = reverse
    for x in outer:
        for rest in _snake(dimension - 1, side, flip):
            yield (x,) + rest
        flip = not flip


def snake_walk_length(mesh: Mesh, destinations) -> int:
    """Length of the snake walk segment covering the given destinations.

    This is the ``P`` of the Brassil–Cruz bound when the walk is the
    snake: the distance along the snake between the first and last
    destination rank.
    """
    ranks = snake_order(mesh)
    # dict.fromkeys dedupes in insertion order (a set would leak hash
    # order into the iteration; DET102).
    dest_ranks = [ranks[d] for d in dict.fromkeys(destinations)]
    if not dest_ranks:
        return 0
    return max(dest_ranks) - min(dest_ranks)


def brassil_cruz_time_bound(diameter: int, walk_length: int, k: int) -> int:
    """The [BC] bound ``diam + P + 2(k - 1)``."""
    if k <= 0:
        return 0
    return diameter + walk_length + 2 * (k - 1)


class DestinationOrderPolicy(GreedyMatchingPolicy):
    """Greedy routing with priority by destination rank.

    Packets destined to lower-ranked (earlier on the snake walk) nodes
    win conflicts; ties between packets sharing a destination fall
    back to packet id.  Greedy but not restricted-preferring.
    """

    name = "destination-order"

    def __init__(
        self, tie_break: str = "id", deflection: str = "ordered"
    ) -> None:
        super().__init__(tie_break=tie_break, deflection=deflection)
        self._rank: Dict[Node, int] = {}

    def prepare(
        self, mesh: Mesh, problem: RoutingProblem, rng: random.Random
    ) -> None:
        super().prepare(mesh, problem, rng)
        self._rank = snake_order(mesh)

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        return (self._rank[packet.destination], packet.id)
