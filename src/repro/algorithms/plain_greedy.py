"""Plain greedy hot-potato routing.

The weakest member of the paper's algorithm universe: packets advance
whenever a maximum matching lets them, conflicts are settled by an
arbitrary (id-order or random) rule, with no restricted-packet
priority.  The paper notes that greediness alone does not guarantee
termination (Section 1.2) — this policy is the natural subject of the
livelock experiments, and in practice (random tie-breaks) it performs
excellently, matching the simulation folklore the paper cites.
"""

from __future__ import annotations

import random
from typing import Dict

from repro.algorithms.base import DEFLECTION_RULES, GreedyMatchingPolicy, deflect
from repro.core.matching import greedy_maximal_matching
from repro.core.node_view import NodeView
from repro.core.policy import Assignment, RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.core.rng import make_rng, spawn
from repro.mesh.topology import Mesh


class PlainGreedyPolicy(GreedyMatchingPolicy):
    """Greedy routing with no priority structure at all.

    Every packet has equal priority; who advances out of a conflict is
    decided by the tie-break (packet id by default, or uniformly at
    random), and deflections follow the configured rule.  Satisfies
    Definition 6 but not Definition 18.
    """

    name = "plain-greedy"


class RandomizedGreedyPolicy(GreedyMatchingPolicy):
    """Plain greedy with random conflict resolution and deflections.

    The configuration closest to the "simple greedy algorithms
    perform very well in simulations" folklore ([BH], [Ma], [AS]):
    all symmetry is broken by coin flips, which in particular defeats
    the deterministic livelock schedules of
    :mod:`repro.algorithms.adversarial` with probability 1.
    """

    name = "randomized-greedy"

    def __init__(self) -> None:
        super().__init__(tie_break="random", deflection="random")


class MaximalGreedyPolicy(RoutingPolicy):
    """First-fit greedy: a *maximal* (not maximum) matching per node.

    Definition 6 only requires that a deflected packet's good arcs all
    be in use — any maximal matching qualifies — while the Section 5
    d-dimensional analysis additionally demands the *maximum* number of
    advancing packets.  This policy deliberately settles for first-fit
    maximality (each packet, in id order, takes its first free good
    direction), making it the ablation contrast for the max-advance
    requirement: it is greedy, it terminates, but it advances fewer
    packets per step than the matching-based policies whenever
    first-fit paints itself into a corner.
    """

    name = "maximal-greedy"
    declares_greedy = True
    declares_max_advance = False

    def __init__(self, deflection: str = "ordered") -> None:
        if deflection not in DEFLECTION_RULES:
            raise ValueError(
                f"unknown deflection rule {deflection!r}; expected one of "
                f"{DEFLECTION_RULES}"
            )
        self.deflection = deflection
        self._rng = make_rng(0)

    def prepare(
        self, mesh: Mesh, problem: RoutingProblem, rng: random.Random
    ) -> None:
        self._rng = spawn(rng, self.name)

    def assign(self, view: NodeView) -> Assignment:
        adjacency = {
            packet.id: list(view.good_directions(packet))
            for packet in view.packets
        }
        order = [packet.id for packet in view.packets]
        matching: Dict = greedy_maximal_matching(adjacency, order)
        used = set(matching.values())
        free = [d for d in view.out_directions if d not in used]
        unmatched = [p for p in view.packets if p.id not in matching]
        assignment: Assignment = dict(matching)
        assignment.update(
            deflect(self.deflection, view, unmatched, free, self._rng)
        )
        return assignment
