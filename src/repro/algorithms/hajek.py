"""Fixed-global-priority greedy routing (Hajek 1991 flavor).

Hajek [Haj] analyzed a simple deflection algorithm whose key mechanism
is a *fixed total order* on packets: in every conflict the
highest-ranked packet advances.  Because the globally top-ranked
in-flight packet wins every conflict it is never deflected, so it is
delivered within ``d_max`` steps; an evacuation argument then bounds
the total time linearly in the number of packets ``k`` (Hajek proved
``2k + n`` on the 2^n-node hypercube; Borodin, Rabani and Schieber
[BRS] obtained ``2k + d_max`` for meshes — both discussed in
Sections 1.1 and 6.1 of the paper).

Benchmark E10/E12 compare this linear-in-k behavior against the
``O(n·sqrt(k))`` class of Theorem 20.
"""

from __future__ import annotations

from typing import Tuple

from repro.algorithms.base import GreedyMatchingPolicy
from repro.core.node_view import NodeView
from repro.core.packet import Packet


class FixedPriorityPolicy(GreedyMatchingPolicy):
    """Greedy routing where conflicts are won by a fixed packet order.

    The order is the packet id (injection order).  The policy is
    greedy (Definition 6) but does **not** prefer restricted packets:
    a high-ranked packet with two good directions happily deflects a
    restricted one — exactly the behavior Definition 18 forbids, which
    makes this a useful contrast case in the validator tests.
    """

    name = "fixed-priority"

    def priority_key(self, view: NodeView, packet: Packet) -> Tuple:
        return (packet.id,)


def fixed_priority_time_bound(k: int, d_max: int) -> int:
    """The linear evacuation bound ``2k + d_max`` of [BRS]/[Haj].

    Used by tests and benchmarks as the reference bound for
    :class:`FixedPriorityPolicy`-style algorithms.
    """
    if k < 0 or d_max < 0:
        raise ValueError("k and d_max must be non-negative")
    if k == 0:
        return 0
    return 2 * k + d_max
