"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``route``    — route one workload under one policy, print the summary
  (optionally audit the full Theorem 20 analysis chain, or archive the
  trace as JSON);
* ``sweep``    — sweep k for one policy, print T vs the Theorem 20 bound;
* ``campaign`` — run / resume / inspect resumable experiment campaigns
  backed by the event-sourced store (see :mod:`repro.campaign`);
* ``dynamic``  — continuous-traffic load sweep (latency/backlog table);
* ``profile``  — run one scenario on the profiled kernel loop and print
  the per-phase wall-time table;
* ``livelock`` — run the 8-packet livelock demonstration;
* ``policies`` — list the registered routing policies;
* ``lint``     — run the determinism linter over the source tree.

``route``/``sweep``/``dynamic``/``profile`` accept ``--telemetry PATH``
to append one structured :class:`~repro.obs.manifest.RunManifest` JSON
line per run (configuration, seed, git sha, lean-path counters).
"""

from __future__ import annotations

import argparse
import sys
from functools import partial
from typing import List, Optional

from repro.algorithms import (
    BlockingGreedyPolicy,
    available_policies,
    livelock_instance,
    make_policy,
)
from repro.algorithms.dimension_order import DimensionOrderPolicy
from repro.analysis.livelock import detect_cycle
from repro.analysis.tables import format_table
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.problem import RoutingProblem
from repro.core.serialization import save_trace
from repro.core.trace import record_run
from repro.dynamic import BernoulliTraffic, BufferedDynamicEngine, DynamicEngine
from repro.mesh.hypercube import Hypercube
from repro.mesh.topology import Mesh
from repro.mesh.torus import Torus
from repro.potential.bounds import theorem20_bound
from repro.potential.verification import verify_restricted_run
from repro.workloads import (
    corner_storm,
    quadrant_flood,
    random_many_to_many,
    random_permutation,
    reversal,
    single_target,
    transpose,
)


def _build_mesh(args: argparse.Namespace) -> Mesh:
    if args.topology == "mesh":
        return Mesh(args.dimension, args.side)
    if args.topology == "torus":
        return Torus(args.dimension, args.side)
    if args.topology == "hypercube":
        return Hypercube(args.dimension)
    raise SystemExit(f"unknown topology {args.topology!r}")


def _build_workload(mesh: Mesh, args: argparse.Namespace) -> RoutingProblem:
    name = args.workload
    if name == "random":
        k = args.k if args.k is not None else mesh.num_nodes // 2
        return random_many_to_many(mesh, k=k, seed=args.seed)
    if name == "permutation":
        return random_permutation(mesh, seed=args.seed)
    if name == "transpose":
        return transpose(mesh)
    if name == "reversal":
        return reversal(mesh)
    if name == "hotspot":
        k = args.k if args.k is not None else mesh.num_nodes // 2
        return single_target(mesh, k=k, seed=args.seed)
    if name == "flood":
        return quadrant_flood(mesh, seed=args.seed)
    if name == "corners":
        return corner_storm(mesh)
    raise SystemExit(f"unknown workload {name!r}")


WORKLOADS = (
    "random",
    "permutation",
    "transpose",
    "reversal",
    "hotspot",
    "flood",
    "corners",
)

#: Policies usable with ``--engine buffered`` (must be BufferedPolicy).
BUFFERED_POLICIES = ("dimension-order",)


def _telemetry_observers(args: argparse.Namespace, command: str) -> list:
    """A :class:`JsonlRunLogger` list for ``--telemetry PATH`` (or [])."""
    if not getattr(args, "telemetry", None):
        return []
    from repro.obs.manifest import JsonlRunLogger

    return [JsonlRunLogger(args.telemetry, command=command)]


def _series_recorder(args: argparse.Namespace):
    """A :class:`SeriesRecorder` for ``--series PATH`` (or None).

    The recorder is summary-fed (``needs_steps=False``), so attaching
    it never disqualifies the lean loop or the soa kernel.
    """
    if not getattr(args, "series", None):
        return None
    from repro.obs.series import SeriesRecorder

    return SeriesRecorder()


def _write_series(args: argparse.Namespace, recorder, command: str) -> None:
    """Export a recorder's series to ``--series PATH`` (JSONL)."""
    if recorder is None:
        return
    from repro.obs.export import write_series_jsonl

    meta = {
        "command": command,
        "workload": args.workload,
        "policy": args.policy or "",
        "engine": args.engine,
        "backend": args.backend,
        "seed": args.seed,
    }
    samples = write_series_jsonl(recorder.series, args.series, meta=meta)
    print(f"series written to {args.series} ({samples} samples)")


def _resolve_policy(args: argparse.Namespace):
    """Resolve ``--policy`` against ``--engine``; returns (name, policy).

    The hot-potato registry and the buffered policies are disjoint
    interfaces (total assignments vs. partial forwarding), so each
    engine has its own default and its own valid set.
    """
    if args.engine == "buffered":
        name = args.policy or "dimension-order"
        if name not in BUFFERED_POLICIES:
            raise SystemExit(
                f"policy {name!r} is not a buffered policy; --engine "
                f"buffered supports: {', '.join(BUFFERED_POLICIES)}"
            )
        return name, DimensionOrderPolicy()
    name = args.policy or "restricted-priority"
    return name, make_policy(name)


# ----------------------------------------------------------------------
# Commands
# ----------------------------------------------------------------------


def _load_faults(args: argparse.Namespace, mesh: Mesh):
    """Load and mesh-check ``--faults PATH`` (None without the flag)."""
    if not getattr(args, "faults", None):
        return None
    from repro.exceptions import ConfigurationError
    from repro.faults import FaultSchedule

    try:
        schedule = FaultSchedule.load(args.faults)
        schedule.check(mesh)
    except (OSError, ValueError, ConfigurationError) as problem:
        raise SystemExit(f"cannot use fault schedule {args.faults}: {problem}")
    events = schedule.events
    label = schedule.description or "unnamed"
    print(
        f"fault schedule {label!r}: {len(events)} events "
        f"({len(schedule.link_faults())} link, "
        f"{len(schedule.node_faults())} node, "
        f"{len(schedule.packet_drops())} drop)"
    )
    return schedule


def _print_fault_outcome(result) -> None:
    """One line per fault consequence: drops always, abort when set."""
    if result.total_dropped:
        print(f"dropped by faults: {result.total_dropped}")
    if result.abort is not None:
        print(result.abort.summary())


def _route_durability(args: argparse.Namespace):
    """Resolve ``--checkpoint-every/--checkpoint/--resume-from``.

    Returns ``(on_checkpoint, resume_payload)`` — either may be None.
    Both knobs run plain engine runs only: the analysis paths
    (``--verify``/``--save-trace``) replay a run in full, so mid-run
    durability has nothing to attach to there.
    """
    on_checkpoint = None
    resume_payload = None
    if args.checkpoint_every is not None or args.resume_from:
        if args.verify or args.save_trace:
            raise SystemExit(
                "--checkpoint-every/--resume-from checkpoint plain "
                "engine runs; they do not combine with "
                "--verify/--save-trace"
            )
    if args.checkpoint_every is not None:
        if not args.checkpoint:
            raise SystemExit(
                "--checkpoint-every needs --checkpoint PATH to know "
                "where to write snapshots"
            )
        from repro.snapshot import save_snapshot

        def on_checkpoint(snapshot, _path=args.checkpoint):
            save_snapshot(snapshot, _path)

    elif args.checkpoint:
        raise SystemExit("--checkpoint needs --checkpoint-every N")
    if args.resume_from:
        from repro.snapshot import load_snapshot

        try:
            resume_payload = load_snapshot(args.resume_from)
        except (OSError, ValueError) as problem:
            raise SystemExit(
                f"cannot resume from {args.resume_from}: {problem}"
            )
        print(
            f"resuming from {args.resume_from} "
            f"(step {resume_payload.get('step')})"
        )
    return on_checkpoint, resume_payload


def _route_resume(engine, args: argparse.Namespace, payload) -> None:
    """Restore a snapshot into a freshly built engine (or exit)."""
    if payload is None:
        return
    try:
        engine.resume_from(payload)
    except (ValueError, TypeError, KeyError) as problem:
        raise SystemExit(
            f"snapshot {args.resume_from} does not match this run "
            f"(same mesh/workload/policy/seed flags required): {problem}"
        )


def cmd_route(args: argparse.Namespace) -> int:
    mesh = _build_mesh(args)
    problem = _build_workload(mesh, args)
    policy_name, policy = _resolve_policy(args)
    print(
        f"Routing {problem.describe()} with {policy_name!r}"
        + (" (store-and-forward)" if args.engine == "buffered" else "")
    )

    if args.telemetry and (args.verify or args.save_trace):
        raise SystemExit(
            "--telemetry logs plain engine runs; it does not combine "
            "with --verify/--save-trace"
        )
    if args.series and (args.verify or args.save_trace):
        raise SystemExit(
            "--series records plain engine runs; it does not combine "
            "with --verify/--save-trace"
        )
    if args.faults and (args.verify or args.save_trace):
        raise SystemExit(
            "--faults injects failures into plain engine runs; it does "
            "not combine with --verify/--save-trace"
        )
    checkpoint_cb, resume_payload = _route_durability(args)
    observers = _telemetry_observers(args, "route")
    series = _series_recorder(args)
    if series is not None:
        observers = observers + [series]
    faults = _load_faults(args, mesh)

    if args.backend == "soa":
        if args.verify or args.save_trace:
            raise SystemExit(
                "--backend soa runs the lean array kernel; it does not "
                "combine with --verify/--save-trace"
            )
        if faults is not None:
            raise SystemExit(
                "--backend soa does not support fault schedules"
            )

    if args.engine == "buffered":
        if args.verify or args.save_trace:
            raise SystemExit(
                "--verify/--save-trace analyze hot-potato runs; they do "
                "not apply to --engine buffered"
            )
        buffered_engine = BufferedEngine(
            problem, policy, seed=args.seed, observers=observers,
            faults=faults, backend=args.backend,
            checkpoint_every=args.checkpoint_every,
            on_checkpoint=checkpoint_cb,
        )
        _route_resume(buffered_engine, args, resume_payload)
        result = buffered_engine.run()
        if checkpoint_cb is not None:
            print(f"checkpoints written to {args.checkpoint}")
        print(result.summary())
        _print_fault_outcome(result)
        print(f"max buffer occupancy: {buffered_engine.max_buffer_seen}")
        if args.telemetry:
            print(f"manifest appended to {args.telemetry}")
        _write_series(args, series, "route")
        return 0 if result.completed else 1

    if args.verify:
        if mesh.dimension != 2 or mesh.kind != "mesh":
            raise SystemExit("--verify needs a 2-dimensional mesh")
        report = verify_restricted_run(problem, policy, seed=args.seed)
        print(report.summary())
        return 0 if report.all_hold else 1

    if args.save_trace:
        trace = record_run(problem, policy, seed=args.seed)
        save_trace(trace, args.save_trace)
        print(f"trace written to {args.save_trace}")
        result = trace.result
    else:
        extra = {}
        if args.backend == "soa":
            # The array kernel runs the lean loop, which requires
            # capacity-only validation (same as fast_path=True runs).
            from repro.core.validation import validators_for

            extra["validators"] = validators_for(policy, strict=False)
        engine = HotPotatoEngine(
            problem, policy, seed=args.seed, observers=observers,
            faults=faults, backend=args.backend,
            checkpoint_every=args.checkpoint_every,
            on_checkpoint=checkpoint_cb, **extra,
        )
        _route_resume(engine, args, resume_payload)
        result = engine.run()
        if checkpoint_cb is not None:
            print(f"checkpoints written to {args.checkpoint}")
        if args.telemetry:
            print(f"manifest appended to {args.telemetry}")
        _write_series(args, series, "route")

    print(result.summary())
    _print_fault_outcome(result)
    if mesh.dimension == 2 and mesh.kind == "mesh":
        bound = theorem20_bound(mesh.side, problem.k)
        print(
            f"Theorem 20 bound: {bound:.0f} "
            f"(measured/bound = {result.total_steps / bound:.3f})"
        )
    return 0 if result.completed else 1


def _random_problem(mesh: Mesh, k: int, seed: int) -> RoutingProblem:
    """Module-level problem factory so sweep cases pickle to workers."""
    return random_many_to_many(mesh, k=k, seed=seed)


def cmd_sweep(args: argparse.Namespace) -> int:
    from repro.analysis.runner import run_case

    if args.telemetry:
        from repro.obs.manifest import (
            append_manifest,
            manifest_from_run_result,
        )

    mesh = _build_mesh(args)
    rows = []
    manifests = 0
    k = max(1, args.k_min)
    while k <= args.k_max:
        points = run_case(
            partial(_random_problem, mesh, k),
            partial(make_policy, args.policy),
            seeds=range(args.seeds),
            workers=args.workers,
        )
        if args.telemetry:
            # One manifest per point: telemetry rides inside each
            # RunResult, back across worker-process boundaries.
            for point in points:
                append_manifest(
                    manifest_from_run_result(
                        point.result,
                        command="sweep",
                        workload=f"random k={k} seeds={args.seeds}",
                    ),
                    args.telemetry,
                )
                manifests += 1
        times = []
        for point in points:
            if not point.result.completed:
                raise SystemExit(f"run did not complete at k={k}")
            times.append(point.result.total_steps)
        mean = sum(times) / len(times)
        if mesh.dimension == 2 and mesh.kind == "mesh":
            bound = theorem20_bound(mesh.side, k)
            rows.append([k, mean, max(times), bound, max(times) / bound])
        else:
            rows.append([k, mean, max(times), "-", "-"])
        k *= 2
    print(
        format_table(
            ["k", "T mean", "T max", "Thm20 bound", "max/bound"],
            rows,
            title=f"{args.policy} on {mesh.kind} n={mesh.side} "
            f"d={mesh.dimension} ({args.seeds} seeds)",
        )
    )
    if args.telemetry:
        print(f"{manifests} manifests appended to {args.telemetry}")
    return 0


def cmd_dynamic(args: argparse.Namespace) -> int:
    mesh = _build_mesh(args)
    policy_name, _ = _resolve_policy(args)
    buffered = args.engine == "buffered"
    rows = []
    for rate in args.rates:
        # Fresh policy/traffic/observers per rate: engines share nothing.
        _, policy = _resolve_policy(args)
        engine = (
            BufferedDynamicEngine if buffered else DynamicEngine
        )(
            mesh,
            policy,
            BernoulliTraffic(rate),
            seed=args.seed,
            warmup=args.horizon // 4,
            observers=_telemetry_observers(args, "dynamic"),
            backend=args.backend,
        )
        stats = engine.run(args.horizon)
        rows.append(
            [
                rate,
                stats.mean_latency,
                stats.latency_percentile(99),
                stats.deflection_rate,
                stats.throughput,
                engine.max_queue_seen if buffered else stats.max_backlog,
                stats.is_stable(),
            ]
        )
    queue_header = "queue" if buffered else "backlog"
    print(
        format_table(
            ["load", "lat mean", "lat p99", "deflect", "thruput",
             queue_header, "stable"],
            rows,
            title=f"dynamic {policy_name} on {mesh.kind} n={mesh.side} "
            f"({args.horizon} steps"
            + (", store-and-forward)" if buffered else ")"),
        )
    )
    if args.telemetry:
        print(
            f"{len(args.rates)} manifests appended to {args.telemetry}"
        )
    return 0


def cmd_profile(args: argparse.Namespace) -> int:
    """Run one scenario on the profiled kernel loop; print the phase
    table, the lean-path counters, and (optionally) a manifest."""
    from repro.core.validation import validators_for
    from repro.obs import PhaseProfiler
    from repro.obs.manifest import JsonlRunLogger

    mesh = _build_mesh(args)
    profiler = PhaseProfiler()
    observers = []
    if args.telemetry:
        observers.append(
            JsonlRunLogger(
                args.telemetry, command="profile", profiler=profiler
            )
        )

    if args.engine in ("dynamic", "buffered-dynamic"):
        buffered = args.engine == "buffered-dynamic"
        if buffered:
            policy_name: str = "dimension-order"
            policy = DimensionOrderPolicy()
        else:
            policy_name = args.policy or "restricted-priority"
            policy = make_policy(policy_name)
        dynamic_engine = (
            BufferedDynamicEngine if buffered else DynamicEngine
        )(
            mesh,
            policy,
            BernoulliTraffic(args.rate),
            seed=args.seed,
            warmup=args.horizon // 4,
            observers=observers,
            profiler=profiler,
            backend=args.backend,
        )
        stats = dynamic_engine.run(args.horizon)
        print(
            f"{args.engine} {policy_name!r} on {mesh.kind} n={mesh.side} "
            f"rate={args.rate}: {stats.summary()}"
        )
        telemetry = dynamic_engine.telemetry
    else:
        problem = _build_workload(mesh, args)
        policy_name, policy = _resolve_policy(args)
        if args.engine == "buffered":
            engine = BufferedEngine(
                problem,
                policy,
                seed=args.seed,
                observers=observers,
                profiler=profiler,
                backend=args.backend,
            )
        else:
            # Capacity-only validators keep the run fast-path eligible —
            # the profiled loop times the lean pipeline.
            engine = HotPotatoEngine(
                problem,
                policy,
                seed=args.seed,
                validators=validators_for(policy, strict=False),
                observers=observers,
                profiler=profiler,
                backend=args.backend,
            )
        result = engine.run()
        print(result.summary())
        telemetry = engine.telemetry

    print()
    print(profiler.format_table())
    print(telemetry.summary())
    if args.telemetry:
        print(f"manifest appended to {args.telemetry}")
    return 0


def cmd_livelock(args: argparse.Namespace) -> int:
    problem = livelock_instance()
    engine = HotPotatoEngine(
        problem, BlockingGreedyPolicy(), max_steps=args.steps
    )
    result = engine.run()
    cycle = detect_cycle(problem, BlockingGreedyPolicy(), max_steps=100)
    print(
        f"blocking-greedy: {result.delivered}/8 delivered after "
        f"{args.steps} validated-greedy steps"
    )
    print(f"cycle: {cycle}")
    fixed = HotPotatoEngine(problem, make_policy("restricted-priority")).run()
    print(
        f"restricted-priority routes the same instance in "
        f"{fixed.total_steps} steps"
    )
    return 0


def cmd_policies(args: argparse.Namespace) -> int:
    for name in available_policies():
        print(f"{name:26s} {make_policy(name).describe()}")
    return 0


def _campaign_specs(args: argparse.Namespace) -> list:
    """Seed-replicated declarative specs for ``repro campaign run``."""
    from repro.campaign import CaseSpec

    workload_params = ()
    if args.k is not None:
        workload_params = (("k", args.k),)
    if args.policy:
        policy = args.policy
    elif args.engine == "buffered":
        policy = "dimension-order"
    else:
        policy = "restricted-priority"
    try:
        return [
            CaseSpec(
                topology=args.topology,
                side=args.side,
                dimension=args.dimension,
                workload=args.workload,
                workload_params=workload_params,
                policy=policy,
                seed=seed,
                # The soa kernel runs the lean loop, which requires
                # capacity-only validation (same rule as `repro route`).
                strict_validation=args.backend != "soa",
                max_steps=args.max_steps,
                engine=args.engine,
                backend=args.backend,
                checkpoint_every=getattr(args, "checkpoint_every", None),
            )
            for seed in range(args.seeds)
        ]
    except ValueError as problem:
        raise SystemExit(f"invalid campaign case: {problem}")


def _print_campaign_result(result) -> int:
    print(
        f"campaign: {len(result.points)} finished "
        f"({result.resumed} restored from the store), "
        f"{len(result.failures)} failed"
        + (", degraded" if result.degraded else "")
    )
    for failure in result.failures:
        print(f"  {failure.key}: {failure.error}: {failure.message}")
    if result.points:
        steps = [p.result.total_steps for p in result.points]
        print(
            f"T mean={sum(steps) / len(steps):.1f} max={max(steps)} "
            f"over {len(steps)} cases"
        )
    return 0 if result.all_completed() else 1


def _append_campaign_manifests(campaign, result, path: str) -> None:
    """One manifest per finished point for ``--telemetry PATH``.

    Points come back in spec order with failed cases skipped, so
    filtering the failure keys out of the campaign's own key/spec
    pairing realigns specs with points.
    """
    from repro.obs.manifest import append_manifest, manifest_from_run_result

    failed = {failure.key for failure in result.failures}
    specs = [
        spec
        for key, spec in zip(campaign.keys, campaign.specs)
        if key not in failed
    ]
    for spec, point in zip(specs, result.points):
        append_manifest(
            manifest_from_run_result(
                point.result,
                command="campaign",
                engine=spec.engine,
                workload=spec.workload,
                case=dict(point.params),
            ),
            path,
        )
    print(
        f"{len(result.points)} manifest"
        + ("" if len(result.points) == 1 else "s")
        + f" appended to {path}"
    )


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from repro.campaign import Campaign, CampaignStore

    if getattr(args, "checkpoint_every", None) is not None and not args.store:
        raise SystemExit(
            "--checkpoint-every appends snapshots to the event log; "
            "it needs --store PATH"
        )
    specs = _campaign_specs(args)
    store = CampaignStore(args.store) if args.store else None
    with Campaign(specs, store=store, workers=args.workers) as campaign:
        result = campaign.run()
    if args.telemetry:
        _append_campaign_manifests(campaign, result, args.telemetry)
    return _print_campaign_result(result)


def cmd_campaign_resume(args: argparse.Namespace) -> int:
    from repro.campaign import Campaign

    campaign = Campaign.from_store(args.store, workers=args.workers)
    if not campaign.specs:
        raise SystemExit(f"no cases queued in {args.store}")
    with campaign:
        result = campaign.run()
    if args.telemetry:
        _append_campaign_manifests(campaign, result, args.telemetry)
    return _print_campaign_result(result)


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from repro.campaign import CampaignStore

    store = CampaignStore(args.store)
    state = store.replay()
    if not state.order:
        raise SystemExit(f"no cases queued in {args.store}")
    if args.watch:
        from repro.campaign import watch

        watch(store, interval=args.interval, max_polls=args.max_polls)
        state = store.replay()
    else:
        counts = state.counts()
        total = len(state.order)
        print(f"{total} cases in {args.store}")
        for name in ("finished", "started", "queued", "failed"):
            print(f"  {name:9s} {counts[name]}")
        for problem in state.errors:
            print(f"  damaged line skipped: {problem}")
    if args.prometheus:
        from repro.campaign import registry_from_state
        from repro.obs.export import render_prometheus

        with open(args.prometheus, "w", encoding="utf-8") as handle:
            handle.write(render_prometheus(registry_from_state(state)))
        print(f"prometheus metrics written to {args.prometheus}")
    return 0


def cmd_lint(args: argparse.Namespace) -> int:
    from repro.lint.cli import run_lint

    return run_lint(args, sys.stdout)


def cmd_report(args: argparse.Namespace) -> int:
    from repro.analysis.reporting import build_report, write_report

    if args.output:
        stats = write_report(args.results, args.output)
        print(
            f"wrote {stats['experiments']} experiment blocks "
            f"({stats['bytes']} bytes) to {args.output}"
        )
    else:
        print(build_report(args.results))
    return 0


# ----------------------------------------------------------------------
# Parser
# ----------------------------------------------------------------------


def _add_mesh_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--topology",
        choices=("mesh", "torus", "hypercube"),
        default="mesh",
        help="network family (default: mesh)",
    )
    parser.add_argument(
        "--side", type=int, default=16, help="side length n (default 16)"
    )
    parser.add_argument(
        "--dimension", type=int, default=2, help="dimension d (default 2)"
    )
    parser.add_argument("--seed", type=int, default=0, help="RNG seed")


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        choices=("object", "soa"),
        default="object",
        help="step-kernel implementation: per-packet objects (object) "
        "or the bit-identical structure-of-arrays kernel (soa)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Greedy hot-potato routing on meshes "
        "(Ben-Dor, Halevi & Schuster, PODC 1994 — reproduction).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    route = commands.add_parser("route", help="route one workload")
    _add_mesh_arguments(route)
    _add_backend_argument(route)
    route.add_argument("--workload", choices=WORKLOADS, default="random")
    route.add_argument("--k", type=int, default=None, help="batch size")
    route.add_argument(
        "--policy",
        default=None,
        help="routing policy (default: restricted-priority for hot-potato, "
        "dimension-order for buffered)",
    )
    route.add_argument(
        "--engine",
        choices=("hot-potato", "buffered"),
        default="hot-potato",
        help="routing discipline: deflection (hot-potato) or "
        "store-and-forward (buffered)",
    )
    route.add_argument(
        "--verify",
        action="store_true",
        help="audit the full Theorem 20 analysis chain on this run",
    )
    route.add_argument(
        "--save-trace", metavar="PATH", help="archive the full trace as JSON"
    )
    route.add_argument(
        "--telemetry",
        metavar="PATH",
        help="append a structured run manifest (JSONL) for this run",
    )
    route.add_argument(
        "--series",
        metavar="PATH",
        help="export the per-step time series (phi, in-flight, "
        "deflections, max node load) as schema-versioned JSONL; "
        "summary-fed, so the lean loop and the soa kernel stay eligible",
    )
    route.add_argument(
        "--faults",
        metavar="PATH",
        help="inject failures from a JSON fault schedule (see "
        "repro.faults.FaultSchedule); the run degrades gracefully and "
        "ends in a structured verdict instead of a crash",
    )
    route.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="write a deterministic engine snapshot every N steps "
        "(needs --checkpoint PATH); a killed run resumes bit-identically "
        "with --resume-from",
    )
    route.add_argument(
        "--checkpoint",
        metavar="PATH",
        default=None,
        help="snapshot file for --checkpoint-every (atomically "
        "overwritten at each interval)",
    )
    route.add_argument(
        "--resume-from",
        metavar="PATH",
        default=None,
        help="resume from a snapshot written by --checkpoint; all "
        "mesh/workload/policy/seed flags must match the original run",
    )
    route.set_defaults(func=cmd_route)

    sweep = commands.add_parser("sweep", help="sweep k, print T vs bound")
    _add_mesh_arguments(sweep)
    sweep.add_argument("--policy", default="restricted-priority")
    sweep.add_argument("--k-min", type=int, default=8)
    sweep.add_argument("--k-max", type=int, default=256)
    sweep.add_argument("--seeds", type=int, default=3)
    sweep.add_argument(
        "--workers",
        type=int,
        default=1,
        help="processes for seed replicates (1 = serial; results are "
        "identical either way)",
    )
    sweep.add_argument(
        "--telemetry",
        metavar="PATH",
        help="append one run manifest (JSONL) per sweep point",
    )
    sweep.set_defaults(func=cmd_sweep)

    dynamic = commands.add_parser(
        "dynamic", help="continuous-traffic load sweep"
    )
    _add_mesh_arguments(dynamic)
    _add_backend_argument(dynamic)
    dynamic.add_argument(
        "--policy",
        default=None,
        help="routing policy (default: restricted-priority for hot-potato, "
        "dimension-order for buffered)",
    )
    dynamic.add_argument(
        "--engine",
        choices=("hot-potato", "buffered"),
        default="hot-potato",
        help="injection/routing discipline to simulate",
    )
    dynamic.add_argument(
        "--rates",
        type=float,
        nargs="+",
        default=[0.05, 0.15, 0.25, 0.35],
        help="offered loads to sweep",
    )
    dynamic.add_argument("--horizon", type=int, default=600)
    dynamic.add_argument(
        "--telemetry",
        metavar="PATH",
        help="append one run manifest (JSONL) per offered load",
    )
    dynamic.set_defaults(func=cmd_dynamic)

    profile = commands.add_parser(
        "profile",
        help="time the kernel pipeline phases for one scenario",
    )
    _add_mesh_arguments(profile)
    _add_backend_argument(profile)
    profile.add_argument("--workload", choices=WORKLOADS, default="random")
    profile.add_argument("--k", type=int, default=None, help="batch size")
    profile.add_argument(
        "--policy",
        default=None,
        help="routing policy (default: restricted-priority; "
        "dimension-order for the buffered engines)",
    )
    profile.add_argument(
        "--engine",
        choices=("hot-potato", "buffered", "dynamic", "buffered-dynamic"),
        default="hot-potato",
        help="which engine's kernel configuration to profile",
    )
    profile.add_argument(
        "--rate",
        type=float,
        default=0.1,
        help="offered load (dynamic engines only)",
    )
    profile.add_argument(
        "--horizon",
        type=int,
        default=600,
        help="steps to simulate (dynamic engines only)",
    )
    profile.add_argument(
        "--telemetry",
        metavar="PATH",
        help="append a run manifest (JSONL) with the phase timings",
    )
    profile.set_defaults(func=cmd_profile)

    campaign = commands.add_parser(
        "campaign",
        help="run resumable experiment campaigns (event-sourced store)",
    )
    campaign_commands = campaign.add_subparsers(
        dest="campaign_command", required=True
    )

    campaign_run = campaign_commands.add_parser(
        "run", help="queue and execute a seed-replicated campaign"
    )
    _add_mesh_arguments(campaign_run)
    _add_backend_argument(campaign_run)
    campaign_run.add_argument(
        "--workload", choices=WORKLOADS, default="random"
    )
    campaign_run.add_argument(
        "--k", type=int, default=None, help="batch size"
    )
    campaign_run.add_argument(
        "--policy",
        default=None,
        help="routing policy (default: restricted-priority for hot-potato, "
        "dimension-order for buffered)",
    )
    campaign_run.add_argument(
        "--engine",
        choices=("hot-potato", "buffered"),
        default="hot-potato",
        help="routing discipline",
    )
    campaign_run.add_argument(
        "--seeds",
        type=int,
        default=3,
        help="replicate seeds 0..N-1 (default 3)",
    )
    campaign_run.add_argument(
        "--max-steps", type=int, default=None, help="per-case step budget"
    )
    campaign_run.add_argument(
        "--workers",
        type=int,
        default=1,
        help="persistent pool size (1 = serial; results are identical "
        "either way)",
    )
    campaign_run.add_argument(
        "--store",
        metavar="PATH",
        default=None,
        help="event-log JSONL; with it the campaign is durable and "
        "resumable (repro campaign resume)",
    )
    campaign_run.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="append a mid-run engine snapshot to the store every N "
        "steps per case (needs --store); a killed case resumes from "
        "its last checkpoint instead of step 0",
    )
    campaign_run.add_argument(
        "--telemetry",
        metavar="PATH",
        help="append one run manifest (JSONL) per finished case",
    )
    campaign_run.set_defaults(func=cmd_campaign_run)

    campaign_resume = campaign_commands.add_parser(
        "resume",
        help="restore finished cases from a store and run the rest",
    )
    campaign_resume.add_argument(
        "--store", metavar="PATH", required=True, help="event-log JSONL"
    )
    campaign_resume.add_argument(
        "--workers", type=int, default=1, help="persistent pool size"
    )
    campaign_resume.add_argument(
        "--telemetry",
        metavar="PATH",
        help="append one run manifest (JSONL) per finished case",
    )
    campaign_resume.set_defaults(func=cmd_campaign_resume)

    campaign_status = campaign_commands.add_parser(
        "status", help="summarize a campaign store without running it"
    )
    campaign_status.add_argument(
        "--store", metavar="PATH", required=True, help="event-log JSONL"
    )
    campaign_status.add_argument(
        "--watch",
        action="store_true",
        help="tail the event log, printing one progress line per poll "
        "(counts, throughput, ETA) until no case is pending; never "
        "touches the running pool",
    )
    campaign_status.add_argument(
        "--interval",
        type=float,
        default=1.0,
        help="seconds between --watch polls (default 1.0)",
    )
    campaign_status.add_argument(
        "--max-polls",
        type=int,
        default=None,
        help="stop --watch after N polls even if cases are pending "
        "(bounds watching a campaign whose driver died)",
    )
    campaign_status.add_argument(
        "--prometheus",
        metavar="PATH",
        help="write campaign-level aggregates (lifecycle counters plus "
        "folded per-run telemetry) in Prometheus text exposition format",
    )
    campaign_status.set_defaults(func=cmd_campaign_status)

    livelock = commands.add_parser(
        "livelock", help="run the greedy livelock demonstration"
    )
    livelock.add_argument("--steps", type=int, default=500)
    livelock.set_defaults(func=cmd_livelock)

    policies = commands.add_parser("policies", help="list routing policies")
    policies.set_defaults(func=cmd_policies)

    lint = commands.add_parser(
        "lint",
        help="run the determinism linter (see docs/ARCHITECTURE.md)",
    )
    from repro.lint.cli import add_lint_arguments

    add_lint_arguments(lint)
    lint.set_defaults(func=cmd_lint)

    report = commands.add_parser(
        "report",
        help="assemble the markdown report from benchmark result blocks",
    )
    report.add_argument(
        "--results",
        default="benchmarks/results",
        help="directory of experiment blocks (default benchmarks/results)",
    )
    report.add_argument(
        "--output", metavar="PATH", help="write to a file instead of stdout"
    )
    report.set_defaults(func=cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
