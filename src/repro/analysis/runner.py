"""Experiment harness: seed-replicated runs and parameter sweeps.

The benchmarks and examples share one way to run things: a *case* is a
(problem-factory, policy-factory) pair evaluated over several seeds;
sweeps map a parameter grid to cases and collect
:class:`~repro.core.metrics.RunResult` objects with their parameters
attached.

Replicates are independent (each builds its own problem, policy and
engine from a seed), so the harness can fan them out across processes:
every public entry point takes ``workers`` and routes the work through
:class:`ParallelExecutor`, which preserves the serial result order and
falls back to in-process execution when parallelism is unavailable
(``workers=1``, a single case, or unpicklable factories).
"""

from __future__ import annotations

import pickle
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.metrics import RunResult
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.obs.telemetry import RunTelemetry, aggregate
from repro.analysis.stats import Summary, summarize

ProblemFactory = Callable[[int], RoutingProblem]
PolicyFactory = Callable[[], RoutingPolicy]


@dataclass
class ExperimentPoint:
    """One run plus the sweep parameters that produced it."""

    params: Dict[str, object]
    result: RunResult

    @property
    def steps(self) -> int:
        return self.result.total_steps


@dataclass
class SweepResult:
    """All runs of a sweep, with aggregation helpers."""

    points: List[ExperimentPoint] = field(default_factory=list)

    def steps_by(self, key: str) -> Dict[object, List[int]]:
        """Group total-step counts by one parameter."""
        grouped: Dict[object, List[int]] = {}
        for point in self.points:
            grouped.setdefault(point.params[key], []).append(point.steps)
        return grouped

    def summarize_by(self, key: str) -> Dict[object, Summary]:
        """Per-parameter-value summary of total steps."""
        return {
            value: summarize(steps)
            for value, steps in sorted(self.steps_by(key).items())
        }

    def all_completed(self) -> bool:
        return all(point.result.completed for point in self.points)

    def telemetry(self) -> Optional[RunTelemetry]:
        """Aggregate lean-path counters over every point of the sweep
        (totals add, peaks max; see :func:`aggregate_telemetry`)."""
        return aggregate_telemetry(self.points)


@dataclass(frozen=True)
class CaseSpec:
    """One picklable unit of harness work: a single seeded run.

    Everything a worker process needs to reproduce the run is carried
    by value; the factories must therefore be picklable (module-level
    functions or :func:`functools.partial` over them — not lambdas or
    closures, which trigger the serial fallback).
    """

    problem_factory: ProblemFactory
    policy_factory: PolicyFactory
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()
    strict_validation: bool = True
    max_steps: Optional[int] = None
    #: "hot-potato" (deflection) or "buffered" (store-and-forward).
    #: With "buffered" the policy factory must build a BufferedPolicy;
    #: strict_validation is ignored (buffers legitimately exceed degree).
    engine: str = "hot-potato"


def _execute_spec(spec: CaseSpec) -> ExperimentPoint:
    """Run one spec (in the parent or a worker process)."""
    from repro.core.validation import validators_for

    problem = spec.problem_factory(spec.seed)
    policy = spec.policy_factory()
    if spec.engine == "buffered":
        result = BufferedEngine(
            problem,
            policy,
            seed=spec.seed,
            max_steps=spec.max_steps,
        ).run()
    elif spec.engine == "hot-potato":
        result = HotPotatoEngine(
            problem,
            policy,
            seed=spec.seed,
            validators=validators_for(policy, strict=spec.strict_validation),
            max_steps=spec.max_steps,
        ).run()
    else:
        raise ValueError(
            f"unknown engine {spec.engine!r}; "
            "expected 'hot-potato' or 'buffered'"
        )
    point_params: Dict[str, object] = dict(spec.params)
    point_params.setdefault("seed", spec.seed)
    point_params.setdefault("policy", policy.name)
    point_params.setdefault("k", problem.k)
    point_params.setdefault("n", problem.mesh.side)
    return ExperimentPoint(params=point_params, result=result)


def aggregate_telemetry(
    points: Iterable[ExperimentPoint],
) -> Optional[RunTelemetry]:
    """Merge the lean-path counters of many runs (totals add, peaks
    take the max).  Returns ``None`` when no point carries telemetry
    (e.g. results deserialized from pre-telemetry payloads)."""
    return aggregate(point.result.telemetry for point in points)


class ParallelExecutor:
    """Fans :class:`CaseSpec` batches across worker processes.

    Results always come back in spec order, so a parallel run is
    point-for-point identical to the serial one (each spec is an
    independent seeded simulation; nothing leaks between workers).

    Each run's :class:`~repro.obs.telemetry.RunTelemetry` travels
    inside its pickled :class:`RunResult`, so after :meth:`run` the
    executor's :attr:`telemetry` holds the cross-worker aggregate of
    the whole batch.

    The executor degrades gracefully to in-process execution when

    * ``workers <= 1`` or the batch has fewer than two specs,
    * a spec fails to pickle (lambda/closure factories), or
    * the process pool cannot be started or breaks (restricted
      sandboxes, missing ``fork``/``spawn`` support).
    """

    def __init__(self, workers: int = 1) -> None:
        self.workers = max(1, int(workers))
        #: Aggregate counters of the most recent :meth:`run` batch.
        self.telemetry: Optional[RunTelemetry] = None

    def run(self, specs: Sequence[CaseSpec]) -> List[ExperimentPoint]:
        """Execute all specs, returning points in spec order."""
        points = self._run(list(specs))
        self.telemetry = aggregate_telemetry(points)
        return points

    def _run(self, specs: List[CaseSpec]) -> List[ExperimentPoint]:
        if self.workers == 1 or len(specs) < 2 or not self._picklable(specs):
            return [_execute_spec(spec) for spec in specs]
        try:
            with ProcessPoolExecutor(max_workers=self.workers) as pool:
                return list(pool.map(_execute_spec, specs))
        except (BrokenProcessPool, OSError, PermissionError):
            return [_execute_spec(spec) for spec in specs]

    @staticmethod
    def _picklable(specs: Sequence[CaseSpec]) -> bool:
        try:
            pickle.dumps(specs)
        except Exception:
            return False
        return True


def run_case(
    problem_factory: ProblemFactory,
    policy_factory: PolicyFactory,
    seeds: Sequence[int],
    *,
    params: Optional[Dict[str, object]] = None,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
    engine: str = "hot-potato",
) -> List[ExperimentPoint]:
    """Run one case over several seeds.

    The seed feeds both the problem generator (workload randomness)
    and the engine (policy randomness), so a case is fully determined
    by its factories and seed list.  ``workers > 1`` replicates the
    seeds across processes (same results, same order).  Pass
    ``engine="buffered"`` (with a buffered-policy factory) to run the
    store-and-forward baseline instead of hot-potato routing.
    """
    frozen_params = tuple((params or {}).items())
    specs = [
        CaseSpec(
            problem_factory=problem_factory,
            policy_factory=policy_factory,
            seed=seed,
            params=frozen_params,
            strict_validation=strict_validation,
            max_steps=max_steps,
            engine=engine,
        )
        for seed in seeds
    ]
    return ParallelExecutor(workers).run(specs)


def sweep(
    grid: Iterable[Dict[str, object]],
    case_builder: Callable[[Dict[str, object]], tuple],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
) -> SweepResult:
    """Evaluate a parameter grid.

    ``case_builder(params)`` returns ``(problem_factory, policy_factory)``
    for one grid point; every point is replicated over ``seeds``.  With
    ``workers > 1`` the whole grid-by-seeds product is fanned out at
    once, so parallelism helps even when one grid point has few seeds.
    """
    specs: List[CaseSpec] = []
    for params in grid:
        problem_factory, policy_factory = case_builder(params)
        for seed in seeds:
            specs.append(
                CaseSpec(
                    problem_factory=problem_factory,
                    policy_factory=policy_factory,
                    seed=seed,
                    params=tuple(dict(params).items()),
                    strict_validation=strict_validation,
                    max_steps=max_steps,
                )
            )
    return SweepResult(points=ParallelExecutor(workers).run(specs))


def compare_policies(
    problem_factory: ProblemFactory,
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
) -> Dict[str, List[ExperimentPoint]]:
    """Run several policies on identical problem instances."""
    return {
        name: run_case(
            problem_factory,
            factory,
            seeds,
            params={"policy": name},
            strict_validation=strict_validation,
            max_steps=max_steps,
            workers=workers,
        )
        for name, factory in policies.items()
    }
