"""Experiment harness: seed-replicated runs and parameter sweeps.

The benchmarks and examples share one way to run things: a *case* is a
(problem-factory, policy-factory) pair evaluated over several seeds;
sweeps map a parameter grid to cases and collect
:class:`~repro.core.metrics.RunResult` objects with their parameters
attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence

from repro.core.engine import HotPotatoEngine
from repro.core.metrics import RunResult
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.analysis.stats import Summary, summarize

ProblemFactory = Callable[[int], RoutingProblem]
PolicyFactory = Callable[[], RoutingPolicy]


@dataclass
class ExperimentPoint:
    """One run plus the sweep parameters that produced it."""

    params: Dict[str, object]
    result: RunResult

    @property
    def steps(self) -> int:
        return self.result.total_steps


@dataclass
class SweepResult:
    """All runs of a sweep, with aggregation helpers."""

    points: List[ExperimentPoint] = field(default_factory=list)

    def steps_by(self, key: str) -> Dict[object, List[int]]:
        """Group total-step counts by one parameter."""
        grouped: Dict[object, List[int]] = {}
        for point in self.points:
            grouped.setdefault(point.params[key], []).append(point.steps)
        return grouped

    def summarize_by(self, key: str) -> Dict[object, Summary]:
        """Per-parameter-value summary of total steps."""
        return {
            value: summarize(steps)
            for value, steps in sorted(self.steps_by(key).items())
        }

    def all_completed(self) -> bool:
        return all(point.result.completed for point in self.points)


def run_case(
    problem_factory: ProblemFactory,
    policy_factory: PolicyFactory,
    seeds: Sequence[int],
    *,
    params: Optional[Dict[str, object]] = None,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
) -> List[ExperimentPoint]:
    """Run one case over several seeds.

    The seed feeds both the problem generator (workload randomness)
    and the engine (policy randomness), so a case is fully determined
    by its factories and seed list.
    """
    from repro.core.validation import validators_for

    points: List[ExperimentPoint] = []
    for seed in seeds:
        problem = problem_factory(seed)
        policy = policy_factory()
        engine = HotPotatoEngine(
            problem,
            policy,
            seed=seed,
            validators=validators_for(policy, strict=strict_validation),
            max_steps=max_steps,
        )
        result = engine.run()
        point_params = dict(params or {})
        point_params.setdefault("seed", seed)
        point_params.setdefault("policy", policy.name)
        point_params.setdefault("k", problem.k)
        point_params.setdefault("n", problem.mesh.side)
        points.append(ExperimentPoint(params=point_params, result=result))
    return points


def sweep(
    grid: Iterable[Dict[str, object]],
    case_builder: Callable[[Dict[str, object]], tuple],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
) -> SweepResult:
    """Evaluate a parameter grid.

    ``case_builder(params)`` returns ``(problem_factory, policy_factory)``
    for one grid point; every point is replicated over ``seeds``.
    """
    result = SweepResult()
    for params in grid:
        problem_factory, policy_factory = case_builder(params)
        result.points.extend(
            run_case(
                problem_factory,
                policy_factory,
                seeds,
                params=dict(params),
                strict_validation=strict_validation,
                max_steps=max_steps,
            )
        )
    return result


def compare_policies(
    problem_factory: ProblemFactory,
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
) -> Dict[str, List[ExperimentPoint]]:
    """Run several policies on identical problem instances."""
    return {
        name: run_case(
            problem_factory,
            factory,
            seeds,
            params={"policy": name},
            strict_validation=strict_validation,
            max_steps=max_steps,
        )
        for name, factory in policies.items()
    }
