"""Experiment harness: seed-replicated runs and parameter sweeps.

The benchmarks and examples share one way to run things: a *case* is a
(problem-factory, policy-factory) pair evaluated over several seeds;
sweeps map a parameter grid to cases and collect
:class:`~repro.core.metrics.RunResult` objects with their parameters
attached.

Replicates are independent (each builds its own problem, policy and
engine from a seed), so the harness can fan them out across processes:
every public entry point takes ``workers`` and routes the work through
:class:`ParallelExecutor`, which preserves the serial result order and
falls back to in-process execution when parallelism is unavailable
(``workers=1``, a single case, or unpicklable factories).

Process fan-out itself lives in :class:`repro.campaign.pool.WorkerPool`
(the campaign execution layer); this module keeps the factory-based
:class:`CaseSpec` surface on top of it.  Every entry point also
accepts a started ``pool`` so repeated sweeps can share persistent
workers; for new code prefer the declarative campaign stack
(:mod:`repro.campaign`), which ships ~100-byte specs instead of
pickled factories and adds the durable event log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.campaign.pool import WorkerPool
from repro.campaign.results import (
    ExperimentPoint,
    aggregate_telemetry,
)
from repro.core.buffered_engine import BufferedEngine
from repro.core.engine import HotPotatoEngine
from repro.core.policy import RoutingPolicy
from repro.core.problem import RoutingProblem
from repro.obs.telemetry import RunTelemetry
from repro.analysis.stats import Summary, summarize

ProblemFactory = Callable[[int], RoutingProblem]
PolicyFactory = Callable[[], RoutingPolicy]

__all__ = [
    "CaseSpec",
    "ExperimentPoint",
    "ParallelExecutor",
    "SweepResult",
    "aggregate_telemetry",
    "compare_policies",
    "run_case",
    "sweep",
]


@dataclass
class SweepResult:
    """All runs of a sweep, with aggregation helpers."""

    points: List[ExperimentPoint] = field(default_factory=list)
    #: True when the harness had to retry or serially re-run part of
    #: the batch (worker crash, wedged pool, pool start failure).  The
    #: results are still complete and deterministic; the flag only
    #: records that the parallel fabric misbehaved along the way.
    degraded: bool = False
    #: Number of points restored from a checkpoint instead of re-run.
    resumed: int = 0
    #: Number of chunks the parallel fabric dispatched (0 for serial
    #: in-process execution).  Chunked dispatch sends each worker a
    #: contiguous slice of specs in one submission, so per-task
    #: pickling/IPC overhead is paid per chunk, not per spec.
    chunked: int = 0

    def steps_by(self, key: str) -> Dict[object, List[int]]:
        """Group total-step counts by one parameter."""
        grouped: Dict[object, List[int]] = {}
        for point in self.points:
            grouped.setdefault(point.params[key], []).append(point.steps)
        return grouped

    def summarize_by(self, key: str) -> Dict[object, Summary]:
        """Per-parameter-value summary of total steps."""
        return {
            value: summarize(steps)
            for value, steps in sorted(self.steps_by(key).items())
        }

    def all_completed(self) -> bool:
        return all(point.result.completed for point in self.points)

    def telemetry(self) -> Optional[RunTelemetry]:
        """Aggregate lean-path counters over every point of the sweep
        (totals add, peaks max; see :func:`aggregate_telemetry`)."""
        return aggregate_telemetry(self.points)


@dataclass(frozen=True)
class CaseSpec:
    """One picklable unit of harness work: a single seeded run.

    Everything a worker process needs to reproduce the run is carried
    by value; the factories must therefore be picklable (module-level
    functions or :func:`functools.partial` over them — not lambdas or
    closures, which trigger the serial fallback).
    """

    problem_factory: ProblemFactory
    policy_factory: PolicyFactory
    seed: int
    params: Tuple[Tuple[str, object], ...] = ()
    strict_validation: bool = True
    max_steps: Optional[int] = None
    #: "hot-potato" (deflection) or "buffered" (store-and-forward).
    #: With "buffered" the policy factory must build a BufferedPolicy;
    #: strict_validation is ignored (buffers legitimately exceed degree).
    engine: str = "hot-potato"
    #: Step-kernel implementation: "object" (per-packet objects) or
    #: "soa" (structure-of-arrays).  With "soa" the hot-potato engine
    #: needs the lean loop, so strict_validation must be False.
    backend: str = "object"


def _execute_spec(spec: CaseSpec) -> ExperimentPoint:
    """Run one spec (in the parent or a worker process)."""
    from repro.core.validation import validators_for

    problem = spec.problem_factory(spec.seed)
    policy = spec.policy_factory()
    if spec.engine == "buffered":
        result = BufferedEngine(
            problem,
            policy,
            seed=spec.seed,
            max_steps=spec.max_steps,
            backend=spec.backend,
        ).run()
    elif spec.engine == "hot-potato":
        result = HotPotatoEngine(
            problem,
            policy,
            seed=spec.seed,
            validators=validators_for(policy, strict=spec.strict_validation),
            max_steps=spec.max_steps,
            backend=spec.backend,
        ).run()
    else:
        raise ValueError(
            f"unknown engine {spec.engine!r}; "
            "expected 'hot-potato' or 'buffered'"
        )
    point_params: Dict[str, object] = dict(spec.params)
    point_params.setdefault("seed", spec.seed)
    point_params.setdefault("policy", policy.name)
    point_params.setdefault("k", problem.k)
    point_params.setdefault("n", problem.mesh.side)
    return ExperimentPoint(params=point_params, result=result)


def _execute_chunk(specs: Sequence[CaseSpec]) -> List[ExperimentPoint]:
    """Run a contiguous slice of specs inside one worker process.

    Engine construction happens here, in the worker, from the pickled
    :class:`CaseSpec` values — the parent never builds (or pickles) an
    engine.  One submission per chunk amortizes task pickling and IPC
    over the whole slice instead of paying it per spec.
    """
    return [_execute_spec(spec) for spec in specs]


class ParallelExecutor:
    """Fans :class:`CaseSpec` batches across worker processes.

    Since the ``repro.campaign`` refactor this class is the legacy
    harness's face over :class:`repro.campaign.pool.WorkerPool`: the
    chunked dispatch, the retry-through-killed-workers machinery, the
    wedged-pool timeout and the serial last resort all live in the
    pool (one implementation, shared with campaigns), while this
    wrapper keeps the factory-based spec type, the telemetry
    aggregation and the historical constructor.

    Results always come back in spec order, so a parallel run is
    point-for-point identical to the serial one (each spec is an
    independent seeded simulation; nothing leaks between workers).

    Each run's :class:`~repro.obs.telemetry.RunTelemetry` travels
    inside its pickled :class:`~repro.core.metrics.RunResult`, so
    after :meth:`run` the executor's :attr:`telemetry` holds the
    cross-worker aggregate of the whole batch.

    The executor degrades gracefully to in-process execution when

    * ``workers <= 1`` or the batch has fewer than two specs,
    * a spec fails to pickle (lambda/closure factories), or
    * the process pool cannot be started or breaks (restricted
      sandboxes, missing ``fork``/``spawn`` support).

    Crash recovery (see :class:`~repro.campaign.pool.WorkerPool`): a
    killed or crashed worker loses only the specs it was holding; up
    to ``retries`` fresh pool passes re-run *only* the unfinished
    specs (exponential ``backoff`` between attempts), ``timeout``
    bounds the wait for the *next* completion before a wedged pool is
    abandoned, and whatever is still missing after the last attempt
    runs serially in-process.  Any detour sets :attr:`degraded`.

    Exceptions raised *by a spec itself* (policy bugs, validation
    errors) are deterministic and re-raised immediately — retrying
    cannot fix them and would just repeat the failure.

    Pass a started :class:`~repro.campaign.pool.WorkerPool` as
    ``pool`` to reuse persistent workers across batches (the executor
    then ignores ``workers``/``timeout``/``retries``/``backoff`` and
    never shuts the pool down); otherwise each :meth:`run` owns a
    transient pool, preserving the historical lifecycle.
    """

    #: Target chunks per worker (see :class:`WorkerPool`).
    CHUNKS_PER_WORKER = WorkerPool.CHUNKS_PER_WORKER

    def __init__(
        self,
        workers: int = 1,
        *,
        timeout: Optional[float] = None,
        retries: int = 2,
        backoff: float = 0.25,
        sleep: Optional[Callable[[float], None]] = None,
        pool: Optional[WorkerPool] = None,
    ) -> None:
        self.workers = max(1, int(workers))
        #: Max seconds to wait for the next completion before the pool
        #: is declared wedged; ``None`` waits forever.
        self.timeout = timeout
        #: Extra pool attempts after the first (0 disables retry).
        self.retries = max(0, int(retries))
        #: Base delay before retry ``k`` is ``backoff * 2**(k-1)``.
        self.backoff = backoff
        self._sleep = sleep
        self._shared_pool = pool
        #: Aggregate counters of the most recent :meth:`run` batch.
        self.telemetry: Optional[RunTelemetry] = None
        #: True when the most recent batch needed retries or fallbacks.
        self.degraded = False
        #: Chunks dispatched to pools in the most recent batch (0 when
        #: the batch ran serially in-process).
        self.chunked = 0

    def _make_pool(self) -> WorkerPool:
        return WorkerPool(
            self.workers,
            timeout=self.timeout,
            retries=self.retries,
            backoff=self.backoff,
            sleep=self._sleep,
        )

    def run(
        self,
        specs: Sequence[CaseSpec],
        *,
        on_point: Optional[Callable[[int, ExperimentPoint], None]] = None,
    ) -> List[ExperimentPoint]:
        """Execute all specs, returning points in spec order.

        ``on_point(index, point)`` fires once per spec as its result
        lands (checkpoint hooks); indices refer to ``specs`` order, and
        the callback runs in this process regardless of worker fan-out.
        """
        pool = self._shared_pool
        owned = pool is None
        if pool is None:
            pool = self._make_pool()
        try:
            points: List[ExperimentPoint] = pool.run_batch(
                list(specs), _execute_chunk, on_result=on_point
            )
        finally:
            self.degraded = pool.degraded
            self.chunked = pool.chunked
            if owned:
                pool.close()
        self.telemetry = aggregate_telemetry(points)
        return points

    def _chunks(self, pending: Sequence[int]) -> List[List[int]]:
        """Partition ``pending`` into contiguous, near-equal chunks
        (delegates to the pool's math; kept for callers and tests)."""
        return self._make_pool()._chunks(pending)


def run_case(
    problem_factory: ProblemFactory,
    policy_factory: PolicyFactory,
    seeds: Sequence[int],
    *,
    params: Optional[Dict[str, object]] = None,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
    engine: str = "hot-potato",
    backend: str = "object",
    pool: Optional[WorkerPool] = None,
) -> List[ExperimentPoint]:
    """Run one case over several seeds.

    The seed feeds both the problem generator (workload randomness)
    and the engine (policy randomness), so a case is fully determined
    by its factories and seed list.  ``workers > 1`` replicates the
    seeds across processes (same results, same order).  Pass
    ``engine="buffered"`` (with a buffered-policy factory) to run the
    store-and-forward baseline instead of hot-potato routing, and
    ``backend="soa"`` for the structure-of-arrays kernel (hot-potato
    requires ``strict_validation=False`` there — the array kernel runs
    the lean loop).  A started
    :class:`~repro.campaign.pool.WorkerPool` passed as ``pool``
    persists across calls (``workers`` is then ignored).
    """
    frozen_params = tuple((params or {}).items())
    specs = [
        CaseSpec(
            problem_factory=problem_factory,
            policy_factory=policy_factory,
            seed=seed,
            params=frozen_params,
            strict_validation=strict_validation,
            max_steps=max_steps,
            engine=engine,
            backend=backend,
        )
        for seed in seeds
    ]
    return ParallelExecutor(workers, pool=pool).run(specs)


def sweep(
    grid: Iterable[Dict[str, object]],
    case_builder: Callable[[Dict[str, object]], tuple],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
    executor: Optional[ParallelExecutor] = None,
    checkpoint: Optional["object"] = None,
    backend: str = "object",
    pool: Optional[WorkerPool] = None,
) -> SweepResult:
    """Evaluate a parameter grid.

    ``case_builder(params)`` returns ``(problem_factory, policy_factory)``
    for one grid point; every point is replicated over ``seeds``.  With
    ``workers > 1`` the whole grid-by-seeds product is fanned out at
    once, so parallelism helps even when one grid point has few seeds.

    Pass a configured :class:`ParallelExecutor` as ``executor`` to
    control timeouts/retries (``workers`` is then ignored), and a
    :class:`~repro.analysis.checkpoint.SweepCheckpoint` as
    ``checkpoint`` to make the sweep crash-safe: each finished point is
    durably recorded as it lands, and a rerun of the same sweep skips
    every point already on disk (``SweepResult.resumed`` counts them).
    A started :class:`~repro.campaign.pool.WorkerPool` passed as
    ``pool`` persists across sweeps (ignored when ``executor`` is
    given — configure the executor with the pool instead).
    """
    from repro.analysis.checkpoint import restore_points, spec_key

    specs: List[CaseSpec] = []
    for params in grid:
        problem_factory, policy_factory = case_builder(params)
        for seed in seeds:
            specs.append(
                CaseSpec(
                    problem_factory=problem_factory,
                    policy_factory=policy_factory,
                    seed=seed,
                    params=tuple(dict(params).items()),
                    strict_validation=strict_validation,
                    max_steps=max_steps,
                    backend=backend,
                )
            )
    restored = restore_points(checkpoint, specs)
    pending = [i for i in range(len(specs)) if i not in restored]
    runner = (
        executor
        if executor is not None
        else ParallelExecutor(workers, pool=pool)
    )
    on_point = None
    if checkpoint is not None:
        def on_point(local_index: int, point: ExperimentPoint) -> None:
            index = pending[local_index]
            checkpoint.record(spec_key(specs[index]), specs[index], point)
    fresh = runner.run([specs[i] for i in pending], on_point=on_point)
    by_index = dict(restored)
    by_index.update(zip(pending, fresh))
    return SweepResult(
        points=[by_index[i] for i in range(len(specs))],
        degraded=runner.degraded,
        resumed=len(restored),
        chunked=runner.chunked,
    )


def compare_policies(
    problem_factory: ProblemFactory,
    policies: Dict[str, PolicyFactory],
    seeds: Sequence[int],
    *,
    strict_validation: bool = True,
    max_steps: Optional[int] = None,
    workers: int = 1,
    pool: Optional[WorkerPool] = None,
) -> Dict[str, List[ExperimentPoint]]:
    """Run several policies on identical problem instances.

    With a shared ``pool`` the per-policy batches reuse one set of
    worker processes instead of spawning a pool per policy.
    """
    return {
        name: run_case(
            problem_factory,
            factory,
            seeds,
            params={"policy": name},
            strict_validation=strict_validation,
            max_steps=max_steps,
            workers=workers,
            pool=pool,
        )
        for name, factory in policies.items()
    }
